"""Table 3: network topology comparison (size and cost).

Paper columns:
    Metric          FT2    MPFT    FT3      SF      DF
    Endpoints      2,048  16,384  65,536  32,928  261,632
    Switches          96     768   5,120   1,568   16,352
    Links          2,048  16,384 131,072  32,928  384,272
    Cost [M$]          9      72     491     146    1,522
    Cost/EP [k$]    4.39    4.39     7.5     4.4      5.8
"""

from _report import print_table

from repro.network import table3_rows

PAPER = {
    "FT2": (2048, 96, 2048, 9, 4.39),
    "MPFT": (16384, 768, 16384, 72, 4.39),
    "FT3": (65536, 5120, 131072, 491, 7.5),
    "SF": (32928, 1568, 32928, 146, 4.4),
    "DF": (261632, 16352, 384272, 1522, 5.8),
}


def bench_table3(benchmark):
    rows = benchmark(table3_rows)
    table = []
    for row in rows:
        spec = row.spec
        paper = PAPER[spec.name]
        table.append(
            [
                spec.name,
                spec.endpoints,
                spec.switches,
                spec.links,
                f"{paper[3]} / {row.cost_musd:.1f}",
                f"{paper[4]} / {row.cost_per_endpoint_kusd:.2f}",
            ]
        )
    print_table(
        "Table 3: topology comparison (cost: paper / measured)",
        ["topology", "endpoints", "switches", "links", "cost M$", "cost/EP k$"],
        table,
    )
    for row in rows:
        ep, sw, links, cost_m, per_ep = PAPER[row.spec.name]
        assert row.spec.endpoints == ep
        assert row.spec.switches == sw
        assert row.spec.links == links
        assert abs(row.cost_musd - cost_m) / cost_m < 0.02
        assert abs(row.cost_per_endpoint_kusd - per_ep) / per_ep < 0.03
