"""Section 2.2.2: MoE advantages for personal / on-premises deployment.

Paper: DeepSeek-V2 (236B total, 21B active) reaches nearly 20 TPS on a
PC-class AI SoC — "or even twice that speed" with aggressive
quantization — while comparable ~70B dense models reach single digits;
KTransformers runs full DeepSeek-V3 at ~20 TPS on a ~$10k
consumer-GPU server.
"""

from _report import print_table

from repro.inference import decode_tps, offloaded_decode_tps, soc_decode_tps
from repro.model import DEEPSEEK_V2, DEEPSEEK_V3, LLAMA31_70B


def bench_sec222(benchmark):
    def run():
        return {
            "moe_fp8": soc_decode_tps(DEEPSEEK_V2, weight_dtype="fp8"),
            "moe_int4": soc_decode_tps(DEEPSEEK_V2, weight_dtype="int4"),
            "dense_fp8": soc_decode_tps(LLAMA31_70B, weight_dtype="fp8"),
            "ktransformers": offloaded_decode_tps(DEEPSEEK_V3, gpu_bandwidth=1.0e12),
        }

    results = benchmark(run)
    print_table(
        "Section 2.2.2: local decode speed (single request)",
        ["deployment", "paper TPS", "measured TPS"],
        [
            ["DeepSeek-V2 on AI SoC (FP8)", "~20", round(results["moe_fp8"].tokens_per_second, 1)],
            ["DeepSeek-V2 on AI SoC (INT4)", "~40 ('twice that')", round(results["moe_int4"].tokens_per_second, 1)],
            ["70B dense on AI SoC (FP8)", "single digits", round(results["dense_fp8"].tokens_per_second, 1)],
            ["DeepSeek-V3, KTransformers server", "~20", round(results["ktransformers"].tokens_per_second, 1)],
        ],
    )
    assert 15 <= results["moe_fp8"].tokens_per_second <= 25
    assert 30 <= results["moe_int4"].tokens_per_second <= 50
    assert results["dense_fp8"].tokens_per_second < 10
    assert 15 <= results["ktransformers"].tokens_per_second <= 35


def bench_sec222_context_sensitivity(benchmark):
    """MLA keeps long-context local decode viable: the KV read added by
    128k context is small next to the weight stream."""

    def run():
        short = decode_tps(DEEPSEEK_V2, 0.4e12, context_tokens=0)
        long = decode_tps(DEEPSEEK_V2, 0.4e12, context_tokens=131_072)
        return short, long

    short, long = benchmark(run)
    print_table(
        "Section 2.2.2: context-length sensitivity (DeepSeek-V2, AI SoC)",
        ["context", "TPS"],
        [["0", round(short.tokens_per_second, 1)], ["131072", round(long.tokens_per_second, 1)]],
    )
    assert long.tokens_per_second > 0.5 * short.tokens_per_second
