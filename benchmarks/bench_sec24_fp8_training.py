"""Section 2.4: the hierarchical precision-validation pipeline.

Paper: fine-grained FP8 training was validated against BF16 on smaller
models first; "the relative accuracy loss ... remains below 0.25%,
attributable to high-precision accumulation and fine-grained
quantization".

We run the same paired experiment at laptop scale: identical init and
data order, training the tiny MLA+MoE+MTP model under the BF16 policy
and the fine-grained FP8 policy, and report the relative loss gap.
Two model scales reproduce the 'hierarchical' aspect.
"""

from _report import print_table

from repro.model import TINY_DENSE_GQA, TINY_MLA_MOE
from repro.training import validate_precision


def bench_sec24_fp8_vs_bf16(benchmark):
    def run():
        reports = {}
        # Hierarchical: dense tiny model first, then the MLA+MoE model.
        reports["tiny-dense"] = validate_precision(
            TINY_DENSE_GQA, steps=120, batch_size=8, seq_len=24, seed=0
        )
        reports["tiny-mla-moe"] = validate_precision(
            TINY_MLA_MOE, steps=120, batch_size=8, seq_len=24, seed=0
        )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, report in reports.items():
        rows.append(
            [
                name,
                round(report.baseline.final_loss, 4),
                round(report.candidate.final_loss, 4),
                f"{report.relative_loss_gap:+.3%}",
            ]
        )
    print_table(
        "Section 2.4: FP8 fine-grained vs BF16 training (paper: |gap| < 0.25%)",
        ["model", "BF16 final loss", "FP8 final loss", "relative gap"],
        rows,
    )
    for name, report in reports.items():
        # Both runs must have actually learned something.
        assert report.baseline.final_loss < report.baseline.losses[0]
        # The paper's headline: relative loss gap under ~0.25%; at tiny
        # scale with optimizer noise we allow up to 1%.
        assert abs(report.relative_loss_gap) < 0.01, (name, report.relative_loss_gap)
