"""Perf baseline for the two discrete-event hot loops.

Times the simulation cores themselves — not the modeled systems — on
two fixed scenarios sized so the pre-optimization code took ~10 s each:

* serving: 8k requests through the disaggregated prefill/decode
  simulator (the §2.3.1 configuration at a saturating arrival rate);
* flowsim: node-limited EP dispatch traffic (§4.3) — all-to-all within
  every leaf of an 8-leaf fat-tree, 1920 flows in 8 independent
  sharing components, the shape the incremental solver exploits.

Default run rewrites ``BENCH_simcore_perf.json`` (the committed file is
the baseline).  ``--check`` instead re-runs both scenarios and exits
nonzero if any metric drifts outside ``--rtol`` of the baseline — the
CI perf-smoke gate.  The default tolerance is deliberately generous
(0.9 ⇒ elapsed may vary ~10x across machines before tripping): the
gate exists to catch order-of-magnitude algorithmic regressions, not
machine-to-machine noise.  Behavioral exactness is pinned separately by
``tests/test_simcore_golden.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np
from _report import compare, default_meta, print_table, write_json

from repro.network import Flow, FlowSimulator, two_layer_fat_tree
from repro.obs import MetricsRegistry
from repro.serving import ServingSimulator, SimConfig, WorkloadSpec

SERVING_REQUESTS = 8000
FLOWSIM_LEAVES = 8
FLOWSIM_HOSTS_PER_LEAF = 16


def run_serving(num_requests: int = SERVING_REQUESTS) -> dict:
    """8k-request disaggregated serving run; returns perf metrics."""
    config = SimConfig(
        workload=WorkloadSpec(request_rate=40.0, num_requests=num_requests),
        mode="disaggregated",
        prefill_gpus=2,
        decode_gpus=6,
        seed=0,
    )
    metrics = MetricsRegistry()
    simulator = ServingSimulator(config, metrics=metrics)
    start = time.perf_counter()
    report = simulator.run()
    elapsed = time.perf_counter() - start
    steps = metrics.counter("serving.decode_steps").value
    steps += metrics.counter("serving.prefill_batches").value
    return {
        "requests": report.completed,
        "sim_steps": steps,
        "elapsed_s": elapsed,
        "requests_per_s": report.completed / elapsed,
        "steps_per_s": steps / elapsed,
    }


def run_flowsim(
    num_leaves: int = FLOWSIM_LEAVES, hosts_per_leaf: int = FLOWSIM_HOSTS_PER_LEAF
) -> dict:
    """Leaf-local all-to-all event simulation; returns perf metrics."""
    topo = two_layer_fat_tree(
        num_leaves=num_leaves, hosts_per_leaf=hosts_per_leaf, num_spines=4
    )
    rng = np.random.default_rng(0)
    flows = []
    for leaf in range(num_leaves):
        hosts = [f"h{leaf * hosts_per_leaf + i}" for i in range(hosts_per_leaf)]
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    flows.append(
                        Flow(
                            src,
                            dst,
                            float(rng.uniform(64e6, 512e6)),
                            [src, f"FT2/leaf{leaf}", dst],
                            tag=f"leaf{leaf}",
                        )
                    )
    simulator = FlowSimulator(topo)
    start = time.perf_counter()
    result = simulator.simulate(flows)
    elapsed = time.perf_counter() - start
    return {
        "flows": len(flows),
        "elapsed_s": elapsed,
        "flows_per_s": len(flows) / elapsed,
        "makespan_ms": result.makespan * 1e3,
    }


def _rows(payload: dict) -> list[list[object]]:
    rows = []
    for core, record in payload.items():
        if core == "_meta":
            continue
        for key, value in record.items():
            rows.append([core, key, round(value, 3)])
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.9,
        help="relative drift tolerance for --check (default: 0.9)",
    )
    args = parser.parse_args(argv)

    current = {"serving": run_serving(), "flowsim": run_flowsim()}
    print_table(
        "simulation-core performance", ["core", "metric", "value"], _rows(current)
    )

    if args.check:
        path = Path(__file__).resolve().parent / "BENCH_simcore_perf.json"
        baseline = json.loads(path.read_text())
        drifts = compare(current, baseline, rtol=args.rtol)
        if drifts:
            print(f"\nperf drift vs {path.name} (rtol {args.rtol}):")
            for message in drifts:
                print(f"  {message}")
            return 1
        print(f"\nwithin {args.rtol} rtol of {path.name}")
        return 0

    write_json(
        "simcore_perf",
        current,
        meta=default_meta(
            serving=f"{SERVING_REQUESTS} req @ 40/s, disaggregated 2+6, seed 0",
            flowsim=(
                f"leaf-local all-to-all, {FLOWSIM_LEAVES} leaves x "
                f"{FLOWSIM_HOSTS_PER_LEAF} hosts, seed 0"
            ),
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
