"""Ablation: request-level serving simulation (§2.3.1–§2.3.3).

Three axes, all at equal hardware (8 GPUs):

* colocated vs disaggregated prefill/decode — §2.3.1's argument is
  that decode requests queueing behind prefill bursts inflate tail
  latency; the simulator shows it as a P99 TPOT gap.
* MTP speculative decoding on/off — §2.3.3's ~1.8x generation speedup
  shows up as a TPOT reduction at the measured acceptance rate.
* decode batch cap — the throughput/latency trade the closed-form
  frontier (bench_ablation_serving) predicts, now with queueing.

Results are recorded as ``BENCH_serving_sim.json`` via
:func:`_report.write_json`; the committed file is the baseline.
"""

from _report import default_meta, print_table, write_json

from repro.serving import (
    COLOCATED,
    DISAGGREGATED,
    MTPConfig,
    SchedulerConfig,
    ServingSimulator,
    SimConfig,
    StepCostModel,
    WorkloadSpec,
)

#: Bursty traffic with prefill-heavy requests: the regime where
#: colocation hurts decode tails the most.
WORKLOAD = WorkloadSpec(
    request_rate=6.0,
    num_requests=150,
    prompt_mean=1024,
    prompt_cv=0.5,
    output_mean=128,
    output_cv=0.5,
    arrival="bursty",
)


def _run(mode: str, mtp: bool = False, cap: int = 64, seed: int = 0):
    config = SimConfig(
        workload=WORKLOAD,
        costs=StepCostModel(mtp=MTPConfig(enabled=mtp)),
        mode=mode,
        prefill_gpus=2,
        decode_gpus=6,
        scheduler=SchedulerConfig(max_concurrent_per_gpu=cap),
        seed=seed,
    )
    return ServingSimulator(config).run()


def _row(name: str, report) -> list[object]:
    ms = 1e3
    return [
        name,
        round(report.ttft.p50 * ms, 1),
        round(report.ttft.p99 * ms, 1),
        round(report.tpot.p50 * ms, 2),
        round(report.tpot.p99 * ms, 2),
        round(report.throughput_tokens_per_s, 0),
        round(report.slo_attainment, 3),
    ]


def _record(name: str, report) -> dict:
    return {
        "ttft_p50_ms": report.ttft.p50 * 1e3,
        "ttft_p99_ms": report.ttft.p99 * 1e3,
        "tpot_p50_ms": report.tpot.p50 * 1e3,
        "tpot_p99_ms": report.tpot.p99 * 1e3,
        "e2e_p99_s": report.e2e.p99,
        "throughput_tokens_per_s": report.throughput_tokens_per_s,
        "goodput_requests_per_s": report.goodput_requests_per_s,
        "slo_attainment": report.slo_attainment,
        "preemptions": report.preemptions,
        "completed": report.completed,
    }


def bench_serving_sim_ablation(benchmark):
    def run():
        return {
            "colocated": _run(COLOCATED),
            "disaggregated": _run(DISAGGREGATED),
            "disaggregated+mtp": _run(DISAGGREGATED, mtp=True),
            "disaggregated cap=2": _run(DISAGGREGATED, cap=2),
        }

    reports = benchmark(run)
    print_table(
        "Serving simulation: 150 bursty requests, 2 prefill + 6 decode GPUs",
        ["deployment", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99", "tok/s", "SLO"],
        [_row(name, report) for name, report in reports.items()],
    )
    write_json(
        "serving_sim",
        {name: _record(name, r) for name, r in reports.items()},
        meta=default_meta(
            workload="bursty 150 req @ 6/s, prompt~1024, output~128",
            gpus="2 prefill + 6 decode",
            seed=0,
        ),
    )

    colo, disagg = reports["colocated"], reports["disaggregated"]
    mtp = reports["disaggregated+mtp"]
    capped = reports["disaggregated cap=2"]
    # §2.3.1: at equal hardware, disaggregation cuts the decode tail —
    # prefill bursts no longer block decode steps.
    assert disagg.tpot.p99 < colo.tpot.p99
    # The trade: the colocated pool throws 4x the compute at prefill,
    # so its TTFT is lower — disaggregation buys the decode tail with
    # prefill latency, which is why the pools must be sized to the mix.
    assert colo.ttft.p50 < disagg.ttft.p50
    # §2.3.3: MTP at ~85% acceptance beats 1-token decode despite the
    # draft overhead.
    assert mtp.tpot.p50 < disagg.tpot.p50 / 1.5
    assert mtp.mtp_acceptance_measured > 0.7
    # A tight admission cap keeps per-step batches small (TPOT p50 no
    # worse) but queues requests at entry, inflating TTFT tails.
    assert capped.tpot.p50 <= disagg.tpot.p50
    assert capped.ttft.p99 > disagg.ttft.p99
    # Everyone finishes the workload.
    assert all(r.completed == WORKLOAD.num_requests for r in reports.values())
