"""Ablation: request-level serving simulation (§2.3.1–§2.3.3).

Three axes, all at equal hardware (8 GPUs):

* colocated vs disaggregated prefill/decode — §2.3.1's argument is
  that decode requests queueing behind prefill bursts inflate tail
  latency; the simulator shows it as a P99 TPOT gap.
* MTP speculative decoding on/off — §2.3.3's ~1.8x generation speedup
  shows up as a TPOT reduction at the measured acceptance rate.
* decode batch cap — the throughput/latency trade the closed-form
  frontier (bench_ablation_serving) predicts, now with queueing.

The four variants run through the :mod:`repro.sweep` engine as one
explicit point list over the registered ``serving`` target, fanned out
across processes (caching off: the benchmark measures the simulator).
The shared seed is pinned in the base config so every variant sees the
same arrival stream — the ablation discipline the engine's derived
per-point seeds would otherwise (correctly) break.

Results are recorded as ``BENCH_serving_sim.json`` via
:func:`_report.write_json`; the committed file is the baseline.
"""

import os

from _report import default_meta, print_table, write_json

from repro.sweep import SweepSpec, run_sweep

#: Bursty traffic with prefill-heavy requests: the regime where
#: colocation hurts decode tails the most.  Flat keys of the sweep
#: engine's ``serving`` target (WorkloadSpec + SimConfig fields).
BASE = {
    "request_rate": 6.0,
    "num_requests": 150,
    "prompt_mean": 1024,
    "prompt_cv": 0.5,
    "output_mean": 128,
    "output_cv": 0.5,
    "arrival": "bursty",
    "prefill_gpus": 2,
    "decode_gpus": 6,
    "seed": 0,
}

VARIANTS = [
    ("colocated", {"mode": "colocated"}),
    ("disaggregated", {"mode": "disaggregated"}),
    ("disaggregated+mtp", {"mode": "disaggregated", "mtp": True}),
    ("disaggregated cap=2", {"mode": "disaggregated", "max_concurrent_per_gpu": 2}),
]

SPEC = SweepSpec(target="serving", points=[p for _, p in VARIANTS], base=BASE)


def _row(name: str, record: dict) -> list[object]:
    return [
        name,
        round(record["ttft_p50_ms"], 1),
        round(record["ttft_p99_ms"], 1),
        round(record["tpot_p50_ms"], 2),
        round(record["tpot_p99_ms"], 2),
        round(record["throughput_tokens_per_s"], 0),
        round(record["slo_attainment"], 3),
    ]


def bench_serving_sim_ablation(benchmark):
    workers = min(4, os.cpu_count() or 1)

    def run():
        result = run_sweep(SPEC, workers=workers, cache=None)
        return dict(zip([name for name, _ in VARIANTS], result.records()))

    records = benchmark(run)
    print_table(
        "Serving simulation: 150 bursty requests, 2 prefill + 6 decode GPUs",
        ["deployment", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99", "tok/s", "SLO"],
        [_row(name, record) for name, record in records.items()],
    )
    write_json(
        "serving_sim",
        records,
        meta=default_meta(
            workload="bursty 150 req @ 6/s, prompt~1024, output~128",
            gpus="2 prefill + 6 decode",
            seed=0,
            engine=f"repro.sweep, {workers} workers",
        ),
    )

    colo, disagg = records["colocated"], records["disaggregated"]
    mtp = records["disaggregated+mtp"]
    capped = records["disaggregated cap=2"]
    # §2.3.1: at equal hardware, disaggregation cuts the decode tail —
    # prefill bursts no longer block decode steps.
    assert disagg["tpot_p99_ms"] < colo["tpot_p99_ms"]
    # The trade: the colocated pool throws 4x the compute at prefill,
    # so its TTFT is lower — disaggregation buys the decode tail with
    # prefill latency, which is why the pools must be sized to the mix.
    assert colo["ttft_p50_ms"] < disagg["ttft_p50_ms"]
    # §2.3.3: MTP at ~85% acceptance beats 1-token decode despite the
    # draft overhead.
    assert mtp["tpot_p50_ms"] < disagg["tpot_p50_ms"] / 1.5
    assert mtp["mtp_acceptance_measured"] > 0.7
    # A tight admission cap keeps per-step batches small (TPOT p50 no
    # worse) but queues requests at entry, inflating TTFT tails.
    assert capped["tpot_p50_ms"] <= disagg["tpot_p50_ms"]
    assert capped["ttft_p99_ms"] > disagg["ttft_p99_ms"]
    # Everyone finishes the workload.
    assert all(r["completed"] == BASE["num_requests"] for r in records.values())
