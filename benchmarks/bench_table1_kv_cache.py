"""Table 1: KV cache size per token (BF16) — MLA vs GQA models.

Paper rows:
    DeepSeek-V3 (MLA)     70.272 KB/token   1x
    Qwen-2.5 72B (GQA)   327.680 KB/token   4.66x
    LLaMA-3.1 405B (GQA) 516.096 KB/token   7.28x
"""

from _report import print_table

from repro.model import DEEPSEEK_V3, LLAMA31_405B, QWEN25_72B, compare_kv_cache

PAPER_KB = {"DeepSeek-V3": 70.272, "Qwen-2.5 72B": 327.680, "LLaMA-3.1 405B": 516.096}


def bench_table1(benchmark):
    reports = benchmark(
        compare_kv_cache, [DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B], DEEPSEEK_V3
    )
    rows = []
    for report in reports:
        rows.append(
            [
                f"{report.model_name} ({report.attention_kind})",
                PAPER_KB[report.model_name],
                round(report.kb_per_token, 3),
                f"{report.multiplier:.2f}x",
            ]
        )
    print_table(
        "Table 1: KV cache per token",
        ["model", "paper KB", "measured KB", "multiplier"],
        rows,
    )
    by_name = {r.model_name: r for r in reports}
    for name, kb in PAPER_KB.items():
        assert abs(by_name[name].kb_per_token - kb) < 1e-6, name
    assert by_name["Qwen-2.5 72B"].multiplier > 4.5
    assert by_name["LLaMA-3.1 405B"].multiplier > 7.0
