"""Million-request scale baseline for the streaming serving core.

The tentpole claim of the streaming rework is that simulation memory is
O(active requests + histogram buckets), not O(total requests): a
million-request run must fit in roughly the same footprint as a
hundred-thousand-request run.  This bench measures exactly that —
each scale runs in a **fresh subprocess** (``--measure``), because peak
RSS is a process-lifetime high-water mark and scenarios measured in one
process would alias each other's peaks.

Default run rewrites ``BENCH_simcore_scale.json`` with, per scale,
throughput (requests/s of sim wall-clock) and peak RSS, plus the
100k→1M RSS ratio — which must stay ≤ ``MAX_RSS_RATIO`` (2×, the
sublinear-memory acceptance gate) or the bench itself fails.

``--check`` is the CI memory gate: it re-runs only the 100k-request
streaming scenario and exits nonzero if its peak RSS exceeds the
committed ``check.max_peak_rss_bytes`` bound.  The bound is generous
(machine-independent headroom over the measured value); it exists to
catch reintroduced O(total-requests) state, not allocator noise.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _report import default_meta, print_table, write_json

SCALES = (100_000, 1_000_000)
#: Acceptance gate: peak RSS may at most double from 100k → 1M requests.
MAX_RSS_RATIO = 2.0


def run_scale(num_requests: int) -> dict:
    """One streaming serving run at ``num_requests``; perf + RSS metrics.

    Only meaningful in a fresh process (see module docstring) — use
    :func:`measure_in_subprocess` unless you *are* the subprocess.
    """
    from repro.core.proc import peak_rss_bytes
    from repro.serving import ServingSimulator, SimConfig, WorkloadSpec

    config = SimConfig(
        workload=WorkloadSpec(request_rate=8.0, num_requests=num_requests),
        mode="disaggregated",
        prefill_gpus=2,
        decode_gpus=6,
        seed=0,
    )
    simulator = ServingSimulator(config)
    start = time.perf_counter()
    report = simulator.run()
    elapsed = time.perf_counter() - start
    return {
        "requests": num_requests,
        "completed": report.completed,
        "tokens_generated": report.tokens_generated,
        "sim_duration_s": report.duration,
        "elapsed_s": elapsed,
        "requests_per_s": report.completed / elapsed,
        "ttft_p99_ms": report.ttft.p99 * 1e3,
        "tpot_p99_ms": report.tpot.p99 * 1e3,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def measure_in_subprocess(num_requests: int) -> dict:
    """Run :func:`run_scale` in a fresh interpreter and parse its JSON."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, __file__, "--measure", str(num_requests)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def _rows(scales: dict) -> list[list[object]]:
    rows = []
    for label, record in scales.items():
        for key in ("elapsed_s", "requests_per_s", "peak_rss_bytes"):
            rows.append([label, key, round(record[key], 3)])
    return rows


def _baseline_path() -> Path:
    return Path(__file__).resolve().parent / "BENCH_simcore_scale.json"


def _check(rtol_unused: float | None = None) -> int:
    """CI memory gate: 100k streaming run under the committed RSS bound."""
    baseline = json.loads(_baseline_path().read_text())
    gate = baseline["check"]
    requests = int(gate["requests"])
    bound = int(gate["max_peak_rss_bytes"])
    record = measure_in_subprocess(requests)
    rss = record["peak_rss_bytes"]
    print(
        f"{requests} streaming requests: peak RSS "
        f"{rss / 1e6:.1f} MB (bound {bound / 1e6:.1f} MB), "
        f"{record['requests_per_s']:.0f} req/s"
    )
    if record["completed"] != requests:
        print(f"completed {record['completed']} != {requests}")
        return 1
    if rss > bound:
        print("peak RSS exceeds the committed bound: O(total-requests) "
              "state has crept back into the streaming path")
        return 1
    print("memory gate ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measure",
        type=int,
        metavar="N",
        help="internal: run one N-request scenario and print JSON metrics",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the 100k memory gate against the committed baseline",
    )
    args = parser.parse_args(argv)

    if args.measure is not None:
        print(json.dumps(run_scale(args.measure)))
        return 0
    if args.check:
        return _check()

    scales = {str(n): measure_in_subprocess(n) for n in SCALES}
    print_table(
        "serving-core scale (streaming mode)", ["scale", "metric", "value"], _rows(scales)
    )
    small, large = (scales[str(n)] for n in SCALES)
    ratio = large["peak_rss_bytes"] / small["peak_rss_bytes"]
    print(f"\npeak RSS {SCALES[0]} -> {SCALES[1]} requests: {ratio:.2f}x")
    if ratio > MAX_RSS_RATIO:
        print(f"FAIL: RSS ratio {ratio:.2f} exceeds {MAX_RSS_RATIO}x — memory "
              "is not sublinear in request count")
        return 1
    # The committed gate bound: generous headroom over the measured 100k
    # footprint so machine variance never trips CI, while any return to
    # O(total-requests) state (hundreds of MB at 100k) still does.
    bound = 2 * small["peak_rss_bytes"]
    write_json(
        "simcore_scale",
        {
            "scales": scales,
            "rss_ratio": ratio,
            "check": {"requests": SCALES[0], "max_peak_rss_bytes": bound},
        },
        meta=default_meta(
            scenario="streaming disaggregated 2+6 @ 8 req/s (stable region), seed 0",
            isolation="one fresh subprocess per scale (RSS is a high-water mark)",
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
