"""Figure 5: NCCL all-to-all bus bandwidth, 32-128 GPUs, MRFT vs MPFT.

The paper's finding: the multi-plane network performs the same as the
single-plane multi-rail network (PXN forwards cross-plane traffic over
NVLink in both), with per-GPU bus bandwidth in the tens of GB/s
settling toward NIC saturation as the job spans more nodes.
"""

from _report import print_table

from repro.network import build_mpft_cluster, build_mrft_cluster, run_all_to_all

GPU_COUNTS = (32, 64, 128)
BYTES_PER_PAIR = 1 << 20


def _sweep():
    series = {"mpft": [], "mrft": []}
    for gpus in GPU_COUNTS:
        for builder in (build_mpft_cluster, build_mrft_cluster):
            cluster = builder(gpus // 8)
            result = run_all_to_all(cluster, cluster.gpus(), BYTES_PER_PAIR, mode="drain")
            series[cluster.scheme].append(result.busbw / 1e9)
    return series


def bench_fig5(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [n, round(series["mpft"][i], 2), round(series["mrft"][i], 2)]
        for i, n in enumerate(GPU_COUNTS)
    ]
    print_table(
        "Figure 5: all-to-all busbw (GB/s per GPU), MPFT vs MRFT",
        ["GPUs", "MPFT", "MRFT"],
        rows,
    )
    for i in range(len(GPU_COUNTS)):
        # Parity between the topologies (the headline finding).
        assert abs(series["mpft"][i] - series["mrft"][i]) / series["mrft"][i] < 0.01
        # Tens of GB/s, bounded below by NIC effective bandwidth.
        assert series["mpft"][i] > 40.0
    # Declines toward saturation as the node count grows.
    assert series["mpft"][0] > series["mpft"][-1]
