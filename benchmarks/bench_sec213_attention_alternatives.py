"""Section 2.1.3: resource-efficient attention alternatives.

Quantifies the survey the paper closes its memory-efficiency section
with: per-decode-token cache reads and FLOPs of full MLA attention vs
windowed KV, quantized KV, NSA-style sparse attention and linear-time
(SSM-style) alternatives, across context lengths.  Also the training
cost-efficiency headline the co-design enables: the simulated cluster
reproduces the published 2.664M GPU-hour / ~$5.3M pre-training budget.
"""

from _report import print_table

from repro.model import DEEPSEEK_V3, compare_decode_costs, full_attention_cost, linear_attention_cost
from repro.parallel import (
    TrainingJobConfig,
    simulate_training_step,
    training_cost_usd,
    training_gpu_hours,
)


def bench_sec213_decode_cost_vs_context(benchmark):
    contexts = (4096, 32_768, 131_072, 1_048_576)

    def run():
        return {ctx: compare_decode_costs(DEEPSEEK_V3, ctx) for ctx in contexts}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for ctx, costs in table.items():
        for c in costs:
            rows.append(
                [ctx, c.name, round(c.cache_bytes_read / 2**20, 1), round(c.flops / 1e9, 2)]
            )
    print_table(
        "Section 2.1.3: decode-step attention cost vs context (DeepSeek-V3)",
        ["context", "strategy", "cache read (MiB)", "FLOPs (G)"],
        rows,
    )
    # The quadratic wall: full attention at 1M tokens reads ~70 GB per
    # step; linear-time stays flat — the paper's motivation.
    full_1m = full_attention_cost(DEEPSEEK_V3, 1_048_576)
    linear_1m = linear_attention_cost(DEEPSEEK_V3, 1_048_576)
    assert full_1m.cache_bytes_read > 60e9
    assert linear_1m.cache_bytes_read < full_1m.cache_bytes_read / 100


def bench_training_cost_headline(benchmark):
    """The cost-efficiency thesis, end to end: the simulated 2048-GPU
    cluster reproduces the published V3 pre-training budget."""

    def run():
        report = simulate_training_step(TrainingJobConfig())
        return (
            training_gpu_hours(report, 14.8e12),
            training_cost_usd(report, 14.8e12, gpu_hour_rate=2.0),
        )

    hours, cost = benchmark(run)
    print_table(
        "V3 pre-training budget (14.8T tokens on 2048 H800s)",
        ["quantity", "published", "simulated"],
        [
            ["GPU-hours (M)", 2.664, round(hours / 1e6, 3)],
            ["cost @ $2/GPU-h ($M)", 5.328, round(cost / 1e6, 2)],
        ],
    )
    assert abs(hours - 2.664e6) / 2.664e6 < 0.05
    assert abs(cost - 5.328e6) / 5.328e6 < 0.05
