"""Ablation: PCIe bandwidth contention between KV-cache transfers and
EP communication (Section 4.5), and the suggested traffic priority fix.
"""

from _report import print_table

from repro.comm import ep_slowdown, shared_pipe_times


def bench_contention(benchmark):
    ep_bytes = 0.5e9  # one EP burst
    pipe = 55e9  # effective PCIe 5.0 x16

    def run():
        rows = []
        for kv_gb in (0, 1, 4, 16):
            kv = kv_gb * 1e9
            fair = ep_slowdown(ep_bytes, kv, pipe, "fair")
            prio = ep_slowdown(ep_bytes, kv, pipe, "priority")
            bulk = ep_slowdown(ep_bytes, kv, pipe, "bulk_first")
            rows.append((kv_gb, fair, prio, bulk))
        return rows

    rows = benchmark(run)
    print_table(
        "Section 4.5: EP latency inflation vs concurrent KV transfer",
        ["KV transfer (GB)", "fair sharing", "EP priority", "bulk first"],
        [
            [kv, f"{fair:.2f}x", f"{prio:.2f}x", f"{bulk:.2f}x"]
            for kv, fair, prio, bulk in rows
        ],
    )
    # No KV traffic: no inflation anywhere.
    assert rows[0][1] == 1.0
    for kv, fair, prio, bulk in rows[1:]:
        assert prio == 1.0  # the §4.5.2 fix removes the spike entirely
        assert fair >= 1.5  # today's hardware: latency spikes
        assert bulk > fair  # worst-case arbitration


def bench_contention_kv_stream_cost(benchmark):
    """The bulk stream still completes promptly under EP priority."""

    def run():
        return shared_pipe_times(0.5e9, 4e9, 55e9, "priority")

    result = benchmark(run)
    print_table(
        "Section 4.5: stream completion under EP-priority arbitration",
        ["stream", "completion (ms)"],
        [
            ["EP (latency-critical)", round(result.ep_time * 1e3, 2)],
            ["KV prefetch (bulk)", round(result.kv_time * 1e3, 2)],
        ],
    )
    assert result.kv_time < 0.2
