"""Library micro-benchmarks: the reproduction's own kernels.

Not a paper table — these time the repository's numpy kernels with
pytest-benchmark so regressions in the substrates are visible:

* MLA decode via the absorbed (latent-cached) path vs naive per-head
  decompression — the absorbed path touches far less memory, which is
  the mechanism behind Table 1's savings;
* fine-grained FP8 quantization and the emulated tensor-core GEMM;
* EP traffic-matrix construction and max-min allocation.
"""

import numpy as np

from repro.comm import EPConfig, EPDeployment
from repro.model import TINY_MLA_MOE, AttentionConfig, AttentionKind
from repro.model.attention import MultiHeadLatentAttention
from repro.network import build_mpft_cluster
from repro.precision import E4M3, fp8_matmul, quantize_blocks, quantize_tiles

RNG = np.random.default_rng


def _mla_block():
    cfg = AttentionConfig(
        kind=AttentionKind.MLA,
        num_heads=16,
        qk_head_dim=64,
        v_head_dim=64,
        kv_lora_rank=128,
        q_lora_rank=192,
        qk_rope_head_dim=32,
    )
    return MultiHeadLatentAttention(cfg, hidden_size=512, rng=RNG(0))


def _prefilled(attn, context):
    cache = attn.make_cache(1)
    attn(RNG(1).normal(size=(1, context, 512)).astype(np.float32), cache)
    return cache


def bench_mla_decode_absorbed(benchmark):
    attn = _mla_block()
    cache = _prefilled(attn, 512)
    x = RNG(2).normal(size=(1, 1, 512)).astype(np.float32)

    def step():
        snapshot = len(cache)
        out = attn(x, cache, absorbed=True)
        cache.truncate(snapshot)
        return out

    out = benchmark(step)
    assert out.shape == (1, 1, 512)


def bench_mla_decode_naive(benchmark):
    attn = _mla_block()
    cache = _prefilled(attn, 512)
    x = RNG(3).normal(size=(1, 1, 512)).astype(np.float32)

    def step():
        snapshot = len(cache)
        out = attn(x, cache, absorbed=False)
        cache.truncate(snapshot)
        return out

    out = benchmark(step)
    assert out.shape == (1, 1, 512)


def bench_fp8_tile_quantization(benchmark):
    x = RNG(4).normal(size=(256, 2048)).astype(np.float32)
    q = benchmark(quantize_tiles, x, E4M3, 128)
    assert q.scales.shape == (256, 16)


def bench_fp8_block_quantization(benchmark):
    w = RNG(5).normal(size=(1024, 1024)).astype(np.float32)
    q = benchmark(quantize_blocks, w, E4M3, 128)
    assert q.scales.shape == (8, 8)


def bench_emulated_fp8_gemm(benchmark):
    a = RNG(6).normal(size=(64, 256)).astype(np.float32)
    b = RNG(7).normal(size=(256, 64)).astype(np.float32)
    out = benchmark.pedantic(
        lambda: fp8_matmul(a, b, accumulation="hopper_promoted"), rounds=3, iterations=1
    )
    assert out.shape == (64, 64)


def bench_ep_traffic_construction(benchmark):
    cluster = build_mpft_cluster(4)
    deployment = EPDeployment(cluster, EPConfig(256, 8, hidden_size=7168))
    decisions = deployment.route_tokens(1024, RNG(8))

    def build():
        ib, nvlink = deployment.dispatch_traffic(decisions)
        return len(ib), len(nvlink)

    ib_pairs, nv_pairs = benchmark(build)
    assert ib_pairs > 0 and nv_pairs > 0


def bench_tiny_model_loss_step(benchmark):
    """Forward+backward of the trainable tiny model — the §2.4 unit."""
    from repro.training import TrainableTransformer

    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    tokens = RNG(9).integers(0, 256, size=(4, 16))

    def step():
        breakdown = model.loss(tokens)
        breakdown.total.backward()
        for p in model.parameters():
            p.zero_grad()
        return float(breakdown.total.data)

    loss = benchmark.pedantic(step, rounds=3, iterations=1)
    assert loss > 0
