"""Fault-injection ablation across the three discrete-event simulators.

Runs each simulator fault-free and under injected failures, recording
what the outage costs — completed/dropped/shed requests and goodput for
serving, stall and reroute makespans for the network, goodput versus
the Young-Daly closed form for checkpointed training.

Unlike the perf bench, every number here is **deterministic** (seeded
simulations, no wall-clock measurements), so the committed
``BENCH_faults.json`` is an exact behavioral baseline: ``--check``
re-runs the ablation and exits nonzero on any drift beyond a tiny
float tolerance — the CI fault-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _report import compare, default_meta, print_table, write_json

from repro.faults import (
    FaultEvent,
    FaultSchedule,
    cluster_reroute,
    expand_plane_schedule,
)
from repro.network import Flow, FlowSimulator, build_mpft_cluster, pxn_path
from repro.reliability import goodput_fraction, optimal_checkpoint_interval
from repro.sweep import SweepSpec, run_sweep

SEED = 7

#: The serving scenario, as flat keys of the sweep engine's ``serving``
#: target.  The seed is pinned in the base config so every fault
#: variant replays the identical arrival stream.
_SERVING_BASE = {
    "request_rate": 10.0,
    "num_requests": 300,
    "prompt_mean": 512,
    "output_mean": 128,
    "arrival": "bursty",
    "mode": "colocated",
    "prefill_gpus": 2,
    "decode_gpus": 8,
    "kv_blocks_per_gpu": 40,
    "seed": SEED,
    "recovery": {"retry_budget": 2, "degraded_queue_limit": 24},
}


def _schedule_dict(schedule: FaultSchedule) -> dict:
    """JSON-able schedule form the sweep target reconstructs from."""
    return json.loads(schedule.to_json())


def _serving_record(record: dict) -> dict:
    out = {
        "completed": record["completed"],
        "goodput_rps": round(record["goodput_requests_per_s"], 6),
        "slo_attainment": round(record["slo_attainment"], 6),
    }
    d = record.get("degradation")
    if d is not None:
        out.update(
            dropped=d["dropped"],
            shed=d["shed"],
            retries=d["retries"],
            evicted=d["evicted"],
            unserved=d["unserved"],
            lost_tokens=d["lost_tokens"],
            accounted=d["accounted"],
        )
    return out


def run_serving() -> dict:
    """Fault-free vs single-node-failure vs MTBF-sampled serving,
    fanned out as one three-point sweep over the fault schedule."""
    node_fault = FaultSchedule(
        events=(FaultEvent(time=5.0, kind="node", target="pool", mttr=10.0),)
    )
    sampled = FaultSchedule.sampled(
        mtbf=15.0, horizon=40.0, seed=SEED, kind="gpu", targets=("pool",), mttr=5.0
    )
    variants = [
        ("fault_free", {}),
        ("node_failure", {"faults": _schedule_dict(node_fault)}),
        ("mtbf_sampled", {"faults": _schedule_dict(sampled)}),
    ]
    spec = SweepSpec(
        target="serving", points=[p for _, p in variants], base=_SERVING_BASE
    )
    result = run_sweep(spec, workers=2, cache=None)
    return {
        name: _serving_record(record)
        for (name, _), record in zip(variants, result.records())
    }


def run_network() -> dict:
    """Plane-outage ablation: stall vs reroute vs repair (§5.1.1)."""
    cluster = build_mpft_cluster(4)
    flows = [
        Flow(f"n0g{p}", f"n1g{p}", 1e9, pxn_path(cluster, f"n0g{p}", f"n1g{p}"), tag=f"p{p}")
        for p in range(4)
    ]
    sim = FlowSimulator(cluster.topology)
    base = sim.simulate(flows)

    def plane_outage(mttr: float) -> FaultSchedule:
        return expand_plane_schedule(
            cluster,
            FaultSchedule(
                events=(FaultEvent(time=0.001, kind="plane", target="0", mttr=mttr),)
            ),
        )

    permanent = plane_outage(float("inf"))
    stalled = sim.simulate(flows, faults=permanent)
    stall_report = sim.fault_report
    rerouted = sim.simulate(flows, faults=permanent, reroute=cluster_reroute(cluster))
    repaired = sim.simulate(flows, faults=plane_outage(0.02))
    return {
        "fault_free_ms": round(base.makespan * 1e3, 6),
        "stall_unfinished": len(stall_report.unfinished),
        "stall_survivor_ms": round(stalled.makespan * 1e3, 6),
        "reroute_ms": round(rerouted.makespan * 1e3, 6),
        "repair_ms": round(repaired.makespan * 1e3, 6),
    }


def run_training() -> dict:
    """Checkpoint-interval ablation against the Young-Daly optimum,
    as one sweep over ``interval_s`` on the ``training`` target."""
    mtbf, ckpt, restart = 7200.0, 60.0, 900.0
    optimal = optimal_checkpoint_interval(ckpt, mtbf)
    spec = SweepSpec(
        target="training",
        points=[{"interval_s": optimal}, {"interval_s": optimal / 2}, {"interval_s": optimal * 2}],
        base={
            "work_s": 100 * mtbf,
            "checkpoint_s": ckpt,
            "restart_s": restart,
            "mtbf_s": mtbf,
            "seed": 42,
        },
    )
    result = run_sweep(spec, workers=2, cache=None)
    at_optimal, at_half, at_double = (
        round(r["goodput"], 6) for r in result.records()
    )
    return {
        "predicted_optimal": round(goodput_fraction(ckpt, restart, mtbf, optimal), 6),
        "optimal_interval": at_optimal,
        "half_interval": at_half,
        "double_interval": at_double,
    }


def _rows(payload: dict) -> list[list[object]]:
    rows = []
    for sim, record in payload.items():
        if sim == "_meta":
            continue
        for key, value in record.items():
            if isinstance(value, dict):
                for sub, subval in value.items():
                    rows.append([sim, f"{key}.{sub}", subval])
            else:
                rows.append([sim, key, value])
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=1e-6,
        help="relative drift tolerance for --check (deterministic payload)",
    )
    args = parser.parse_args(argv)

    current = {
        "serving": run_serving(),
        "network": run_network(),
        "training": run_training(),
    }
    print_table("fault-injection ablation", ["simulator", "metric", "value"], _rows(current))

    if args.check:
        path = Path(__file__).resolve().parent / "BENCH_faults.json"
        baseline = json.loads(path.read_text())
        drifts = compare(current, baseline, rtol=args.rtol)
        if drifts:
            print(f"\nfault-ablation drift vs {path.name} (rtol {args.rtol}):")
            for message in drifts:
                print(f"  {message}")
            return 1
        print(f"\nwithin {args.rtol} rtol of {path.name}")
        return 0

    write_json(
        "faults",
        current,
        meta=default_meta(
            serving=f"300 req @ 10/s bursty, colocated 2+8, kv 40/GPU, seed {SEED}",
            network="MPFT 4 nodes, 4x1GB pxn flows, plane-0 outage at t=1ms",
            training="mtbf 7200s, ckpt 60s, restart 900s, 720ks work, seed 42",
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
