"""Ablations: hierarchical DP all-reduce and the training memory plan.

* The 4:1 NVLink:NIC bandwidth hierarchy (§4.3) makes hierarchical
  all-reduce (NVLink reduce-scatter -> per-plane IB ring -> NVLink
  all-gather) several times faster than a flat ring — the traffic the
  MRFT/MPFT rails are designed for.
* The §4.2 memory claim: the V3 sharding plan fits 80 GB, and DualPipe
  balances peak activation memory across ranks where 1F1B does not.
"""

from _report import print_table

from repro.model import DEEPSEEK_V3
from repro.network import (
    build_mpft_cluster,
    flat_ring_allreduce_time,
    run_hierarchical_allreduce,
)
from repro.parallel import (
    ShardingPlan,
    activation_imbalance,
    training_memory_per_gpu,
)

GIB = 1024**3


def bench_hierarchical_allreduce(benchmark):
    size = 1 << 28  # 256 MiB of gradients per GPU

    def run():
        cluster = build_mpft_cluster(8)
        hier = run_hierarchical_allreduce(cluster, size)
        flat = flat_ring_allreduce_time(cluster, size)
        return hier, flat

    hier, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "DP all-reduce of 256 MiB/GPU on 64 GPUs (8 nodes)",
        ["algorithm", "time (ms)", "busbw (GB/s)"],
        [
            [
                "hierarchical (NVLink + per-plane IB)",
                round(hier.total_time * 1e3, 2),
                round(hier.busbw / 1e9, 1),
            ],
            ["flat ring over all GPUs", round(flat * 1e3, 2), "-"],
            ["speedup", f"{flat / hier.total_time:.2f}x", "-"],
        ],
    )
    assert flat > 2 * hier.total_time


def bench_training_memory_plan(benchmark):
    plan = ShardingPlan()

    def run():
        return training_memory_per_gpu(DEEPSEEK_V3, plan)

    breakdown = benchmark(run)
    print_table(
        "Per-GPU training memory, V3 plan (PP16, EP64, FP8 weights)",
        ["component", "GiB"],
        [
            ["weights (FP8)", round(breakdown.weights / GIB, 2)],
            ["gradients (BF16)", round(breakdown.gradients / GIB, 2)],
            ["FP32 master + Adam moments (sharded)", round(breakdown.master_and_optimizer / GIB, 2)],
            ["activations (DualPipe peak)", round(breakdown.activations / GIB, 2)],
            ["total", round(breakdown.total / GIB, 2)],
            ["H800 HBM", 80.0],
        ],
    )
    assert breakdown.total < 0.6 * 80 * GIB


def bench_schedule_memory_balance(benchmark):
    def run():
        return {
            "1F1B": activation_imbalance("1f1b", 16),
            "DualPipe": activation_imbalance("dualpipe", 16),
        }

    imbalance = benchmark(run)
    print_table(
        "Peak activation imbalance across 16 pipeline ranks (max/min)",
        ["schedule", "imbalance"],
        [[name, f"{v:.1f}x"] for name, v in imbalance.items()],
    )
    # §4.2: DualPipe "balances memory usage across GPUs".
    assert imbalance["DualPipe"] == 1.0
    assert imbalance["1F1B"] == 16.0
