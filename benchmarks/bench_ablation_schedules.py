"""Ablation: pipeline schedules — 1F1B vs ZB1P vs DualPipe (§4.2).

The paper adopts DualPipe for its small bubble and balanced memory.
This bench compares the analytic bubbles of the three schedule
families at the V3 chunk-cost ratios and cross-checks the event-level
simulator, printing a rendered timeline for visual inspection.
"""

from _report import print_table

from repro.parallel import (
    ChunkCosts,
    TrainingJobConfig,
    analytic_1f1b_bubble,
    analytic_dualpipe_bubble,
    analytic_zb1p_bubble,
    simulate_pipeline,
)


def bench_schedule_bubbles(benchmark):
    costs = TrainingJobConfig().chunk_costs()
    p = 16

    def run():
        return {
            "1F1B": analytic_1f1b_bubble(p, costs),
            "ZB1P": analytic_zb1p_bubble(p, costs),
            "DualPipe": analytic_dualpipe_bubble(p, costs),
        }

    bubbles = benchmark(run)
    busy = 120 * costs.total  # Table 4 job: 120 micro-batches/rank
    print_table(
        "Pipeline bubble comparison at V3 chunk costs (PP=16)",
        ["schedule", "bubble (s)", "bubble fraction of step"],
        [
            [name, round(b, 2), f"{b / (busy + b):.1%}"]
            for name, b in bubbles.items()
        ],
    )
    assert bubbles["DualPipe"] < bubbles["ZB1P"] < bubbles["1F1B"]


def bench_schedule_event_sim_and_render(benchmark):
    costs = ChunkCosts(1.0, 1.76, 0.42)

    def run():
        dual = simulate_pipeline(8, 6, costs, bidirectional=True)
        uni = simulate_pipeline(8, 12, costs, bidirectional=False)
        return dual, uni

    dual, uni = benchmark.pedantic(run, rounds=1, iterations=1)
    dual.validate()
    uni.validate()
    print_table(
        "Event-level schedules, equal total work (PP=8, 12 micro-batches)",
        ["schedule", "total time", "bubble fraction"],
        [
            ["DualPipe (bidirectional)", round(dual.total_time, 1), f"{dual.bubble_fraction:.1%}"],
            ["unidirectional zero-bubble", round(uni.total_time, 1), f"{uni.bubble_fraction:.1%}"],
        ],
    )
    print("\nDualPipe timeline (F/B/W; lowercase = reverse direction):")
    print(dual.render(width=96))
    assert dual.bubble_fraction < 0.25
    assert dual.total_time <= uni.total_time * 1.1
