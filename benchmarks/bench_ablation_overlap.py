"""Ablation: dual micro-batch overlap and SM-driven communication.

Quantifies two design choices DESIGN.md calls out:
 * §2.3.1 dual micro-batch overlap — a layer costs max(compute, comm)
   instead of their sum;
 * §4.4.1 SM-driven communication — up to 20 of 132 SMs lost to
   communication inflate compute ~18%, which full NIC-RDMA offload
   (IBGDA, used for inference) avoids.
"""

from _report import print_table

from repro.comm import (
    CPU_PROXY,
    H800_COMM_SMS_TRAINING,
    IBGDA,
    StageTimes,
    ibgda_speedup,
    layer_time,
    overlap_efficiency,
)

STAGES = StageTimes(
    attention_compute=350e-6,
    moe_compute=250e-6,
    dispatch_comm=121e-6,
    combine_comm=242e-6,
)


def bench_overlap_and_sm_allocation(benchmark):
    def run():
        return {
            "serial, 20 comm SMs": layer_time(
                STAGES, dual_microbatch=False, comm_sms=H800_COMM_SMS_TRAINING
            ),
            "overlapped, 20 comm SMs (training)": layer_time(
                STAGES, dual_microbatch=True, comm_sms=H800_COMM_SMS_TRAINING
            ),
            "overlapped, RDMA offload (inference)": layer_time(
                STAGES, dual_microbatch=True, comm_sms=0
            ),
        }

    times = benchmark(run)
    baseline = times["serial, 20 comm SMs"]
    print_table(
        "Ablation: per-layer time under overlap / SM-allocation regimes",
        ["configuration", "layer time (us)", "speedup"],
        [
            [name, round(t * 1e6, 1), f"{baseline / t:.2f}x"]
            for name, t in times.items()
        ],
    )
    assert times["overlapped, 20 comm SMs (training)"] < baseline
    assert (
        times["overlapped, RDMA offload (inference)"]
        < times["overlapped, 20 comm SMs (training)"]
    )
    assert overlap_efficiency(STAGES) > 0.2


def bench_ibgda_control_plane(benchmark):
    """§5.2.3: GPU-driven control plane vs CPU proxy for small sends."""

    def run():
        return {n: ibgda_speedup(n) for n in (1, 64, 4096, 65536)}

    speedups = benchmark(run)
    print_table(
        "Ablation: IBGDA speedup over CPU-proxy control plane",
        ["messages", "proxy (us)", "IBGDA (us)", "speedup"],
        [
            [
                n,
                round(CPU_PROXY.batch_time(n) * 1e6, 2),
                round(IBGDA.batch_time(n) * 1e6, 2),
                f"{s:.1f}x",
            ]
            for n, s in speedups.items()
        ],
    )
    assert speedups[1] > 1
    assert speedups[65536] > 100
