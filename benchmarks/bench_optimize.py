"""Co-design optimizer vs exhaustive grids: three paper rediscoveries.

Each scenario runs :func:`repro.optimize.run_search` *and* the
exhaustive grid at full fidelity, then gates three things: the search
frontier is **byte-identical** to the grid frontier, the search
trajectory is byte-identical at workers 1 vs 4 (with a warm re-search
evaluating zero points), and the search reached that frontier with a
fraction of the grid's evaluated **simulated seconds** (record-derived,
machine-independent):

* **sec23** (§2.3, the headline ≥10× gate) — colocated vs disaggregated
  prefill/decode × arrival rate × GPU split on the serving simulator,
  ``maximize goodput_tokens_per_s s.t. tpot_p99<=0.015``.  Rediscovers
  the disaggregation crossover: colocated serving falls off the SLO at
  a low arrival rate while a rebalanced disaggregated split sustains
  4× higher rates.
* **sec43** (§4.3) — node-limited routing on the EP dispatch stage,
  ``minimize stage_time_s s.t. score_retention>=0.995``.  Rediscovers
  the paper's cap of M=4 nodes per token: the cheapest dispatch that
  keeps ≳99.5% of unrestricted routing's affinity mass.
* **sec51** (§5.1) — topology cost search over fat-tree variants,
  ``pareto(min:cost_per_endpoint_kusd, max:endpoints)`` at ≥16 384
  endpoints.  Rediscovers MPFT: it stays on the cost/scale frontier
  while the three-layer fat tree is dominated (≈0.6× MPFT's per-
  endpoint cost advantage).

A final section micro-benches :meth:`SweepCache.get_many` (the batched
probe behind every search rung) against per-key ``get`` on warm hits
and on an all-miss frontier probe.

``BENCH_optimize.json`` is the committed baseline; ``--check`` re-runs
everything, re-asserts every gate, and compares the deterministic
payload (wall-clock fields are stripped; simulated seconds are not —
they are pure functions of the records).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np
from _report import compare, default_meta, print_table, write_json

from repro.optimize import (
    FidelityLadder,
    SearchSpec,
    frontier_of,
    parse_objective,
    register_ladder,
    run_search,
)
from repro.sweep import SweepCache, SweepSpec, get_target, grid, register_target, run_sweep

# --------------------------------------------------------------- targets


@register_target("bench_sec23_serving")
def _sec23_target(config: dict, seed: int) -> dict:
    """Serving simulator with a coupled GPU split axis ("P+D")."""
    cfg = dict(config)
    prefill, decode = (int(x) for x in cfg.pop("gpu_split").split("+"))
    cfg.update(prefill_gpus=prefill, decode_gpus=decode)
    return get_target("serving")(cfg, seed)


register_ladder(
    "bench_sec23_serving",
    FidelityLadder(key="num_requests", rungs=(250, 2000, 8000), cost="duration_s"),
)


@register_target("bench_sec43_dispatch")
def _sec43_target(config: dict, seed: int) -> dict:
    """EP dispatch under node-limited routing on the 8-node MPFT cluster.

    ``score_retention`` is the affinity mass the limited top-k keeps
    relative to unrestricted top-k on the *same* score draws;
    ``stage_time_s`` is the simulated fabric time of the dispatch
    all-to-all (the fidelity cost).
    """
    from repro.comm.ep import EPConfig, EPDeployment, run_ep_stage
    from repro.model.routing import node_limited_topk, topk_routing
    from repro.network import build_mpft_cluster

    cfg = dict(config)
    cfg.pop("seed", None)
    max_groups = int(cfg.pop("max_groups"))
    tokens = int(cfg.pop("tokens"))
    if cfg:
        raise ValueError(f"unknown sec43 keys: {sorted(cfg)}")
    cluster = build_mpft_cluster(8)
    deployment = EPDeployment(
        cluster,
        EPConfig(
            num_routed_experts=256,
            experts_per_token=8,
            # max_groups == num nodes means unrestricted routing.
            max_nodes_per_token=max_groups if max_groups < 8 else 0,
        ),
    )
    decisions = deployment.route_tokens(tokens, np.random.default_rng(seed))
    replay = np.random.default_rng(seed)  # same draws, scored both ways
    row = np.arange(tokens)[:, None]
    kept = 0.0
    free = 0.0
    for _ in cluster.gpus():
        scores = replay.uniform(size=(tokens, 256))
        if max_groups < 8:
            limited = node_limited_topk(scores, 8, num_groups=8, max_groups=max_groups)
        else:
            limited = topk_routing(scores, 8)
        kept += float(scores[row, limited.expert_ids].sum())
        free += float(scores[row, topk_routing(scores, 8).expert_ids].sum())
    stage = run_ep_stage(deployment, decisions, "dispatch")
    return {
        "stage_time_s": stage.time,
        "score_retention": kept / free,
        "ib_gbytes_per_gpu": stage.ib_bytes_per_gpu / 1e9,
    }


register_ladder(
    "bench_sec43_dispatch",
    FidelityLadder(key="tokens", rungs=(128, 512, 2048), cost="stage_time_s"),
)


@register_target("bench_sec51_topology")
def _sec51_target(config: dict, seed: int) -> dict:
    """Closed-form Table-3 cost model of one topology variant."""
    del seed  # deterministic closed form
    from repro.network import (
        CostModel,
        DragonflyParams,
        dragonfly_spec,
        ft2_spec,
        ft3_spec,
        mpft_spec,
        slimfly_spec,
    )

    cfg = dict(config)
    cfg.pop("seed", None)
    cfg.pop("fidelity", None)  # single-rung ladder key: no knob to turn
    family, _, scale = cfg.pop("variant").partition(":")
    scale = int(scale)
    if cfg:
        raise ValueError(f"unknown sec51 keys: {sorted(cfg)}")
    spec = {
        "ft2": lambda: ft2_spec(scale),
        "mpft": lambda: mpft_spec(scale),
        "ft3": lambda: ft3_spec(scale),
        "sf": lambda: slimfly_spec(scale),
        "df": lambda: dragonfly_spec(DragonflyParams.balanced(scale, g=511)),
    }[family]()
    model = CostModel()
    return {
        "name": spec.name,
        "endpoints": spec.endpoints,
        "cost_musd": model.total(spec) / 1e6,
        "cost_per_endpoint_kusd": model.per_endpoint(spec) / 1e3,
    }


# ------------------------------------------------------------- scenarios

SEC23_SPACE = {
    "mode": ["colocated", "disaggregated"],
    "request_rate": [4, 8, 12, 16, 20, 24, 28, 32],
    "gpu_split": ["2+6", "3+5", "4+4"],
}
SEC23_BASE = {"prompt_mean": 512, "output_mean": 128, "gpu_cost_per_hour": 2.0}
SEC23_OBJECTIVE = "maximize goodput_tokens_per_s s.t. tpot_p99<=0.015"

SEC43_SPACE = {"max_groups": [1, 2, 3, 4, 6, 8]}
SEC43_OBJECTIVE = "minimize stage_time_s s.t. score_retention>=0.995"

SEC51_SPACE = {
    "variant": [
        "ft2:32", "ft2:48", "ft2:64",
        "mpft:32", "mpft:48", "mpft:64",
        "ft3:32", "ft3:48", "ft3:64",
        "sf:28", "df:64",
    ]
}
SEC51_OBJECTIVE = (
    "pareto(min:cost_per_endpoint_kusd, max:endpoints) s.t. endpoints>=16384"
)
SEC51_LADDER = FidelityLadder(key="fidelity", rungs=(1,), cost="1")


def _run_scenario(spec: SearchSpec, workers: int) -> dict:
    """Search (serial, parallel, warm) + exhaustive grid, fully gated."""
    objective = parse_objective(spec.objective)
    ladder = spec.resolved_ladder()
    with tempfile.TemporaryDirectory() as serial_dir, tempfile.TemporaryDirectory() as par_dir:
        serial = run_search(spec, workers=1, cache=SweepCache(serial_dir))
        cache = SweepCache(par_dir)
        parallel = run_search(spec, workers=workers, cache=cache)
        warm = run_search(spec, workers=workers, cache=cache)

        byte_identical = serial.to_json() == parallel.to_json()
        assert byte_identical, f"{spec.target}: workers 1 vs {workers} diverged"
        assert warm.evaluated == 0, f"{spec.target}: warm re-search recomputed points"
        assert warm.to_report_json() == parallel.to_report_json()

        # Exhaustive grid at the ladder's top fidelity, sharing the
        # search's cache (its top-rung points come back warm — exactly
        # the cross-tool reuse content addressing buys).
        grid_spec = SweepSpec(
            target=spec.target,
            points=grid(**spec.space, **{ladder.key: ladder.rungs[-1]}),
            base=spec.base,
            seed=spec.seed,
            version=spec.version,
        )
        full = run_sweep(grid_spec, workers=workers, cache=cache)

    grid_points = full.report_payload()["points"]
    grid_frontier = frontier_of(objective, grid_points)
    frontier_identical = json.dumps(grid_frontier, sort_keys=True) == json.dumps(
        list(parallel.frontier), sort_keys=True
    )
    assert frontier_identical, f"{spec.target}: search vs grid frontier diverged"

    grid_sim = sum(
        ladder.point_cost(p["result"], p["config"]) for p in grid_points
    )
    ratio = grid_sim / parallel.sim_seconds if parallel.sim_seconds else float("inf")
    return {
        "search": parallel,
        "grid_points": grid_points,
        "summary": {
            "space_points": parallel.grid_points,
            "evaluations": len(parallel.trajectory),
            "rungs": [
                {k: v for k, v in r.items() if k != "sim_seconds"}
                for r in parallel.rungs
            ],
            "search_sim_seconds": round(parallel.sim_seconds, 6),
            "grid_sim_seconds": round(grid_sim, 6),
            "sim_ratio": round(ratio, 2),
            "byte_identical": byte_identical,
            "frontier_identical": frontier_identical,
            "warm_evaluated": warm.evaluated,
            "search_wall_s": round(parallel.wall_time, 2),
            "grid_wall_s": round(full.wall_time, 2),
        },
    }


def _max_feasible_rate(objective, points, mode: str) -> float | None:
    rates = [
        p["config"]["request_rate"]
        for p in points
        if p["config"]["mode"] == mode
        and isinstance(p.get("result"), dict)
        and objective.feasible(p["result"], p["config"])
    ]
    return max(rates) if rates else None


def run_bench(workers: int) -> dict:
    # -- §2.3: the headline ≥10× scenario --------------------------------
    sec23 = _run_scenario(
        SearchSpec(
            target="bench_sec23_serving",
            objective=SEC23_OBJECTIVE,
            space=SEC23_SPACE,
            base=SEC23_BASE,
            seed=3,
            eta=8,
        ),
        workers,
    )
    objective = parse_objective(SEC23_OBJECTIVE)
    winner = sec23["search"].frontier[0]
    colocated_max = _max_feasible_rate(objective, sec23["grid_points"], "colocated")
    disaggregated_max = _max_feasible_rate(
        objective, sec23["grid_points"], "disaggregated"
    )
    sec23["summary"].update(
        winner={k: winner["config"][k] for k in ("mode", "request_rate", "gpu_split")},
        winner_goodput_tokens_per_s=round(winner["metrics"]["goodput_tokens_per_s"], 1),
        colocated_max_feasible_rate=colocated_max,
        disaggregated_max_feasible_rate=disaggregated_max,
    )
    rediscovered_23 = (
        winner["config"]["mode"] == "disaggregated"
        and colocated_max is not None
        and disaggregated_max is not None
        and disaggregated_max > colocated_max
    )
    assert rediscovered_23, "sec23: disaggregation crossover not rediscovered"
    assert sec23["summary"]["sim_ratio"] >= 10, (
        f"sec23: sim-seconds ratio {sec23['summary']['sim_ratio']}x below 10x"
    )

    # -- §4.3: node-limited routing --------------------------------------
    sec43 = _run_scenario(
        SearchSpec(
            target="bench_sec43_dispatch",
            objective=SEC43_OBJECTIVE,
            space=SEC43_SPACE,
            seed=3,
            eta=3,
        ),
        workers,
    )
    winner43 = sec43["search"].frontier[0]
    by_groups = {
        p["config"]["max_groups"]: p["result"] for p in sec43["grid_points"]
    }
    dispatch_speedup = (
        by_groups[8]["stage_time_s"] / by_groups[4]["stage_time_s"]
    )
    sec43["summary"].update(
        winner_max_groups=winner43["config"]["max_groups"],
        winner_score_retention=round(winner43["record"]["score_retention"], 4),
        unrestricted_vs_m4_dispatch=round(dispatch_speedup, 2),
    )
    rediscovered_43 = winner43["config"]["max_groups"] == 4
    assert rediscovered_43, "sec43: paper's M=4 node cap not rediscovered"

    # -- §5.1: MPFT on the cost/scale frontier ---------------------------
    sec51 = _run_scenario(
        SearchSpec(
            target="bench_sec51_topology",
            objective=SEC51_OBJECTIVE,
            space=SEC51_SPACE,
            seed=0,
            eta=4,
            ladder=SEC51_LADDER,
        ),
        workers,
    )
    frontier_names = sorted(e["record"]["name"] for e in sec51["search"].frontier)
    by_name = {p["result"]["name"]: p["result"] for p in sec51["grid_points"]}
    mpft_vs_ft3 = (
        by_name["MPFT"]["cost_per_endpoint_kusd"]
        / by_name["FT3"]["cost_per_endpoint_kusd"]
    )
    sec51["summary"].update(
        frontier_names=frontier_names,
        mpft_vs_ft3_cost_per_endpoint=round(mpft_vs_ft3, 3),
    )
    rediscovered_51 = "MPFT" in frontier_names and "FT3" not in frontier_names
    assert rediscovered_51, "sec51: MPFT cost advantage over FT3 not rediscovered"

    # -- aggregate gates -------------------------------------------------
    search_sim = sum(
        s["summary"]["search_sim_seconds"] for s in (sec23, sec43, sec51)
    )
    grid_sim = sum(s["summary"]["grid_sim_seconds"] for s in (sec23, sec43, sec51))
    rediscoveries = sum((rediscovered_23, rediscovered_43, rediscovered_51))
    assert rediscoveries >= 2, f"only {rediscoveries} paper choices rediscovered"
    aggregate = {
        "search_sim_seconds": round(search_sim, 6),
        "grid_sim_seconds": round(grid_sim, 6),
        "sim_ratio": round(grid_sim / search_sim, 2),
        "rediscoveries": rediscoveries,
    }
    assert aggregate["sim_ratio"] >= 10, (
        f"aggregate sim-seconds ratio {aggregate['sim_ratio']}x below 10x"
    )

    return {
        "workers": workers,
        "sec23": sec23["summary"],
        "sec43": sec43["summary"],
        "sec51": sec51["summary"],
        "aggregate": aggregate,
        "get_many": _bench_get_many(),
    }


def _bench_get_many() -> dict:
    """Warm-hit and all-miss probes: per-key ``get`` vs ``get_many``."""
    spec = SweepSpec(
        target="bench_sec51_topology",
        points=grid(variant=SEC51_SPACE["variant"], fidelity=1),
        seed=0,
    )
    with tempfile.TemporaryDirectory() as root:
        run_sweep(spec, cache=SweepCache(root))
        warm_keys = [spec.key(c) for c in spec.configs()] * 40  # 440 warm probes
        miss_keys = [f"{i:064x}" for i in range(4096)]  # content-addressed shape

        def timed(fn):
            start = time.perf_counter()
            out = fn()
            return out, time.perf_counter() - start

        per_key_warm, per_key_warm_s = timed(
            lambda: {k: SweepCache(root).get(k) for k in warm_keys}
        )
        batched_warm, batched_warm_s = timed(lambda: SweepCache(root).get_many(warm_keys))
        per_key_miss, per_key_miss_s = timed(
            lambda: {k: SweepCache(root).get(k) for k in miss_keys}
        )
        batched_miss, batched_miss_s = timed(lambda: SweepCache(root).get_many(miss_keys))

    assert batched_warm == per_key_warm and batched_miss == per_key_miss
    return {
        "warm_keys": len(warm_keys),
        "miss_keys": len(miss_keys),
        "identical_results": True,
        "per_key_warm_s": round(per_key_warm_s, 4),
        "batched_warm_s": round(batched_warm_s, 4),
        "per_key_miss_s": round(per_key_miss_s, 4),
        "batched_miss_s": round(batched_miss_s, 4),
        "miss_speedup": round(per_key_miss_s / batched_miss_s, 1)
        if batched_miss_s
        else float("inf"),
    }


def _stable(payload: dict) -> dict:
    """Strip machine-dependent wall-clock fields (``*_s``, speedups).

    Simulated-seconds fields end in ``_seconds`` on purpose: they are
    pure functions of the evaluated records and *are* compared.
    """
    out = {}
    for key, value in payload.items():
        if key.endswith("_s") or key.endswith("speedup"):
            continue
        out[key] = _stable(value) if isinstance(value, dict) else value
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.05,
        help="relative drift tolerance for --check (deterministic payload)",
    )
    parser.add_argument("--workers", type=int, default=4, help="fan-out width")
    args = parser.parse_args(argv)

    payload = run_bench(args.workers)
    rows = [
        [section, k, v]
        for section in ("sec23", "sec43", "sec51", "aggregate", "get_many")
        for k, v in payload[section].items()
        if not isinstance(v, (list, dict))
    ]
    print_table(
        f"co-design optimizer vs exhaustive grids, {payload['workers']} workers",
        ["scenario", "metric", "value"],
        rows,
    )

    if args.check:
        path = Path(__file__).resolve().parent / "BENCH_optimize.json"
        baseline = json.loads(path.read_text())
        drifts = compare(_stable(payload), _stable(baseline), rtol=args.rtol)
        if drifts:
            print(f"\noptimize drift vs {path.name} (rtol {args.rtol}):")
            for message in drifts:
                print(f"  {message}")
            return 1
        print(f"\nwithin {args.rtol} rtol of {path.name}")
        return 0

    write_json(
        "optimize",
        payload,
        meta=default_meta(
            sec23="mode x rate{4..32} x split{2+6,3+5,4+4}, ladder 250/2000/8000 req, eta 8, seed 3",
            sec43="max_groups{1,2,3,4,6,8}, ladder 128/512/2048 tokens, eta 3, seed 3",
            sec51="11 topology variants, single-rung cost model, seed 0",
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
