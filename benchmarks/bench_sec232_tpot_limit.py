"""Section 2.3.2: theoretical EP inference speed limits.

Paper: CX7 IB (50 GB/s) -> 120.96 us/stage, 14.76 ms TPOT, ~67 tok/s;
GB200 NVL72 (900 GB/s) -> 6.72 us/stage, 0.82 ms TPOT, ~1200 tok/s.
"""

from _report import print_table

from repro.inference import compare_interconnects

PAPER = {
    "H800 + CX7 400G IB": (120.96, 14.76, 67),
    "GB200 NVL72": (6.72, 0.82, 1200),
}


def bench_sec232(benchmark):
    rows = benchmark(compare_interconnects)
    table = []
    for row in rows:
        stage, tpot, tps = PAPER[row.system]
        table.append(
            [
                row.system,
                f"{stage} / {row.comm_stage_us:.2f}",
                f"{tpot} / {row.tpot_ms:.2f}",
                f"{tps} / {row.tokens_per_second:.0f}",
            ]
        )
    print_table(
        "Section 2.3.2: EP TPOT limits (paper / measured)",
        ["system", "comm stage (us)", "TPOT (ms)", "tokens/s"],
        table,
    )
    by_name = {r.system: r for r in rows}
    ib = by_name["H800 + CX7 400G IB"]
    gb = by_name["GB200 NVL72"]
    assert abs(ib.comm_stage_us - 120.96) < 0.01
    assert abs(ib.tpot_ms - 14.76) < 0.01
    assert 66 <= ib.tokens_per_second <= 69
    assert abs(gb.comm_stage_us - 6.72) < 0.01
    assert abs(gb.tpot_ms - 0.82) < 0.01
    assert gb.tokens_per_second > 1200
