"""Scaling ablation of the sweep engine itself (1 vs N workers, cold
vs warm cache).

Two grids, each run cold-serial, cold-parallel (4 workers) and warm:

* **probe** — a bench-registered target whose evaluation cost is a
  calibrated fixed latency (0.25 s), modeling the blocking regime
  (remote/accelerator evaluation) where fan-out is pure win.  Because
  each point blocks rather than computes, its parallel speedup
  measures the *engine's* scheduling + cache machinery on any
  machine, including single-core CI: ideal is ``workers``x, and the
  committed speedup certifies the fan-out path works.
* **serving** — an 8-point grid on the real serving simulator
  (CPU-bound, so its parallel speedup tracks the machine's core
  count; it is recorded, not gated).

Both grids pin the engine's exact, machine-independent invariants:
serial and parallel runs serialize to **byte-identical** JSON, and a
warm re-run evaluates **zero** points while running >= 10x faster than
cold.  The committed ``BENCH_sweep.json`` is the baseline; ``--check``
re-runs everything, re-asserts the invariants and floors, and
compares at a generous tolerance (wall-clock moves with the machine;
the invariants do not).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _report import compare, default_meta, print_table, write_json

from repro.sweep import SweepCache, SweepSpec, grid, register_target, run_sweep

#: Calibrated per-point latency of the probe target (seconds).
PROBE_LATENCY = 0.25


@register_target("bench_probe")
def _probe_point(config: dict, seed: int) -> dict:
    """Block for a fixed latency, return a deterministic digest."""
    time.sleep(PROBE_LATENCY)
    digest = hashlib.sha256(f"{sorted(config.items())}|{seed}".encode()).hexdigest()
    return {"digest": digest[:16], "latency_s": PROBE_LATENCY}


PROBE_SPEC = SweepSpec(
    target="bench_probe",
    points=grid(alpha=[1, 2], beta=[1, 2], gamma=[1, 2]),  # 8 points
    seed=11,
)

#: The real-simulator grid: 8 serving points, seed pinned so every
#: variant replays the same arrival stream.
SERVING_SPEC = SweepSpec(
    target="serving",
    points=grid(
        request_rate=[8.0, 16.0],
        mode=["colocated", "disaggregated"],
        mtp=[False, True],
    ),
    base={
        "num_requests": 1500,
        "prompt_mean": 512,
        "output_mean": 128,
        "prefill_gpus": 2,
        "decode_gpus": 6,
        "seed": 3,
    },
)


def _three_runs(spec: SweepSpec, workers: int) -> dict:
    """Cold-serial / cold-parallel / warm, with the exact invariants."""
    with tempfile.TemporaryDirectory() as serial_dir, tempfile.TemporaryDirectory() as par_dir:
        serial = run_sweep(spec, workers=1, cache=SweepCache(serial_dir))
        parallel = run_sweep(spec, workers=workers, cache=SweepCache(par_dir))
        warm = run_sweep(spec, workers=workers, cache=SweepCache(par_dir))

    byte_identical = serial.to_json() == parallel.to_json()
    warm_speedup = parallel.wall_time / warm.wall_time
    assert byte_identical, f"{spec.target}: serial vs parallel output diverged"
    assert warm.evaluated == 0, f"{spec.target}: warm re-run recomputed points"
    assert warm.cache_hits == len(spec.points)
    assert warm.records() == parallel.records()
    assert warm_speedup >= 10, (
        f"{spec.target}: warm-cache speedup {warm_speedup:.1f}x below 10x"
    )
    return {
        "grid_points": len(spec.points),
        "serial_s": round(serial.wall_time, 3),
        "parallel_s": round(parallel.wall_time, 3),
        "parallel_speedup": round(serial.wall_time / parallel.wall_time, 2),
        "warm_s": round(warm.wall_time, 4),
        "warm_speedup": round(warm_speedup, 1),
        "warm_evaluated": warm.evaluated,
        "warm_cache_hits": warm.cache_hits,
        "byte_identical": byte_identical,
    }


def run_ablation(workers: int) -> dict:
    probe = _three_runs(PROBE_SPEC, workers)
    serving = _three_runs(SERVING_SPEC, workers)
    # The probe's floor is the gate: blocking points must fan out.
    assert probe["parallel_speedup"] > 1.5, (
        f"engine fan-out speedup {probe['parallel_speedup']}x below 1.5x"
    )
    return {"workers": workers, "probe": probe, "serving": serving}


def _stable(payload: dict) -> dict:
    """Strip machine-dependent wall-clock fields (``*_s``, speedups)."""
    out = {}
    for key, value in payload.items():
        if key.endswith("_s") or key.endswith("speedup"):
            continue
        out[key] = _stable(value) if isinstance(value, dict) else value
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.9,
        help="relative drift tolerance for --check (wall-clock payload)",
    )
    parser.add_argument("--workers", type=int, default=4, help="fan-out width")
    args = parser.parse_args(argv)

    payload = run_ablation(args.workers)
    rows = [
        [section, k, v]
        for section in ("probe", "serving")
        for k, v in payload[section].items()
    ]
    print_table(
        f"sweep engine scaling, {payload['workers']} workers",
        ["grid", "metric", "value"],
        rows,
    )

    if args.check:
        path = Path(__file__).resolve().parent / "BENCH_sweep.json"
        baseline = json.loads(path.read_text())
        # Wall-clock fields drift freely across machines; the exact
        # invariant fields plus the assertion floors above are the
        # gate, so only non-timing keys are compared to the baseline.
        drifts = compare(_stable(payload), _stable(baseline), rtol=args.rtol)
        if drifts:
            print(f"\nsweep-scaling drift vs {path.name} (rtol {args.rtol}):")
            for message in drifts:
                print(f"  {message}")
            return 1
        print(f"\nwithin {args.rtol} rtol of {path.name}")
        return 0

    write_json(
        "sweep",
        payload,
        meta=default_meta(
            probe=f"8-point fixed-latency target, {PROBE_LATENCY}s/point",
            serving="rate {8,16} x {colocated,disaggregated} x mtp {off,on}, 1500 req/point, seed 3",
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
