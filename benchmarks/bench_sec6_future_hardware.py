"""Section 6: forward-looking hardware directions, quantified.

 * §6.4 — Region Acquire/Release ordering vs sender fences for ordered
   small-message streams (the memory-semantic communication proposal);
 * §6.5 — in-network multicast (dispatch) and aggregation (combine)
   shrink endpoint NIC traffic by the per-token node fan-out M, and
   hardware LogFMT shrinks the combine wire format;
 * §6.6 — memory-bandwidth-centric accelerators (DRAM-stacked /
   SoW): decode TPS scales linearly with memory bandwidth.
"""

import numpy as np
from _report import print_table

from repro.comm import (
    EPConfig,
    EPDeployment,
    OrderedStreamConfig,
    combine_savings,
    dispatch_savings,
    ep_stage_time_with_innetwork,
    expected_reduction_factor,
    logfmt_wire_savings,
    rar_speedup,
    run_ep_stage,
    stream_completion_time,
)
from repro.inference import decode_tps
from repro.model import DEEPSEEK_V3
from repro.network import build_mpft_cluster


def bench_sec64_rar_ordering(benchmark):
    config = OrderedStreamConfig(
        num_messages=256, message_bytes=7168, rtt=3.7e-6, bandwidth=40e9
    )

    def run():
        return {
            scheme: stream_completion_time(config, scheme)
            for scheme in ("fence", "flag_poll", "rar")
        }

    times = benchmark(run)
    print_table(
        "Section 6.4: 256 ordered 7KB messages over IB (cross-leaf RTT)",
        ["ordering scheme", "completion (us)", "vs RAR"],
        [
            [scheme, round(t * 1e6, 1), f"{t / times['rar']:.2f}x"]
            for scheme, t in times.items()
        ],
    )
    assert times["rar"] < times["flag_poll"] < times["fence"]
    assert rar_speedup(config) > 2.0  # fences dominate small-message streams


def bench_sec65_innetwork(benchmark):
    def run():
        rng = np.random.default_rng(0)
        cluster = build_mpft_cluster(8)
        deployment = EPDeployment(cluster, EPConfig(256, 8, hidden_size=7168))
        decisions = deployment.route_tokens(512, rng)
        base = run_ep_stage(deployment, decisions, "dispatch")
        return (
            dispatch_savings(deployment, decisions),
            combine_savings(deployment, decisions),
            expected_reduction_factor(deployment, decisions),
            base.time,
        )

    dispatch, combine, mean_m, base_time = benchmark.pedantic(run, rounds=1, iterations=1)
    projected = ep_stage_time_with_innetwork(base_time, dispatch.reduction)
    print_table(
        "Section 6.5: in-network multicast/aggregation for EP",
        ["quantity", "value"],
        [
            ["mean per-token node fan-out M", round(mean_m, 2)],
            ["dispatch NIC-traffic reduction", f"{dispatch.reduction:.2f}x"],
            ["combine NIC-traffic reduction", f"{combine.reduction:.2f}x"],
            ["dispatch stage time today (ms)", round(base_time * 1e3, 3)],
            ["with switch multicast (ms)", round(projected * 1e3, 3)],
            ["hardware LogFMT combine-wire saving", f"{logfmt_wire_savings():.2f}x"],
        ],
    )
    # Node-limited routing caps M at 4, so multicast saves up to ~3.6x.
    assert 2.5 < dispatch.reduction <= 4.0
    assert combine.reduction == dispatch.reduction
    assert projected < base_time


def bench_sec66_memory_bandwidth_scaling(benchmark):
    def run():
        rows = []
        for name, bw in (
            ("HBM3 (H800-class)", 3.35e12),
            ("HBM3e (B200-class)", 8e12),
            ("DRAM-stacked (SeDRAM-class)", 20e12),
        ):
            est = decode_tps(DEEPSEEK_V3, bw, weight_dtype="fp8", context_tokens=8192)
            rows.append((name, bw, est.tokens_per_second))
        return rows

    rows = benchmark(run)
    print_table(
        "Section 6.6: single-stream V3 decode vs memory bandwidth",
        ["memory system", "bandwidth (TB/s)", "decode tok/s"],
        [[name, round(bw / 1e12, 2), round(tps, 1)] for name, bw, tps in rows],
    )
    # Decode is bandwidth-bound: TPS scales ~linearly with bandwidth.
    assert rows[1][2] / rows[0][2] > 2.0
    assert rows[2][2] / rows[0][2] > 5.0
