"""Sections 5.1 (Figure 4) and 5.2.2: NIC bonding and incast isolation.

* Figure 4's ideal multi-plane NIC: one QP spraying over 4 bonded
  ports approaches 4x message bandwidth — but only with native
  out-of-order placement at the receiver.
* §5.2.2 item 3: an EP incast burst sharing a RoCE egress queue with a
  latency-sensitive flow inflates that flow's completion by orders of
  magnitude; per-QP virtual output queues (VOQ) isolate it.

Both figures are grids (message size x bonding mode; egress queueing
scheme), so they run as declared :mod:`repro.sweep` grids over
bench-registered targets rather than hand-rolled nested loops.
"""

from _report import print_table

from repro.network import (
    IncastScenario,
    MultiPortNic,
    bonding_speedup,
    message_time,
    victim_slowdown,
)
from repro.sweep import SweepSpec, grid, register_target, run_sweep

SIZES = (4 << 10, 256 << 10, 16 << 20)
MODES = ("single_port", "bonded_ooo", "bonded_inorder")


def _bonding_point(config: dict, seed: int) -> dict:
    del seed  # closed-form model, nothing stochastic
    nic = MultiPortNic(num_planes=config["planes"], port_bandwidth=config["port_bw"])
    return {"time_s": message_time(nic, config["size"], config["mode"])}


def _incast_point(config: dict, seed: int) -> dict:
    del seed
    scenario = IncastScenario(
        num_senders=16, burst_bytes=4 << 20, victim_bytes=64 << 10
    )
    kwargs = {
        k: config[k]
        for k in ("num_priority_queues", "num_traffic_classes")
        if k in config
    }
    return {"slowdown": victim_slowdown(scenario, config["queueing"], **kwargs)}


register_target("sec52_bonding", _bonding_point)
register_target("sec52_incast", _incast_point)


def bench_fig4_multiport_bonding(benchmark):
    nic = MultiPortNic(num_planes=4, port_bandwidth=50e9)
    spec = SweepSpec(
        target="sec52_bonding",
        points=grid(size=list(SIZES), mode=list(MODES)),
        base={"planes": 4, "port_bw": 50e9},
    )

    def run():
        result = run_sweep(spec, cache=None)
        times: dict[int, dict[str, float]] = {size: {} for size in SIZES}
        for point in result.points:
            times[point.config["size"]][point.config["mode"]] = point.result["time_s"]
        return times

    times = benchmark(run)
    rows = []
    for size, by_mode in times.items():
        rows.append(
            [
                f"{size} B",
                round(by_mode["single_port"] * 1e6, 2),
                round(by_mode["bonded_ooo"] * 1e6, 2),
                round(by_mode["bonded_inorder"] * 1e6, 2),
            ]
        )
    print_table(
        "Figure 4: message time (us) on a 4-plane bonded NIC",
        ["message", "single port", "bonded + OOO placement", "bonded, in-order only"],
        rows,
    )
    # Large messages approach the 4x port count; losing OOO placement
    # forfeits the entire benefit (the figure's caption requirement).
    assert bonding_speedup(nic, 16 << 20) > 3.5
    big = times[16 << 20]
    assert big["bonded_inorder"] > big["single_port"]


def bench_sec522_incast_isolation(benchmark):
    spec = SweepSpec(
        target="sec52_incast",
        points=[
            {"queueing": "shared_queue"},
            {"queueing": "priority_queues", "num_priority_queues": 8, "num_traffic_classes": 16},
            {"queueing": "voq"},
        ],
    )
    labels = (
        "shared queue (commodity RoCE)",
        "8 priority queues / 16 classes",
        "VOQ per QP (paper's suggestion)",
    )

    def run():
        records = run_sweep(spec, cache=None).records()
        return dict(zip(labels, (r["slowdown"] for r in records)))

    slowdowns = benchmark(run)
    print_table(
        "Section 5.2.2: 64 KiB latency-sensitive flow under a 64 MiB EP incast",
        ["egress queueing", "victim slowdown"],
        [[name, f"{v:.1f}x"] for name, v in slowdowns.items()],
    )
    assert slowdowns["shared queue (commodity RoCE)"] > 100
    assert slowdowns["VOQ per QP (paper's suggestion)"] <= 2.0
    assert (
        slowdowns["VOQ per QP (paper's suggestion)"]
        < slowdowns["8 priority queues / 16 classes"]
        < slowdowns["shared queue (commodity RoCE)"]
    )
