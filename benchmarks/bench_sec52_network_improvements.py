"""Sections 5.1 (Figure 4) and 5.2.2: NIC bonding and incast isolation.

* Figure 4's ideal multi-plane NIC: one QP spraying over 4 bonded
  ports approaches 4x message bandwidth — but only with native
  out-of-order placement at the receiver.
* §5.2.2 item 3: an EP incast burst sharing a RoCE egress queue with a
  latency-sensitive flow inflates that flow's completion by orders of
  magnitude; per-QP virtual output queues (VOQ) isolate it.
"""

from _report import print_table

from repro.network import (
    IncastScenario,
    MultiPortNic,
    bonding_speedup,
    message_time,
    victim_completion_time,
    victim_slowdown,
)


def bench_fig4_multiport_bonding(benchmark):
    nic = MultiPortNic(num_planes=4, port_bandwidth=50e9)
    sizes = (4 << 10, 256 << 10, 16 << 20)

    def run():
        return {
            size: {
                mode: message_time(nic, size, mode)
                for mode in ("single_port", "bonded_ooo", "bonded_inorder")
            }
            for size in sizes
        }

    times = benchmark(run)
    rows = []
    for size, by_mode in times.items():
        rows.append(
            [
                f"{size} B",
                round(by_mode["single_port"] * 1e6, 2),
                round(by_mode["bonded_ooo"] * 1e6, 2),
                round(by_mode["bonded_inorder"] * 1e6, 2),
            ]
        )
    print_table(
        "Figure 4: message time (us) on a 4-plane bonded NIC",
        ["message", "single port", "bonded + OOO placement", "bonded, in-order only"],
        rows,
    )
    # Large messages approach the 4x port count; losing OOO placement
    # forfeits the entire benefit (the figure's caption requirement).
    assert bonding_speedup(nic, 16 << 20) > 3.5
    big = times[16 << 20]
    assert big["bonded_inorder"] > big["single_port"]


def bench_sec522_incast_isolation(benchmark):
    scenario = IncastScenario(num_senders=16, burst_bytes=4 << 20, victim_bytes=64 << 10)

    def run():
        return {
            "shared queue (commodity RoCE)": victim_slowdown(scenario, "shared_queue"),
            "8 priority queues / 16 classes": victim_slowdown(
                scenario, "priority_queues", num_priority_queues=8, num_traffic_classes=16
            ),
            "VOQ per QP (paper's suggestion)": victim_slowdown(scenario, "voq"),
        }

    slowdowns = benchmark(run)
    print_table(
        "Section 5.2.2: 64 KiB latency-sensitive flow under a 64 MiB EP incast",
        ["egress queueing", "victim slowdown"],
        [[name, f"{v:.1f}x"] for name, v in slowdowns.items()],
    )
    assert slowdowns["shared queue (commodity RoCE)"] > 100
    assert slowdowns["VOQ per QP (paper's suggestion)"] <= 2.0
    assert (
        slowdowns["VOQ per QP (paper's suggestion)"]
        < slowdowns["8 priority queues / 16 classes"]
        < slowdowns["shared queue (commodity RoCE)"]
    )
