"""Figure 8: RoCE AllGather/ReduceScatter bandwidth under ECMP, AR and
static routing, for different TP group dimensions.

The paper's finding: default ECMP hashing collides the regular,
low-entropy LLM flows onto shared uplinks and collapses bandwidth;
adaptive routing (packet spraying) restores it; a manually tuned static
table avoids conflicts for the specific pattern but is inflexible.
"""

from _report import print_table

from repro.network import (
    RoutingPolicy,
    collision_free_static_table,
    run_concurrent_rings,
    two_layer_fat_tree,
)

BUFFER_BYTES = 256 << 20


def _tp_rings(hosts_per_leaf: int, tp_dim: int):
    """Concurrent TP rings, each spanning one host slot across leaves."""
    rings = []
    for slot in range(hosts_per_leaf):
        ring = [f"h{leaf * hosts_per_leaf + slot}" for leaf in range(tp_dim)]
        if len(ring) >= 2:
            rings.append(ring)
    return rings


def _sweep():
    results = {}
    for tp_dim in (4, 8):
        topo = two_layer_fat_tree(
            num_leaves=8, hosts_per_leaf=8, num_spines=8, link_bandwidth=50e9
        )
        rings = _tp_rings(8, tp_dim)
        pairs = [(r[i], r[(i + 1) % len(r)]) for r in rings for i in range(len(r))]
        table = collision_free_static_table(topo, pairs)
        for policy in RoutingPolicy:
            res = run_concurrent_rings(
                topo,
                rings,
                BUFFER_BYTES,
                policy,
                static_table=table if policy is RoutingPolicy.STATIC else None,
            )
            results[(tp_dim, policy.value)] = res.busbw / 1e9
    return results


def bench_fig8(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [
            f"TP{tp}",
            round(results[(tp, "ecmp")], 2),
            round(results[(tp, "adaptive")], 2),
            round(results[(tp, "static")], 2),
        ]
        for tp in (4, 8)
    ]
    print_table(
        "Figure 8: ring AllGather/ReduceScatter busbw (GB/s per GPU)",
        ["TP dim", "ECMP", "AR", "static (tuned)"],
        rows,
    )
    for tp in (4, 8):
        ecmp = results[(tp, "ecmp")]
        ar = results[(tp, "adaptive")]
        static = results[(tp, "static")]
        # The paper's ordering: AR clearly beats default ECMP; a tuned
        # static table matches AR for this traffic pattern.
        assert ar > 1.3 * ecmp, (tp, ecmp, ar)
        assert static > 0.95 * ar
