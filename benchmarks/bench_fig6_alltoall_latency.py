"""Figure 6: all-to-all latency vs message size on 16 GPUs, MPFT vs MRFT.

The paper shows near-identical latency for the two topologies across
message sizes; small messages are dominated by network latency, large
ones by bandwidth.
"""

from _report import print_table

from repro.network import build_mpft_cluster, build_mrft_cluster, run_all_to_all

MESSAGE_SIZES = (512, 8 << 10, 128 << 10, 2 << 20, 32 << 20)


def _sweep():
    mpft = build_mpft_cluster(2)
    mrft = build_mrft_cluster(2)
    out = {"mpft": [], "mrft": []}
    for size in MESSAGE_SIZES:
        for cluster in (mpft, mrft):
            res = run_all_to_all(cluster, cluster.gpus(), size)
            out[cluster.scheme].append(res.time * 1e6)
    return out


def bench_fig6(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [f"{size} B", round(series["mpft"][i], 1), round(series["mrft"][i], 1)]
        for i, size in enumerate(MESSAGE_SIZES)
    ]
    print_table(
        "Figure 6: 16-GPU all-to-all latency (us), MPFT vs MRFT",
        ["message size", "MPFT", "MRFT"],
        rows,
    )
    for i in range(len(MESSAGE_SIZES)):
        assert abs(series["mpft"][i] - series["mrft"][i]) < 1e-6 + 0.01 * series["mrft"][i]
    # Latency floor at small sizes; bandwidth scaling at large sizes.
    assert series["mpft"][0] < 100  # dominated by the ~3.7us network latency
    assert series["mpft"][-1] > 50 * series["mpft"][0]
    assert series["mpft"] == sorted(series["mpft"])
