"""Windowed telemetry + SLO monitor behavioral baseline.

Runs the PR's acceptance scenario — a seeded, fault-injected serving
simulation with windowed telemetry and a burn-rate SLO rule — and
records what the monitor saw: the per-window attainment timeline, the
full fire/resolve alert sequence, and the cross-point merge of two
sweep points' window rollups.

It also pins the *observation-only* invariant: the windowed run's
compact record, with the telemetry keys stripped, must be byte-identical
to an unmonitored run of the same seed — turning the monitor on cannot
perturb the simulation.

Everything here is deterministic (seeded simulations, no wall-clock
numbers), so the committed ``BENCH_telemetry.json`` is an exact
baseline: ``--check`` re-runs the scenario and exits nonzero on any
drift — the CI telemetry-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _report import compare, default_meta, print_table, write_json

from repro.obs import merge_window_rollups, window_summaries
from repro.sweep import SweepSpec, run_sweep

SEED = 17

_BASE = {
    "request_rate": 8.0,
    "num_requests": 120,
    "prompt_mean": 256,
    "prompt_cv": 0.3,
    "output_mean": 64,
    "output_cv": 0.3,
    "mode": "disaggregated",
}

#: One decode node dies at t=3s, rejoins at t=6s.
_FAULTS = {"events": [{"time": 3.0, "kind": "node", "target": "decode", "mttr": 3.0}]}

_TELEMETRY = {"window_s": 2.0, "slo": ["burn>2@0.9"]}


def _sweep(points: list[dict], base: dict) -> list[dict]:
    spec = SweepSpec(target="serving", points=points, base=base, seed=SEED)
    return [r for r in run_sweep(spec, workers=2, cache=None).records()]


def run_scenario() -> dict:
    """The monitored outage: window attainments and the alert timeline."""
    (record,) = _sweep(
        [{}], {**_BASE, **_TELEMETRY, "faults": _FAULTS}
    )
    summaries = window_summaries(record["windows"])
    attainments = [
        round(s["slo_attainment"], 6) if s["slo_attainment"] is not None else None
        for s in summaries
    ]
    return {
        "windows": len(summaries),
        "attainment_timeline": attainments,
        "alerts": [
            {
                "state": a["state"],
                "time": a["time"],
                "window": a["window"],
                "during_fault": a["during_fault"],
            }
            for a in record["alerts"]
        ],
        "fired": sum(1 for a in record["alerts"] if a["state"] == "fire"),
        "resolved": sum(1 for a in record["alerts"] if a["state"] == "resolve"),
    }


def run_zero_overhead() -> dict:
    """Telemetry must observe, never perturb: for the same SimConfig
    seed, the monitored run's compact record minus its telemetry keys
    equals the unmonitored record, byte for byte.

    (Compared on direct simulator runs, not through the sweep engine —
    the engine folds the whole config into each point's derived seed, so
    adding telemetry keys there legitimately changes the arrival
    stream.)"""
    from repro.faults import FaultSchedule
    from repro.serving import ServingSimulator, SimConfig, WorkloadSpec, compact_record

    workload_keys = ("request_rate", "num_requests", "prompt_mean", "prompt_cv",
                     "output_mean", "output_cv")
    workload = WorkloadSpec(**{k: _BASE[k] for k in workload_keys})

    def record(**telemetry) -> dict:
        cfg = SimConfig(
            workload=workload,
            mode=_BASE["mode"],
            seed=SEED,
            faults=FaultSchedule.from_json(_FAULTS),
            **telemetry,
        )
        return compact_record(ServingSimulator(cfg).run())

    plain = record()
    monitored = record(window_s=_TELEMETRY["window_s"],
                       slo_rules=tuple(_TELEMETRY["slo"]))
    stripped = {k: v for k, v in monitored.items() if k not in ("windows", "alerts")}
    identical = json.dumps(stripped, sort_keys=True) == json.dumps(plain, sort_keys=True)
    return {"identical": identical}


def run_merge() -> dict:
    """Two sweep points' rollups merged via Histogram.merge: counters
    add exactly and the pooled p99 comes from the combined buckets."""
    records = _sweep(
        [{"request_rate": 6.0}, {"request_rate": 8.0}], {**_BASE, **_TELEMETRY}
    )
    merged = merge_window_rollups([r["windows"] for r in records])
    summaries = window_summaries(merged)
    finished = sum(s.get("finished", 0) for s in summaries)
    per_point = sum(
        s.get("finished", 0)
        for r in records
        for s in window_summaries(r["windows"])
    )
    ttft_p99 = max(s.get("ttft_p99", 0.0) for s in summaries)
    return {
        "points": len(records),
        "merged_windows": len(merged),
        "finished_total": finished,
        "counters_add_exactly": finished == per_point,
        "worst_window_ttft_p99_s": round(ttft_p99, 6),
    }


def _rows(payload: dict) -> list[list[object]]:
    rows = []
    for section, record in payload.items():
        if section == "_meta":
            continue
        for key, value in record.items():
            if isinstance(value, list):
                value = json.dumps(value)
            rows.append([section, key, value])
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=1e-6,
        help="relative drift tolerance for --check (deterministic payload)",
    )
    args = parser.parse_args(argv)

    current = {
        "scenario": run_scenario(),
        "zero_overhead": run_zero_overhead(),
        "merge": run_merge(),
    }
    print_table("telemetry / SLO baseline", ["section", "metric", "value"], _rows(current))

    if not current["zero_overhead"]["identical"]:
        print("\nFATAL: windowed telemetry perturbed the simulation")
        return 1
    if not (current["scenario"]["fired"] and current["scenario"]["resolved"]):
        print("\nFATAL: the outage scenario must fire and resolve an alert")
        return 1

    if args.check:
        path = Path(__file__).resolve().parent / "BENCH_telemetry.json"
        baseline = json.loads(path.read_text())
        drifts = compare(current, baseline, rtol=args.rtol)
        if drifts:
            print(f"\ntelemetry drift vs {path.name} (rtol {args.rtol}):")
            for message in drifts:
                print(f"  {message}")
            return 1
        print(f"\nwithin {args.rtol} rtol of {path.name}")
        return 0

    write_json(
        "telemetry",
        current,
        meta=default_meta(
            scenario=(
                f"120 req @ 8/s disaggregated, decode node down 3-6s, "
                f"2s windows, burn>2@0.9, seed {SEED}"
            ),
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
