"""Table 4: DeepSeek-V3 training metrics, MPFT vs MRFT (2,048 H800s).

Paper (MPFT column): 272.80 B tokens/day, 19.926 s/step,
1F 1.13 / bubble 2.06 / 1B 1.99 / 1W 0.48 / 1F1B 13.95 / opt 0.29,
TFLOPS 432 (non-causal) / 385 (causal), MFU 43.73% / 38.94%.
The MRFT column is statistically identical — the parity claim.
"""

import numpy as np
from _report import paper_vs_measured

from repro.comm import StageTimes, layer_time
from repro.network import build_mpft_cluster, build_mrft_cluster, run_all_to_all
from repro.parallel import TrainingJobConfig, simulate_training_step


def _training_step():
    return simulate_training_step(TrainingJobConfig())


def bench_table4_step_decomposition(benchmark):
    report = benchmark.pedantic(_training_step, rounds=3, iterations=1)
    mfu = report.mfu
    paper_vs_measured(
        "Table 4: training step (DualPipe on 2048 H800, GBS 15360x4096)",
        [
            ("tokens/day (B)", 272.80, round(report.tokens_per_day / 1e9, 2)),
            ("time/step (s)", 19.926, round(report.step_time, 3)),
            ("1F (s)", 1.13, round(report.warmup_forward, 2)),
            ("bubble (s)", 2.06, round(report.bubble, 2)),
            ("1B (s)", 1.99, round(report.warmup_backward, 2)),
            ("1W (s)", 0.48, round(report.weight_grad, 2)),
            ("1F1B (s)", 13.95, round(report.steady_phase, 2)),
            ("opt (s)", 0.29, round(report.optimizer, 2)),
            ("TFLOPS (non-causal)", 432, round(mfu.tflops(causal=False))),
            ("TFLOPS (causal)", 385, round(mfu.tflops(causal=True))),
            ("MFU (non-causal) %", 43.73, round(100 * mfu.mfu(causal=False), 2)),
            ("MFU (causal) %", 38.94, round(100 * mfu.mfu(causal=True), 2)),
        ],
    )
    assert abs(report.step_time - 19.926) / 19.926 < 0.05
    assert abs(report.tokens_per_day - 272.8e9) / 272.8e9 < 0.05
    assert abs(mfu.mfu(causal=True) - 0.3894) < 0.02
    assert abs(mfu.mfu(causal=False) - 0.4373) < 0.02


def bench_table4_mpft_mrft_parity(benchmark):
    """Why both fabrics train identically: per-layer EP communication is
    the same on MPFT and MRFT (PXN), and it hides under compute."""

    def compare():
        results = {}
        for builder in (build_mpft_cluster, build_mrft_cluster):
            cluster = builder(4)
            res = run_all_to_all(cluster, cluster.gpus(), 1 << 20, mode="drain")
            results[cluster.scheme] = res.time
        return results

    times = benchmark.pedantic(compare, rounds=1, iterations=1)
    paper_vs_measured(
        "Table 4 parity: EP all-to-all time, MPFT vs MRFT (32 GPUs, 1 MiB)",
        [
            ("MPFT a2a (ms)", "-", round(times["mpft"] * 1e3, 3)),
            ("MRFT a2a (ms)", "-", round(times["mrft"] * 1e3, 3)),
        ],
    )
    assert np.isclose(times["mpft"], times["mrft"], rtol=1e-9)
    # And the comm hides under compute in the overlapped schedule.
    stages = StageTimes(
        attention_compute=400e-6,
        moe_compute=300e-6,
        dispatch_comm=times["mpft"] / 4,
        combine_comm=times["mpft"] / 4,
    )
    assert layer_time(stages, dual_microbatch=True) == stages.compute
