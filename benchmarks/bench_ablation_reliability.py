"""Ablation: robustness (Section 6.1) — failure scaling, SDC detection,
and the multi-plane network's fault isolation (Section 5.1.1).
"""

import numpy as np
from _report import print_table

from repro.network import build_mpft_cluster
from repro.reliability import (
    assess_impact,
    detection_rate,
    fail_entire_plane,
    fail_link,
    goodput_vs_scale,
)


def bench_goodput_vs_scale(benchmark):
    """Single-point failure probability grows with system size (§6.1.1):
    goodput erodes as clusters grow, even with optimal checkpointing."""
    rows = benchmark(goodput_vs_scale, [16, 64, 256, 1024, 4096])
    print_table(
        "Section 6.1: training goodput vs cluster scale",
        ["nodes", "cluster MTBF (h)", "ckpt interval (h)", "goodput"],
        [
            [r.num_nodes, round(r.mtbf_hours, 1), round(r.interval_hours, 2), f"{r.goodput:.2%}"]
            for r in rows
        ],
    )
    goodputs = [r.goodput for r in rows]
    assert goodputs == sorted(goodputs, reverse=True)
    assert goodputs[-1] < goodputs[0]


def bench_sdc_detection(benchmark):
    """§6.1.2: checksum validation and redundancy checks catch silent
    corruption that application heuristics miss."""
    rng = np.random.default_rng(0)

    def run():
        return {
            "Freivalds (compute check)": detection_rate((24, 24), 40, rng, detector="freivalds"),
            "block checksum (storage check)": detection_rate((24, 24), 40, rng, detector="checksum"),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 6.1: SDC detection rate (high-order bit flips)",
        ["detector", "detection rate"],
        [[name, f"{rate:.0%}"] for name, rate in rates.items()],
    )
    assert rates["Freivalds (compute check)"] > 0.9
    assert rates["block checksum (storage check)"] == 1.0


def bench_multiplane_fault_isolation(benchmark):
    """§5.1.1: plane failures are isolated — connectivity survives a
    link failure and even the loss of an entire plane."""

    def run():
        link_cluster = build_mpft_cluster(4)
        fail_link(link_cluster.topology, "n0g0", "MPFT/p0/leaf0")
        plane_cluster = build_mpft_cluster(4)
        fail_entire_plane(plane_cluster, plane=0)
        return (
            assess_impact(link_cluster).connectivity,
            assess_impact(plane_cluster).connectivity,
        )

    link_conn, plane_conn = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 5.1.1: MPFT connectivity under failures",
        ["failure", "GPU-pair connectivity"],
        [
            ["one NIC-to-leaf link down", f"{link_conn:.0%}"],
            ["entire plane down", f"{plane_conn:.0%}"],
        ],
    )
    assert link_conn == 1.0
    assert plane_conn == 1.0
