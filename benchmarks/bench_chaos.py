"""Chaos drill: supervised execution under seeded process-level faults.

Three sections, all gated on exact invariants rather than wall-clock:

* **overhead** — a clean 10-point grid run plain (in-process) and
  supervised (one forked worker per attempt, ``timeout_s`` armed).
  The reports must be byte-identical: supervision is an execution
  detail, never an output change.  The fork-per-point overhead ratio
  is recorded but not gated (it tracks the machine's fork cost).
* **chaos** — the same grid wrapped in :func:`repro.chaos.chaos_spec`
  (seeded sabotage: worker kills, hangs the supervisor must time out,
  raised :class:`~repro.chaos.ChaosError`, slow-downs).  Supervised
  retries recover every point: **zero** errors, the sabotage counts
  (kills/hangs/raises, hence retries and timeouts) are seed-pinned and
  machine-independent, the 1-worker and 4-worker reports are
  byte-identical, and :func:`repro.chaos.assert_chaos_invariant`
  certifies the report matches a chaos-free reference run exactly —
  the headline guarantee of the chaos harness.
* **poison** — a grid whose every point fails on every attempt.  Each
  is quarantined after ``max_attempts``; the quarantine records carry
  no pids or wall-clock, so the 1- and 4-worker reports are
  byte-identical too (failure handling is as deterministic as
  success).

``BENCH_chaos.json`` is the committed baseline; ``--check`` re-runs
everything, re-asserts the invariants, and compares the stable
(non-timing) fields exactly.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _report import compare, default_meta, print_table, write_json

from repro.chaos import ChaosPolicy, assert_chaos_invariant, chaos_spec, reference_spec
from repro.obs import MetricsRegistry
from repro.sweep import (
    SupervisorPolicy,
    SweepCache,
    SweepSpec,
    grid,
    register_target,
    run_sweep,
)

#: Per-attempt kill budget for hung points (seconds).  Generous enough
#: that a loaded CI machine never times out an honest point, small
#: enough that the hang-mode points don't dominate the drill.
TIMEOUT_S = 2.0

POLICY = SupervisorPolicy(
    timeout_s=TIMEOUT_S, max_attempts=3, backoff_base_s=0.02, backoff_cap_s=0.1
)

CHAOS = ChaosPolicy(rate=0.7, attempts=1, hang_s=3600.0, slow_s=0.1)


@register_target("bench_chaos_inner")
def _inner_point(config: dict, seed: int) -> dict:
    """Cheap deterministic digest — the work being sabotaged."""
    digest = hashlib.sha256(f"{sorted(config.items())}|{seed}".encode()).hexdigest()
    return {"digest": digest[:16]}


@register_target("bench_chaos_poison")
def _poison_point(config: dict, seed: int) -> dict:
    raise RuntimeError(f"poison point {config.get('p')} (seed {seed})")


INNER_POINTS = grid(alpha=[1, 2, 3, 4, 5], beta=[1, 2])  # 10 points
INNER_SPEC = SweepSpec(target="bench_chaos_inner", points=INNER_POINTS, seed=17)


def _supervision_overhead() -> dict:
    plain = run_sweep(INNER_SPEC, workers=1)
    supervised = run_sweep(INNER_SPEC, workers=1, supervise=POLICY)
    byte_identical = plain.to_json() == supervised.to_json()
    assert byte_identical, "supervision changed the report"
    return {
        "grid_points": len(INNER_POINTS),
        "plain_s": round(plain.wall_time, 4),
        "supervised_s": round(supervised.wall_time, 4),
        "overhead_x": round(supervised.wall_time / max(plain.wall_time, 1e-9), 1),
        "byte_identical": byte_identical,
    }


def _chaos_drill(workers: int) -> dict:
    # Seed 15 draws all four sabotage modes over this grid — including
    # exactly one hang, so the drill provably exercises the timeout
    # path without hangs dominating its wall time.
    spec = chaos_spec("bench_chaos_inner", INNER_POINTS, seed=15, policy=CHAOS)
    sabotaged = sum(1 for p in spec.points if p["chaos_mode"] != "none")
    metrics = MetricsRegistry()
    with tempfile.TemporaryDirectory() as w4_dir, tempfile.TemporaryDirectory() as w1_dir:
        chaotic = run_sweep(
            spec,
            workers=workers,
            cache=SweepCache(w4_dir),
            supervise=POLICY,
            metrics=metrics,
        )
        serial = run_sweep(
            spec, workers=1, cache=SweepCache(w1_dir), supervise=POLICY
        )
    byte_identical = chaotic.to_json() == serial.to_json()
    assert byte_identical, "chaos report depends on worker count"
    errors = sum(1 for r in chaotic.records() if r and "error" in r)
    assert errors == 0, f"{errors} chaos points failed to recover"
    reference = run_sweep(reference_spec(spec), workers=workers)
    assert_chaos_invariant(chaotic, reference)
    snapshot = metrics.snapshot()
    return {
        "grid_points": len(spec.points),
        "sabotaged": sabotaged,
        "errors": errors,
        "retries": int(snapshot.get("sweep.retries", 0)),
        "timeouts": int(snapshot.get("sweep.timeouts", 0)),
        "worker_deaths": int(snapshot.get("sweep.worker_deaths", 0)),
        "byte_identical_workers": byte_identical,
        "invariant_holds": True,
        "parallel_s": round(chaotic.wall_time, 3),
        "serial_s": round(serial.wall_time, 3),
    }


def _poison_quarantine(workers: int) -> dict:
    spec = SweepSpec(
        target="bench_chaos_poison", points=[{"p": i} for i in range(4)], seed=5
    )
    policy = SupervisorPolicy(
        timeout_s=TIMEOUT_S, max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.05
    )
    metrics = MetricsRegistry()
    parallel = run_sweep(
        spec, workers=workers, supervise=policy, strict=False, metrics=metrics
    )
    serial = run_sweep(spec, workers=1, supervise=policy, strict=False)
    byte_identical = parallel.to_json() == serial.to_json()
    assert byte_identical, "quarantine records depend on worker count"
    quarantined = int(metrics.snapshot().get("sweep.quarantined", 0))
    assert quarantined == len(spec.points), "not every poison point was quarantined"
    return {
        "grid_points": len(spec.points),
        "quarantined": quarantined,
        "byte_identical_workers": byte_identical,
    }


def _assert_no_orphans() -> None:
    """Every forked attempt worker must be dead once the drill ends —
    the supervisor's cleanup owns them, crashed or not."""
    import os
    import subprocess

    try:
        out = subprocess.run(
            ["ps", "--ppid", str(os.getpid()), "-o", "comm="],
            capture_output=True,
            text=True,
        ).stdout.split()
    except OSError:  # no procps on this host; the tests cover it
        return
    leftovers = [name for name in out if name != "ps"]
    assert not leftovers, f"orphaned worker processes: {leftovers}"


def run_drill(workers: int) -> dict:
    payload = {
        "workers": workers,
        "overhead": _supervision_overhead(),
        "chaos": _chaos_drill(workers),
        "poison": _poison_quarantine(workers),
    }
    _assert_no_orphans()
    return payload


def _stable(payload: dict) -> dict:
    """Strip machine-dependent wall-clock fields (``*_s``, ``*_x``)."""
    out = {}
    for key, value in payload.items():
        if key.endswith("_s") or key.endswith("_x"):
            continue
        out[key] = _stable(value) if isinstance(value, dict) else value
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument("--workers", type=int, default=4, help="fan-out width")
    args = parser.parse_args(argv)

    payload = run_drill(args.workers)
    rows = [
        [section, k, v]
        for section in ("overhead", "chaos", "poison")
        for k, v in payload[section].items()
    ]
    print_table(
        f"chaos drill, {payload['workers']} workers", ["section", "metric", "value"], rows
    )

    if args.check:
        path = Path(__file__).resolve().parent / "BENCH_chaos.json"
        baseline = json.loads(path.read_text())
        # Everything that isn't wall-clock is seed-pinned and must
        # match the baseline *exactly* (rtol 0): sabotage assignments,
        # retry/timeout/kill counts, and the byte-identity flags.
        drifts = compare(_stable(payload), _stable(baseline), rtol=0.0)
        if drifts:
            print(f"\nchaos-drill drift vs {path.name}:")
            for message in drifts:
                print(f"  {message}")
            return 1
        print(f"\nstable fields exactly match {path.name}")
        return 0

    write_json(
        "chaos",
        payload,
        meta=default_meta(
            inner="10-point digest grid, seed 17",
            chaos=f"seed 15, rate {CHAOS.rate}, modes {'/'.join(CHAOS.modes)}, timeout {TIMEOUT_S}s, 3 attempts",
            poison="4 always-failing points, 2 attempts each",
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
