"""Section 4.3: Node-Limited Routing traffic deduplication.

Paper: with experts grouped 32-per-node on 8 nodes, unrestricted top-8
routing costs up to 8t of IB time per token; NVLink forwarding
deduplicates IB traffic to Mt where M is the number of distinct
destination nodes, and node-limited routing algorithmically caps
M <= 4 — nearly halving worst-case IB time.

Both ablations run through the :mod:`repro.sweep` engine: the routing
variants are grid points over bench-registered targets (the engine's
``fork`` fan-out sees targets registered at module import), each
seeded explicitly so the token draws match the original benches.
"""

import numpy as np
from _report import print_table

from repro.comm import EPConfig, EPDeployment, ib_cost_factor, run_ep_stage
from repro.model import node_limited_topk, topk_routing
from repro.network import build_mpft_cluster
from repro.sweep import SweepSpec, grid, register_target, run_sweep


@register_target("sec43_ib_cost")
def _ib_cost_point(config: dict, seed: int) -> dict:
    """Expected IB cost factor of one routing policy (units of t)."""
    rng = np.random.default_rng(seed)
    scores = rng.uniform(size=(8192, 256))
    if config["routing"] == "unrestricted":
        routed = topk_routing(scores, 8)
    else:
        routed = node_limited_topk(scores, 8, num_groups=8, max_groups=config["max_groups"])
    return {"cost_factor": float(ib_cost_factor(routed, 32))}


@register_target("sec43_dispatch")
def _dispatch_point(config: dict, seed: int) -> dict:
    """Simulated EP dispatch stage time on the MPFT cluster fabric."""
    cluster = build_mpft_cluster(8)
    deployment = EPDeployment(
        cluster,
        EPConfig(
            num_routed_experts=256,
            experts_per_token=8,
            hidden_size=7168,
            max_nodes_per_token=config["limit"],
        ),
    )
    decisions = deployment.route_tokens(1024, np.random.default_rng(seed))
    return {"stage_time_s": run_ep_stage(deployment, decisions, "dispatch").time}


def bench_sec43_ib_cost_factor(benchmark):
    spec = SweepSpec(
        target="sec43_ib_cost",
        points=[
            {"routing": "unrestricted"},
            {"routing": "node_limited", "max_groups": 4},
        ],
        base={"seed": 0},
    )

    def run():
        free, limited = run_sweep(spec, cache=None).records()
        remote_experts = 8.0  # no NVLink dedup: one IB send per expert
        return {
            "no dedup (8 experts)": remote_experts,
            "NVLink dedup, unrestricted (E[M])": free["cost_factor"],
            "NVLink dedup + node-limited (E[M], M<=4)": limited["cost_factor"],
        }

    factors = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 4.3: per-token IB cost in units of t",
        ["routing", "cost factor"],
        [[name, round(v, 3)] for name, v in factors.items()],
    )
    assert factors["NVLink dedup, unrestricted (E[M])"] < 8
    assert factors["NVLink dedup + node-limited (E[M], M<=4)"] <= 4.0


def bench_sec43_dispatch_time_ablation(benchmark):
    """End-to-end: node-limited routing cuts the simulated dispatch
    stage time on the real cluster fabric."""
    spec = SweepSpec(
        target="sec43_dispatch", points=grid(limit=[0, 4]), base={"seed": 1}
    )

    def run():
        unrestricted, limited = run_sweep(spec, workers=2, cache=None).records()
        return {
            "unrestricted": unrestricted["stage_time_s"],
            "node-limited (M<=4)": limited["stage_time_s"],
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = times["unrestricted"] / times["node-limited (M<=4)"]
    print_table(
        "Section 4.3: dispatch stage time, 64 GPUs, 1024 tokens/GPU",
        ["routing", "stage time (ms)"],
        [[k, round(v * 1e3, 3)] for k, v in times.items()]
        + [["speedup", f"{speedup:.2f}x"]],
    )
    assert speedup > 1.15
