"""Section 4.3: Node-Limited Routing traffic deduplication.

Paper: with experts grouped 32-per-node on 8 nodes, unrestricted top-8
routing costs up to 8t of IB time per token; NVLink forwarding
deduplicates IB traffic to Mt where M is the number of distinct
destination nodes, and node-limited routing algorithmically caps
M <= 4 — nearly halving worst-case IB time.
"""

import numpy as np
from _report import print_table

from repro.comm import EPConfig, EPDeployment, ib_cost_factor, run_ep_stage
from repro.model import node_limited_topk, topk_routing
from repro.network import build_mpft_cluster


def bench_sec43_ib_cost_factor(benchmark):
    def run():
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=(8192, 256))
        free = topk_routing(scores, 8)
        limited = node_limited_topk(scores, 8, num_groups=8, max_groups=4)
        remote_experts = 8.0  # no NVLink dedup: one IB send per expert
        return {
            "no dedup (8 experts)": remote_experts,
            "NVLink dedup, unrestricted (E[M])": ib_cost_factor(free, 32),
            "NVLink dedup + node-limited (E[M], M<=4)": ib_cost_factor(limited, 32),
        }

    factors = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 4.3: per-token IB cost in units of t",
        ["routing", "cost factor"],
        [[name, round(v, 3)] for name, v in factors.items()],
    )
    assert factors["NVLink dedup, unrestricted (E[M])"] < 8
    assert factors["NVLink dedup + node-limited (E[M], M<=4)"] <= 4.0


def bench_sec43_dispatch_time_ablation(benchmark):
    """End-to-end: node-limited routing cuts the simulated dispatch
    stage time on the real cluster fabric."""

    def run():
        rng = np.random.default_rng(1)
        times = {}
        for limit, label in ((0, "unrestricted"), (4, "node-limited (M<=4)")):
            cluster = build_mpft_cluster(8)
            deployment = EPDeployment(
                cluster,
                EPConfig(
                    num_routed_experts=256,
                    experts_per_token=8,
                    hidden_size=7168,
                    max_nodes_per_token=limit,
                ),
            )
            decisions = deployment.route_tokens(1024, rng)
            times[label] = run_ep_stage(deployment, decisions, "dispatch").time
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = times["unrestricted"] / times["node-limited (M<=4)"]
    print_table(
        "Section 4.3: dispatch stage time, 64 GPUs, 1024 tokens/GPU",
        ["routing", "stage time (ms)"],
        [[k, round(v * 1e3, 3)] for k, v in times.items()]
        + [["speedup", f"{speedup:.2f}x"]],
    )
    assert speedup > 1.15
