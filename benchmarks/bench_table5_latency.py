"""Table 5: CPU-side end-to-end latency for a 64 B transfer.

Paper rows (same leaf / cross leaf):
    RoCE        3.6 us / 5.6 us
    InfiniBand  2.8 us / 3.7 us
    NVLink      3.33 us / -
"""

from _report import print_table

from repro.network import build_mpft_cluster, path_latency, pxn_path, table5_rows

PAPER = {
    "RoCE": (3.6, 5.6),
    "InfiniBand": (2.8, 3.7),
    "NVLink": (3.33, None),
}


def bench_table5(benchmark):
    rows = benchmark(table5_rows, 64)
    table = []
    for row in rows:
        same, cross = PAPER[row.link_layer]
        table.append(
            [
                row.link_layer,
                f"{same} / {row.same_leaf_us:.2f}",
                "-" if cross is None else f"{cross} / {row.cross_leaf_us:.2f}",
            ]
        )
    print_table(
        "Table 5: 64B end-to-end latency (us, paper / measured)",
        ["link layer", "same leaf", "cross leaf"],
        table,
    )
    by_layer = {r.link_layer: r for r in rows}
    assert abs(by_layer["RoCE"].same_leaf_us - 3.6) < 0.05
    assert abs(by_layer["RoCE"].cross_leaf_us - 5.6) < 0.05
    assert abs(by_layer["InfiniBand"].same_leaf_us - 2.8) < 0.05
    assert abs(by_layer["InfiniBand"].cross_leaf_us - 3.7) < 0.05
    assert abs(by_layer["NVLink"].same_leaf_us - 3.33) < 0.05
    # IB wins everywhere — the paper's §5.2.1 conclusion.
    assert by_layer["InfiniBand"].same_leaf_us < by_layer["RoCE"].same_leaf_us


def bench_table5_on_cluster_paths(benchmark):
    """Cross-check: the same latencies emerge from actual cluster paths."""
    cluster = build_mpft_cluster(16)

    def measure():
        return (
            path_latency(cluster, pxn_path(cluster, "n0g0", "n1g0")),
            path_latency(cluster, pxn_path(cluster, "n0g0", "n9g0")),
        )

    same, cross = benchmark(measure)
    print_table(
        "Table 5 cross-check: latencies from simulated MPFT paths",
        ["path", "paper us", "measured us"],
        [
            ["same leaf (n0g0 -> n1g0)", 2.8, round(same * 1e6, 2)],
            ["cross leaf (n0g0 -> n9g0)", 3.7, round(cross * 1e6, 2)],
        ],
    )
    assert abs(same * 1e6 - 2.8) < 0.05
    assert abs(cross * 1e6 - 3.7) < 0.05
