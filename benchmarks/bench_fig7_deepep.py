"""Figure 7: DeepEP dispatch/combine throughput on MPFT, 16-128 GPUs.

Paper: each GPU processes 4096 tokens; the EP kernels (FP8 dispatch,
BF16 combine, top-8 + 1 shared expert, NVLink forwarding with IB
deduplication) nearly saturate the 400 Gb/s NIC — >=40 GB/s per GPU
at scale.  Our simulator uses the 40 GB/s *effective* NIC bandwidth,
so saturation shows as per-GPU bandwidth approaching 40.
"""

import numpy as np
import pytest
from _report import print_table

from repro.comm import EPConfig, EPDeployment, run_ep_stage
from repro.network import build_mpft_cluster

NODE_COUNTS = (2, 4, 8, 16)
TOKENS_PER_GPU = 4096


def _sweep():
    rng = np.random.default_rng(0)
    rows = []
    for nodes in NODE_COUNTS:
        cluster = build_mpft_cluster(nodes)
        deployment = EPDeployment(
            cluster,
            EPConfig(
                num_routed_experts=256,
                experts_per_token=8,
                num_shared_experts=1,
                hidden_size=7168,
                max_nodes_per_token=4,
            ),
        )
        decisions = deployment.route_tokens(TOKENS_PER_GPU, rng)
        dispatch = run_ep_stage(deployment, decisions, "dispatch")
        combine = run_ep_stage(deployment, decisions, "combine")
        rows.append((nodes * 8, dispatch, combine))
    return rows


def bench_fig7(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = [
        [
            gpus,
            round(d.per_gpu_bandwidth / 1e9, 2),
            round(c.per_gpu_bandwidth / 1e9, 2),
            round(d.time * 1e3, 3),
            round(c.time * 1e3, 3),
        ]
        for gpus, d, c in rows
    ]
    print_table(
        "Figure 7: DeepEP per-GPU IB bandwidth (GB/s) and stage time (ms)",
        ["GPUs", "dispatch GB/s", "combine GB/s", "dispatch ms", "combine ms"],
        table,
    )
    for gpus, dispatch, combine in rows:
        assert dispatch.per_gpu_bandwidth <= 40e9 * 1.01
        assert combine.per_gpu_bandwidth <= 40e9 * 1.01
        if gpus >= 32:
            # Paper: "high bandwidth exceeding 40GB/s" on 400G NICs;
            # with the 40 GB/s effective rate that is saturation >95%.
            assert dispatch.per_gpu_bandwidth > 0.95 * 40e9
            assert combine.per_gpu_bandwidth > 0.95 * 40e9
    # Combine moves 2x the bytes (BF16 vs FP8) -> ~2x the stage time.
    _, d16, c16 = rows[-1]
    assert c16.time / d16.time == pytest.approx(2.0, rel=0.1)
