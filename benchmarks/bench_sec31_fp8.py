"""Section 3.1: FP8 GEMM accuracy under Hopper's limited accumulation.

Reproduces the two §3.1.1 limitations and the §3.1.2 fixes:
 * FP22 accumulation error grows with the reduction length K;
   promoting partials to FP32 every 128 elements (DeepGEMM) removes
   the growth — the 'increased accumulation precision' ask.
 * Fine-grained (1x128 / 128x128) scaling contains activation
   outliers that per-tensor scaling cannot, at a ~0.8% CUDA-core
   dequantization overhead — the 'native fine-grained quantization'
   ask.
"""

import numpy as np
from _report import print_table

from repro.precision import (
    dequant_overhead_fraction,
    fp8_matmul,
    quantize_tensor,
    relative_error,
)


def _accumulation_sweep():
    rng = np.random.default_rng(0)
    rows = []
    for k in (512, 2048, 8192):
        a = rng.normal(size=(32, k)).astype(np.float32)
        b = rng.normal(size=(k, 32)).astype(np.float32)
        ideal = fp8_matmul(a, b, accumulation="ideal")
        promoted = fp8_matmul(a, b, accumulation="hopper_promoted")
        fp22 = fp8_matmul(a, b, accumulation="hopper_fp22")
        rows.append(
            (k, relative_error(ideal, promoted), relative_error(ideal, fp22))
        )
    return rows


def bench_sec31_accumulation(benchmark):
    rows = benchmark.pedantic(_accumulation_sweep, rounds=1, iterations=1)
    print_table(
        "Section 3.1: accumulation error vs K (relative to ideal FP32 accum)",
        ["K", "FP32-promoted (DeepGEMM)", "FP22 accumulator (Hopper)"],
        [[k, f"{p:.2e}", f"{f:.2e}"] for k, p, f in rows],
    )
    # FP22 error grows with K; promoted accumulation stays flat.
    assert rows[-1][2] > 1.5 * rows[0][2]
    assert rows[-1][1] < 1.5 * rows[0][1]
    assert rows[-1][1] < rows[-1][2]


def bench_sec31_fine_grained_outliers(benchmark):
    def run():
        rng = np.random.default_rng(1)
        a = rng.normal(size=(16, 512)).astype(np.float32)
        b = rng.normal(size=(512, 16)).astype(np.float32) / 23.0
        a[0, 0] = 3e5  # activation outlier
        exact = a @ b
        fine = fp8_matmul(a, b)
        coarse = fp8_matmul(quantize_tensor(a).dequantize(), b)
        clean = np.s_[1:, :]
        return (
            relative_error(exact[clean], fine[clean]),
            relative_error(exact[clean], coarse[clean]),
        )

    fine_err, coarse_err = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 3.1: outlier containment (error on non-outlier rows)",
        ["scaling", "relative error"],
        [
            ["1x128 tile + 128x128 block (V3)", f"{fine_err:.3e}"],
            ["per-tensor (coarse)", f"{coarse_err:.3e}"],
            ["dequant overhead (CUDA-core ops / TC FLOP)", f"{dequant_overhead_fraction():.3%}"],
        ],
    )
    assert fine_err < coarse_err / 5
