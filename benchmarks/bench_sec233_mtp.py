"""Section 2.3.3: Multi-Token Prediction speedup.

Paper: the MTP module reaches 80-90% acceptance for the second token,
increasing generation TPS by ~1.8x.  We reproduce the closed-form
model, the Monte-Carlo acceptance process, and run *actual* lossless
speculative decoding with the runnable model's MTP module.
"""

import numpy as np
from _report import print_table

from repro.inference import mtp_speedup, simulate_acceptance, speculative_generate
from repro.model import TINY_MLA_MOE, Transformer


def bench_sec233_speedup_model(benchmark):
    rates = (0.80, 0.85, 0.90)
    speedups = benchmark(lambda: [mtp_speedup(p) for p in rates])
    rng = np.random.default_rng(0)
    mc = [simulate_acceptance(p, 50_000, rng) for p in rates]
    print_table(
        "Section 2.3.3: MTP speedup vs acceptance rate",
        ["acceptance", "paper TPS gain", "analytic", "MC tokens/step"],
        [
            [f"{p:.0%}", "~1.8x", f"{s:.2f}x", round(m, 3)]
            for p, s, m in zip(rates, speedups, mc)
        ],
    )
    assert 1.75 <= speedups[0] <= 1.80
    assert 1.85 <= speedups[2] <= 1.90
    for p, m in zip(rates, mc):
        assert abs(m - (1 + p)) < 0.01


def bench_sec233_trained_acceptance(benchmark):
    """Acceptance emerges from training (the paper's 80-90% is a
    property of the production model): a tiny model trained for 200
    steps on a low-entropy synthetic language already drafts the
    second token with high acceptance."""
    from repro.inference import mtp_speedup
    from repro.model import TINY_MLA_MOE
    from repro.training import (
        TrainableTransformer,
        markov_corpus,
        measure_mtp_acceptance,
        sample_windows,
        train,
    )

    def run():
        corpus = markov_corpus(TINY_MLA_MOE.vocab_size, 30_000, seed=7, concentration=0.02)
        untrained = TrainableTransformer(TINY_MLA_MOE, seed=0)
        windows = sample_windows(corpus, 16, 24, seed=1)
        before = measure_mtp_acceptance(untrained, windows)
        model = TrainableTransformer(TINY_MLA_MOE, seed=0)
        train(model, corpus, steps=200, batch_size=8, seq_len=24, lr=3e-3)
        after = measure_mtp_acceptance(model, windows)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 2.3.3: MTP acceptance emerges from training (tiny model)",
        ["model state", "acceptance", "implied TPS gain"],
        [
            ["untrained", f"{before.acceptance_rate:.1%}", f"{mtp_speedup(before.acceptance_rate):.2f}x"],
            ["trained 200 steps", f"{after.acceptance_rate:.1%}", f"{mtp_speedup(after.acceptance_rate):.2f}x"],
            ["paper (production V3)", "80-90%", "~1.8x"],
        ],
    )
    assert before.acceptance_rate < 0.1
    assert after.acceptance_rate > 0.4


def bench_sec233_real_speculative_decode(benchmark):
    """End-to-end speculative decoding is lossless and emits
    (1 + acceptance) tokens per verification step."""
    model = Transformer(TINY_MLA_MOE, seed=0)
    prompt = np.random.default_rng(3).integers(0, 256, size=(1, 8))

    def run():
        return speculative_generate(model, prompt, 24)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    greedy = model.greedy_generate(prompt, 24)
    print_table(
        "Section 2.3.3: real speculative decode (random-weight tiny model)",
        ["quantity", "value"],
        [
            ["tokens generated", len(result.tokens)],
            ["decoding steps", result.decoding_steps],
            ["acceptance rate", round(result.acceptance_rate, 3)],
            ["tokens/step", round(result.tokens_per_step, 3)],
            ["lossless vs greedy", bool(np.array_equal(result.tokens, greedy[0]))],
        ],
    )
    assert np.array_equal(result.tokens, greedy[0])
    assert result.tokens_per_step >= 1.0
