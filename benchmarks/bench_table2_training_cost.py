"""Table 2: training cost per token (seq len 4096, causal attention).

Paper rows (GFLOPS/token):
    DeepSeek-V2 MoE   236B ->  155
    DeepSeek-V3 MoE   671B ->  250
    Qwen-72B Dense     72B ->  394
    LLaMa-405B Dense  405B -> 2448
"""

from _report import print_table

from repro.model import (
    DEEPSEEK_V2,
    DEEPSEEK_V3,
    LLAMA31_405B,
    QWEN25_72B,
    compare_training_cost,
)

PAPER_GF = {
    "DeepSeek-V2": 155,
    "DeepSeek-V3": 250,
    "Qwen-2.5 72B": 394,
    "LLaMA-3.1 405B": 2448,
}

MODELS = [DEEPSEEK_V2, DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B]


def bench_table2(benchmark):
    reports = benchmark(compare_training_cost, MODELS, 4096, True)
    rows = [
        [
            r.model_name,
            r.kind,
            f"{r.total_params / 1e9:.0f}B",
            PAPER_GF[r.model_name],
            round(r.gflops_per_token, 1),
        ]
        for r in reports
    ]
    print_table(
        "Table 2: training GFLOPS/token (seq 4096)",
        ["model", "kind", "size", "paper", "measured"],
        rows,
    )
    by_name = {r.model_name: r for r in reports}
    # Exact (within 2%) for the models whose configs the paper's numbers
    # derive from; Qwen is ~13% above the paper value (see EXPERIMENTS.md).
    assert abs(by_name["DeepSeek-V2"].gflops_per_token - 155) / 155 < 0.02
    assert abs(by_name["DeepSeek-V3"].gflops_per_token - 250) / 250 < 0.02
    assert abs(by_name["LLaMA-3.1 405B"].gflops_per_token - 2448) / 2448 < 0.02
    assert 380 < by_name["Qwen-2.5 72B"].gflops_per_token < 470
    # Shape: the MoE models cost an order of magnitude less than the
    # 405B dense model despite larger total size.
    assert by_name["LLaMA-3.1 405B"].gflops_per_token > 9 * by_name["DeepSeek-V3"].gflops_per_token
