"""Shared reporting helpers for the benchmark harness.

Every bench prints a paper-vs-measured table through these helpers so
the console output of ``pytest benchmarks/ --benchmark-only -s`` reads
as a faithful regeneration of the paper's tables and figures.

:func:`print_table` is re-exported from :mod:`repro.obs.summary` — the
bench harness and the ``repro trace`` CLI share one formatter.
"""

from __future__ import annotations

import functools
import json
import subprocess
from pathlib import Path

from repro.core.proc import peak_rss_bytes
from repro.obs.summary import print_table

__all__ = [
    "compare",
    "default_meta",
    "paper_vs_measured",
    "peak_rss_bytes",
    "print_table",
    "write_json",
]


@functools.lru_cache(maxsize=1)
def _git_sha() -> str:
    """The working tree's HEAD SHA, computed once per process.

    Benches that sweep many configurations call :func:`default_meta`
    per payload; the SHA cannot change mid-run, so spawning one
    ``git rev-parse`` subprocess per call was pure overhead.
    """
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def default_meta(**extra: object) -> dict:
    """A self-description block for :func:`write_json`: the git SHA of
    the working tree (``"unknown"`` outside a repo), the process's peak
    RSS at meta-build time (bytes — a memory-footprint audit trail for
    every committed baseline), plus any bench configuration passed as
    keyword arguments.  Lives under ``"_meta"``, which :func:`compare`
    skips, so the machine-dependent RSS never trips a ``--check``."""
    return {"git_sha": _git_sha(), "peak_rss_bytes": peak_rss_bytes(), **extra}


def write_json(name: str, payload: dict, meta: dict | None = None) -> Path:
    """Record a bench's results as ``benchmarks/BENCH_<name>.json``.

    The committed file is the baseline: re-running the bench rewrites
    it, and a diff shows how a change moved the measured numbers.

    Args:
        name: Baseline name (file stem suffix).
        payload: The measured numbers.
        meta: Optional self-description (git SHA, bench config — see
            :func:`default_meta`), recorded under a ``"_meta"`` key so
            a committed baseline says what produced it.
    """
    if meta is not None:
        payload = {"_meta": meta, **payload}
    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def compare(current: dict, baseline: dict, rtol: float = 0.5) -> list[str]:
    """Diff ``current`` against a committed ``baseline`` payload.

    Walks the baseline recursively (skipping the ``"_meta"`` block):
    every numeric leaf must satisfy ``|cur - base| <= rtol * |base|``,
    every other leaf must match exactly, and every baseline key must be
    present.  Returns human-readable drift messages — empty means the
    run is within tolerance of the baseline.
    """
    drifts: list[str] = []
    _compare_into(current, baseline, rtol, "", drifts)
    return drifts


def _compare_into(
    current: object, baseline: object, rtol: float, path: str, drifts: list[str]
) -> None:
    label = path or "<root>"
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            drifts.append(f"{label}: expected mapping, got {type(current).__name__}")
            return
        for key in sorted(baseline):
            if key == "_meta":
                continue
            child = f"{path}.{key}" if path else str(key)
            if key not in current:
                drifts.append(f"{child}: missing from current results")
            else:
                _compare_into(current[key], baseline[key], rtol, child, drifts)
        return
    numeric = isinstance(baseline, (int, float)) and not isinstance(baseline, bool)
    if not numeric:
        if current != baseline:
            drifts.append(f"{label}: {current!r} != baseline {baseline!r}")
        return
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        drifts.append(f"{label}: expected number, got {current!r}")
        return
    if abs(current - baseline) > rtol * abs(baseline):
        drifts.append(
            f"{label}: {current:g} outside +-{rtol:g} rtol of baseline {baseline:g}"
        )


def paper_vs_measured(
    title: str,
    rows: list[tuple[str, object, object]],
    headers: tuple[str, str, str] = ("quantity", "paper", "measured"),
) -> None:
    """Print a three-column paper-vs-measured comparison."""
    print_table(title, list(headers), [list(r) for r in rows])
