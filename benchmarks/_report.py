"""Shared reporting helpers for the benchmark harness.

Every bench prints a paper-vs-measured table through these helpers so
the console output of ``pytest benchmarks/ --benchmark-only -s`` reads
as a faithful regeneration of the paper's tables and figures.
"""

from __future__ import annotations

import json
from pathlib import Path


def write_json(name: str, payload: dict) -> Path:
    """Record a bench's results as ``benchmarks/BENCH_<name>.json``.

    The committed file is the baseline: re-running the bench rewrites
    it, and a diff shows how a change moved the measured numbers.
    """
    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a fixed-width table."""
    widths = [len(h) for h in headers]
    cells = [[_fmt(v) for v in row] for row in rows]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in cells:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.4g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def paper_vs_measured(
    title: str,
    rows: list[tuple[str, object, object]],
    headers: tuple[str, str, str] = ("quantity", "paper", "measured"),
) -> None:
    """Print a three-column paper-vs-measured comparison."""
    print_table(title, list(headers), [list(r) for r in rows])
