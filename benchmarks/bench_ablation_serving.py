"""Ablation: the decode serving frontier (§2.3.1-2.3.2 combined).

Sweeps per-device batch under dual micro-batch overlap and shows the
two regimes the paper describes: the communication-bound limit (whose
TPOT matches §2.3.2's closed form) and the compute-bound regime that
long contexts push the system into.
"""

from _report import print_table

from repro.inference import (
    ServingConfig,
    compute_comm_crossover_context,
    serving_point,
    throughput_latency_frontier,
)


def bench_serving_frontier(benchmark):
    config = ServingConfig(context_tokens=2048)

    def run():
        return throughput_latency_frontier(config, [4, 8, 16, 32, 64, 128])

    frontier = benchmark(run)
    print_table(
        "Serving frontier: DeepSeek-V3 decode, EP256, ctx 2048, 40GB/s NIC",
        ["batch/device", "TPOT (ms)", "tok/s per GPU", "bound"],
        [
            [p.batch, round(p.tpot * 1e3, 2), round(p.throughput_per_gpu, 0), p.bound]
            for p in frontier
        ],
    )
    # Throughput saturates once communication binds; TPOT keeps rising.
    assert frontier[-1].bound == "communication"
    assert frontier[-1].tpot > frontier[0].tpot
    assert frontier[-1].throughput_per_gpu >= frontier[0].throughput_per_gpu


def bench_serving_paper_anchor(benchmark):
    """The comm-bound corner reproduces §2.3.2's TPOT arithmetic."""

    def run():
        ib = serving_point(
            ServingConfig(nic_bandwidth=50e9, context_tokens=1, compute_efficiency=1.0), 32
        )
        gb = serving_point(
            ServingConfig(nic_bandwidth=900e9, context_tokens=1, compute_efficiency=1.0), 32
        )
        return ib, gb

    ib, gb = benchmark(run)
    print_table(
        "Serving anchor vs §2.3.2 (hidden 7168; paper rounds to 7K)",
        ["system", "paper TPOT", "model TPOT (ms)", "bound"],
        [
            ["CX7 IB 50 GB/s", "14.76 ms", round(ib.tpot * 1e3, 2), ib.bound],
            ["GB200 900 GB/s", "0.82 ms (idealized)", round(gb.tpot * 1e3, 2), gb.bound],
        ],
    )
    assert ib.bound == "communication"
    assert abs(ib.tpot - 15.11e-3) / 15.11e-3 < 0.02
    # The paper calls its GB200 number "purely theoretical": with a real
    # compute model the bound moves to compute at this tiny batch.
    assert gb.bound == "compute"


def bench_serving_context_crossover(benchmark):
    def run():
        return compute_comm_crossover_context(
            ServingConfig(), 32, [1024, 2048, 4096, 8192, 16384, 65536]
        )

    crossover = benchmark(run)
    print_table(
        "Context length where MLA compute overtakes EP communication (B=32)",
        ["quantity", "value"],
        [["crossover context (tokens)", crossover]],
    )
    assert crossover is not None and crossover <= 16384
