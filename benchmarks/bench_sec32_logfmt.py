"""Section 3.2: LogFMT communication compression.

Paper claims reproduced here:
 * LogFMT-8Bit beats E4M3 and E5M2 on activation quantization accuracy
   at the same bit width;
 * at 10 bits it approaches the BF16 combine stage;
 * rounding must happen in linear space (log-space rounding inflates
   magnitudes);
 * fused encode/decode costs 50-100% extra — why it was not deployed.
"""

import numpy as np
from _report import print_table

from repro.precision import (
    BF16,
    E4M3,
    E5M2,
    FUSED_ENCODE_OVERHEAD_RANGE,
    fake_quantize,
    logfmt_fake_quantize,
    logspace_rounded_fake_quantize,
    relative_error,
)


def _activations(seed=0, shape=(64, 512)):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=shape) * np.exp(rng.normal(0, 1, size=shape))).astype(
        np.float32
    )


def bench_sec32_accuracy(benchmark):
    x = _activations()

    def run():
        return {
            "LogFMT-8": relative_error(x, logfmt_fake_quantize(x, 8)),
            "E4M3 (1x128)": relative_error(x, fake_quantize(x, E4M3, 128)),
            "E5M2 (1x128)": relative_error(x, fake_quantize(x, E5M2, 128)),
            "LogFMT-10": relative_error(x, logfmt_fake_quantize(x, 10)),
            "BF16": relative_error(x, BF16.quantize(x)),
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 3.2: activation quantization error (residual-branch-like data)",
        ["format", "relative RMS error"],
        [[name, f"{err:.4e}"] for name, err in errors.items()],
    )
    assert errors["LogFMT-8"] < errors["E4M3 (1x128)"]
    assert errors["LogFMT-8"] < errors["E5M2 (1x128)"]
    assert errors["LogFMT-10"] < 3 * errors["BF16"]


def bench_sec32_linear_rounding(benchmark):
    x = np.abs(_activations(seed=1)) + 1e-3

    def run():
        lin = logfmt_fake_quantize(x, 5)
        logr = logspace_rounded_fake_quantize(x, 5)
        return float(np.mean(lin)), float(np.mean(logr)), float(np.mean(x))

    lin_mean, log_mean, true_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 3.2: rounding space (LogFMT-5, positive activations)",
        ["quantity", "mean magnitude"],
        [
            ["original", round(true_mean, 5)],
            ["linear-space rounding (paper's choice)", round(lin_mean, 5)],
            ["log-space rounding (inflates)", round(log_mean, 5)],
        ],
    )
    assert log_mean > lin_mean  # convexity of exp inflates log-rounding


def bench_sec32_combine_study(benchmark):
    """§3.2's full candidate list for the combine wire — BF16, E5M6,
    FP8 flavours, LogFMT, and FP8/BF16 mixing — on one error-vs-bits
    footing."""
    from repro.precision import combine_format_study

    x = _activations(seed=7)
    study = benchmark.pedantic(lambda: combine_format_study(x), rounds=1, iterations=1)
    print_table(
        "Section 3.2: combine-stage format candidates",
        ["format", "relative error", "wire bits/element"],
        [[c.name, f"{c.relative_error:.3e}", round(c.bits_per_element, 2)] for c in study],
    )
    by_name = {c.name: c for c in study}
    assert by_name["BF16"].relative_error < by_name["E5M6 (1x128)"].relative_error
    assert by_name["E5M6 (1x128)"].relative_error < by_name["E4M3 (1x128)"].relative_error
    assert by_name["LogFMT-8"].relative_error < by_name["E4M3 (1x128)"].relative_error
    mixed = [c for c in study if c.name.startswith("mixed")]
    for c in mixed:
        assert c.relative_error < by_name["E4M3 (1x128)"].relative_error


def bench_sec32_overhead(benchmark):
    """Why LogFMT was shelved: the fused encode/decode overhead."""

    def run():
        lo, hi = FUSED_ENCODE_OVERHEAD_RANGE
        base_stage_us = 120.96
        return base_stage_us * (1 + lo), base_stage_us * (1 + hi)

    lo_t, hi_t = benchmark(run)
    print_table(
        "Section 3.2: projected EP stage time with fused LogFMT (us)",
        ["scenario", "stage time"],
        [
            ["plain FP8/BF16 stage", 120.96],
            ["LogFMT fused, +50% overhead", round(lo_t, 2)],
            ["LogFMT fused, +100% overhead", round(hi_t, 2)],
        ],
    )
    assert lo_t > 120.96
