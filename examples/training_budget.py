"""Plan a pre-training run: throughput, memory, reliability and dollars.

Composes the training-side models end to end for the DeepSeek-V3
configuration: the DualPipe step simulation (Table 4), the per-GPU
memory plan (§4.2), checkpointing over the 3FS storage plane and
failure-aware goodput (§6.1), and the resulting GPU-hour/dollar budget
— reproducing the published 2.664M H800-hour pre-training figure.

Usage:
    python examples/training_budget.py [total_tokens_T]
"""

import sys

from repro.model import DEEPSEEK_V3, count_params
from repro.parallel import (
    ShardingPlan,
    TrainingJobConfig,
    activation_imbalance,
    simulate_training_step,
    training_cost_usd,
    training_gpu_hours,
    training_memory_per_gpu,
)
from repro.reliability import (
    checkpoint_state_bytes,
    checkpoint_write_time,
    cluster_mtbf,
    goodput_fraction,
    optimal_checkpoint_interval,
)

GIB = 1024**3


def main(total_tokens_t: float = 14.8) -> None:
    config = TrainingJobConfig()
    total_tokens = total_tokens_t * 1e12

    print("=" * 72)
    print("1. Step simulation (Table 4 model)")
    print("=" * 72)
    report = simulate_training_step(config)
    mfu = report.mfu
    print(f"  time/step {report.step_time:.2f} s   tokens/day {report.tokens_per_day / 1e9:.1f} B")
    print(f"  MFU {mfu.mfu(True):.1%} causal / {mfu.mfu(False):.1%} non-causal")

    print()
    print("=" * 72)
    print("2. Per-GPU memory (PP16, EP64, FP8 weights)")
    print("=" * 72)
    plan = ShardingPlan()
    mem = training_memory_per_gpu(DEEPSEEK_V3, plan)
    print(f"  weights {mem.weights / GIB:5.1f}  grads {mem.gradients / GIB:5.1f}  "
          f"optimizer {mem.master_and_optimizer / GIB:5.1f}  "
          f"activations {mem.activations / GIB:5.1f}  -> total {mem.total / GIB:.1f} GiB of 80")
    print(f"  activation balance: DualPipe {activation_imbalance('dualpipe', 16):.1f}x "
          f"vs 1F1B {activation_imbalance('1f1b', 16):.1f}x (max/min across ranks)")

    print()
    print("=" * 72)
    print("3. Reliability plan (§6.1 + 3FS storage plane)")
    print("=" * 72)
    nodes = config.num_gpus // 8
    mtbf = cluster_mtbf(nodes)
    ckpt_bytes = checkpoint_state_bytes(count_params(DEEPSEEK_V3).total)
    ckpt_time = checkpoint_write_time(ckpt_bytes, nodes)
    interval = optimal_checkpoint_interval(ckpt_time, mtbf)
    goodput = goodput_fraction(ckpt_time, restart_cost=900.0, mtbf=mtbf, interval=interval)
    print(f"  cluster MTBF {mtbf / 3600:.1f} h   checkpoint {ckpt_bytes / 1e12:.1f} TB "
          f"in {ckpt_time:.1f} s   optimal interval {interval / 60:.0f} min")
    print(f"  expected goodput {goodput:.1%}")

    print()
    print("=" * 72)
    print(f"4. Budget for {total_tokens_t:.1f} T tokens")
    print("=" * 72)
    hours = training_gpu_hours(report, total_tokens) / goodput
    cost = training_cost_usd(report, total_tokens) / goodput
    raw_hours = training_gpu_hours(report, total_tokens)
    print(f"  ideal:          {raw_hours / 1e6:.3f} M GPU-hours  (published: 2.664 M)")
    print(f"  with failures:  {hours / 1e6:.3f} M GPU-hours")
    print(f"  cost @ $2/GPU-h: ${cost / 1e6:.2f} M  (published pre-training: $5.33 M)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 14.8)
