"""Train a tiny DeepSeek-style model, then decode with its MTP module.

Demonstrates the full model-side stack working together: the trainable
MLA+MoE+MTP transformer learns a synthetic Markov language (the main
and MTP losses both fall), and the runnable inference model performs
lossless speculative decoding (Section 2.3.3) with measured acceptance.

Usage:
    python examples/train_and_speculate.py [steps]
"""

import sys

import numpy as np

from repro.inference import mtp_speedup, speculative_generate
from repro.model import TINY_MLA_MOE, Transformer
from repro.training import (
    TrainableTransformer,
    markov_corpus,
    measure_mtp_acceptance,
    sample_windows,
    train,
)


def main(steps: int = 200) -> None:
    config = TINY_MLA_MOE
    corpus = markov_corpus(config.vocab_size, 30_000, seed=7, concentration=0.02)
    print(f"synthetic corpus: vocab {corpus.vocab_size}, "
          f"optimal cross-entropy {corpus.conditional_entropy:.3f} nats")

    print(f"\ntraining the tiny MLA+MoE+MTP model for {steps} steps ...")
    model = TrainableTransformer(config, seed=0)
    result = train(model, corpus, steps=steps, batch_size=8, seq_len=24, lr=3e-3)
    print(f"  loss: {result.losses[0]:.3f} -> {result.final_loss:.3f} "
          f"(floor ~{1.3 * corpus.conditional_entropy:.3f} incl. MTP term)")

    final = model.loss(corpus.tokens[:24][None, :])
    print(f"  main loss {final.main:.3f}, MTP loss {final.mtp[0]:.3f}")

    print("\nMTP acceptance on the trained model (Section 2.3.3) ...")
    windows = sample_windows(corpus, 16, 24, seed=1)
    report = measure_mtp_acceptance(model, windows)
    print(f"  acceptance: {report.acceptance_rate:.1%} over {report.attempted} drafts "
          f"(paper's production model: 80-90%)")
    print(f"  implied generation speedup: {mtp_speedup(report.acceptance_rate):.2f}x")

    print("\nlossless speculative decoding mechanics (inference-path model) ...")
    inference_model = Transformer(config, seed=0)
    prompt = np.array([corpus.tokens[:8]])
    spec = speculative_generate(inference_model, prompt, 32)
    greedy = inference_model.greedy_generate(prompt, 32)
    print(f"  lossless vs greedy: {bool(np.array_equal(spec.tokens, greedy[0]))}")
    print(f"  at the paper's production acceptance (85%): "
          f"{mtp_speedup(0.85):.2f}x generation TPS")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
