"""Quickstart: the co-design numbers that motivate DeepSeek-V3.

Runs the paper's three headline analyses on the published model
configurations:

1. KV-cache footprint — why MLA (Table 1),
2. training cost per token — why MoE (Table 2),
3. the EP inference speed limit — why interconnect bandwidth is the
   ceiling (Section 2.3.2).

Usage:
    python examples/quickstart.py
"""

from repro.core.units import fmt_bytes
from repro.inference import compare_interconnects
from repro.model import (
    DEEPSEEK_V2,
    DEEPSEEK_V3,
    LLAMA31_405B,
    QWEN25_72B,
    compare_kv_cache,
    compare_training_cost,
    count_params,
)


def main() -> None:
    print("=" * 72)
    print("1. KV cache per token (Table 1) — MLA compresses the cache")
    print("=" * 72)
    for row in compare_kv_cache([DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B]):
        print(
            f"  {row.model_name:<16} ({row.attention_kind})  "
            f"{row.kb_per_token:8.3f} KB/token   {row.multiplier:4.2f}x"
        )

    print()
    print("=" * 72)
    print("2. Training cost per token (Table 2) — sparse activation wins")
    print("=" * 72)
    for row in compare_training_cost([DEEPSEEK_V2, DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B]):
        print(
            f"  {row.model_name:<16} {row.kind:<6} "
            f"total {row.total_params / 1e9:6.0f}B  active {row.active_params / 1e9:5.0f}B  "
            f"{row.gflops_per_token:7.1f} GFLOPS/token"
        )

    params = count_params(DEEPSEEK_V3)
    print(
        f"\n  DeepSeek-V3 stores {params.total_main / 1e9:.0f}B parameters "
        f"({fmt_bytes(params.total_main)} at FP8) but each token touches only "
        f"{params.active / 1e9:.0f}B."
    )

    print()
    print("=" * 72)
    print("3. EP inference speed limit (Section 2.3.2) — bandwidth is destiny")
    print("=" * 72)
    for row in compare_interconnects():
        print(
            f"  {row.system:<22} {row.bandwidth / 1e9:5.0f} GB/s  "
            f"stage {row.comm_stage_us:7.2f} us  TPOT {row.tpot_ms:6.2f} ms  "
            f"{row.tokens_per_second:7.0f} tok/s"
        )
    print(
        "\n  A ~18x faster scale-up fabric converts directly into ~18x decode"
        " speed — the paper's argument for scale-up/scale-out convergence."
    )


if __name__ == "__main__":
    main()
