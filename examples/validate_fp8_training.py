"""Run the Section 2.4 precision-validation pipeline end to end.

Trains the tiny MLA+MoE+MTP model twice from identical initialization
and data order — once under the BF16 policy, once under fine-grained
FP8 (1x128 activation tiles, 128x128 weight blocks) — and reports the
relative loss gap the paper bounds at 0.25%.  Also shows the
GEMM-level evidence (Section 3.1): FP22 accumulation error grows with
K while DeepGEMM-style FP32 promotion stays flat.

Usage:
    python examples/validate_fp8_training.py [steps]
"""

import sys

import numpy as np

from repro.model import TINY_MLA_MOE
from repro.precision import fp8_matmul, relative_error
from repro.training import validate_precision


def main(steps: int = 150) -> None:
    print("=" * 72)
    print("1. GEMM-level accumulation study (Section 3.1)")
    print("=" * 72)
    rng = np.random.default_rng(0)
    for k in (512, 4096):
        a = rng.normal(size=(32, k)).astype(np.float32)
        b = rng.normal(size=(k, 32)).astype(np.float32)
        ideal = fp8_matmul(a, b, accumulation="ideal")
        promoted = relative_error(ideal, fp8_matmul(a, b, accumulation="hopper_promoted"))
        fp22 = relative_error(ideal, fp8_matmul(a, b, accumulation="hopper_fp22"))
        print(f"  K={k:<5}  FP32-promoted {promoted:.2e}   raw FP22 {fp22:.2e}")
    print("  -> promotion removes the error growth; §3.1.2's hardware ask.")

    print()
    print("=" * 72)
    print(f"2. Paired training run, {steps} steps (Section 2.4)")
    print("=" * 72)
    report = validate_precision(
        TINY_MLA_MOE, steps=steps, batch_size=8, seq_len=24, seed=0
    )
    print(f"  BF16 baseline final loss: {report.baseline.final_loss:.4f}")
    print(f"  FP8 fine-grained final loss: {report.candidate.final_loss:.4f}")
    print(f"  relative loss gap: {report.relative_loss_gap:+.3%}")
    print("  paper bound: |gap| < 0.25% on the 16B/230B ablations")
    verdict = "PASS" if abs(report.relative_loss_gap) < 0.0025 * 4 else "INVESTIGATE"
    print(f"  verdict at tiny scale (4x slack for optimizer noise): {verdict}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
