"""Plan a DeepSeek-V3 inference deployment (Sections 2.2-2.3, 4.3).

Walks the serving-side co-design decisions:
 * expert-parallel TPOT ceiling per interconnect (Section 2.3.2),
 * node-limited routing's IB traffic savings (Section 4.3),
 * simulated EP dispatch/combine on the cluster fabric (Figure 7),
 * MTP speculative decoding's TPS multiplier (Section 2.3.3),
 * prefill/decode disaggregation sizing (Section 2.3.1),
 * local/on-prem deployment options (Section 2.2.2).

Usage:
    python examples/plan_inference_deployment.py
"""

import numpy as np

from repro.comm import EPConfig, EPDeployment, ib_cost_factor, run_ep_stage
from repro.inference import (
    Workload,
    compare_interconnects,
    mtp_speedup,
    offloaded_decode_tps,
    plan_deployment,
    soc_decode_tps,
)
from repro.model import DEEPSEEK_V2, DEEPSEEK_V3, node_limited_topk, topk_routing
from repro.network import build_mpft_cluster


def main() -> None:
    print("=" * 72)
    print("1. TPOT ceiling by interconnect (Section 2.3.2)")
    print("=" * 72)
    for row in compare_interconnects():
        print(
            f"  {row.system:<22} TPOT >= {row.tpot_ms:6.2f} ms  "
            f"<= {row.tokens_per_second:6.0f} tok/s"
        )

    print()
    print("=" * 72)
    print("2. Node-limited routing (Section 4.3): IB cost per token")
    print("=" * 72)
    scores = np.random.default_rng(0).uniform(size=(4096, 256))
    free = ib_cost_factor(topk_routing(scores, 8), experts_per_node=32)
    limited = ib_cost_factor(
        node_limited_topk(scores, 8, num_groups=8, max_groups=4), experts_per_node=32
    )
    print(f"  unrestricted top-8:     {free:.2f} t  (worst case 8t)")
    print(f"  node-limited (M<=4):    {limited:.2f} t")

    print()
    print("=" * 72)
    print("3. EP dispatch/combine on a 64-GPU MPFT slice (Figure 7)")
    print("=" * 72)
    cluster = build_mpft_cluster(8)
    deployment = EPDeployment(cluster, EPConfig(256, 8, hidden_size=7168))
    decisions = deployment.route_tokens(1024, np.random.default_rng(1))
    for stage in ("dispatch", "combine"):
        result = run_ep_stage(deployment, decisions, stage)
        print(
            f"  {stage:<9} {result.per_gpu_bandwidth / 1e9:5.1f} GB/s per GPU  "
            f"stage time {result.time * 1e3:6.3f} ms"
        )

    print()
    print("=" * 72)
    print("4. MTP speculative decoding (Section 2.3.3)")
    print("=" * 72)
    for acceptance in (0.80, 0.85, 0.90):
        print(f"  acceptance {acceptance:.0%} -> {mtp_speedup(acceptance):.2f}x generation TPS")

    print()
    print("=" * 72)
    print("5. Prefill/decode disaggregation (Section 2.3.1)")
    print("=" * 72)
    workload = Workload(requests_per_second=20, prompt_tokens=4096, output_tokens=1024)
    plan = plan_deployment(DEEPSEEK_V3, workload, decode_tpot=0.03)
    print(f"  prefill pool: {plan.prefill_gpus:6.1f} GPUs")
    print(f"  decode pool:  {plan.decode_gpus:6.1f} GPUs")
    print(
        f"  colocating instead would inflate decode TPOT "
        f"{plan.tpot_inflation_colocated:.2f}x "
        f"({plan.disaggregated_tpot * 1e3:.0f} ms -> {plan.colocated_tpot * 1e3:.0f} ms)"
    )

    print()
    print("=" * 72)
    print("6. Personal / on-prem deployment (Section 2.2.2)")
    print("=" * 72)
    soc = soc_decode_tps(DEEPSEEK_V2, weight_dtype="fp8")
    kt = offloaded_decode_tps(DEEPSEEK_V3, gpu_bandwidth=1.0e12)
    print(f"  DeepSeek-V2 on an AI SoC:            {soc.tokens_per_second:5.1f} tok/s")
    print(f"  DeepSeek-V3 via expert offloading:   {kt.tokens_per_second:5.1f} tok/s")


if __name__ == "__main__":
    main()
