"""Design a training-cluster network the way Section 5 does.

Given a target GPU count, compares candidate scale-out topologies on
cost (Table 3 methodology), small-message latency (Table 5), and
simulated all-to-all behaviour (Figures 5-6), then verifies the
multi-plane design's fault isolation.

Usage:
    python examples/design_cluster_network.py [num_nodes]
"""

import sys

from repro.network import (
    CostModel,
    DragonflyParams,
    build_mpft_cluster,
    build_mrft_cluster,
    dragonfly_spec,
    ft2_spec,
    ft3_spec,
    mpft_spec,
    run_all_to_all,
    slimfly_spec,
    table5_rows,
)
from repro.reliability import assess_impact, fail_entire_plane, fail_link


def main(num_nodes: int = 16) -> None:
    cost_model = CostModel()
    print("=" * 72)
    print("1. Topology candidates at full scale (Table 3 methodology)")
    print("=" * 72)
    for spec in (
        ft2_spec(64),
        mpft_spec(64),
        ft3_spec(64),
        slimfly_spec(28),
        dragonfly_spec(DragonflyParams.balanced(64, g=511)),
    ):
        print(
            f"  {spec.name:<5} endpoints {spec.endpoints:>7,}  "
            f"switches {spec.switches:>6,}  links {spec.links:>7,}  "
            f"cost ${cost_model.total(spec) / 1e6:7.1f}M  "
            f"(${cost_model.per_endpoint(spec) / 1e3:.2f}k/endpoint)"
        )
    print(
        "\n  MPFT reaches 16,384 endpoints at FT2's cost/endpoint — the"
        " two-layer price for a three-layer scale."
    )

    print()
    print("=" * 72)
    print("2. Small-message latency by link layer (Table 5)")
    print("=" * 72)
    for row in table5_rows():
        cross = "-" if row.cross_leaf_us is None else f"{row.cross_leaf_us:.2f} us"
        print(f"  {row.link_layer:<12} same leaf {row.same_leaf_us:.2f} us   cross leaf {cross}")

    print()
    print("=" * 72)
    print(f"3. Simulated all-to-all on {num_nodes * 8} GPUs: MPFT vs MRFT")
    print("=" * 72)
    for builder in (build_mpft_cluster, build_mrft_cluster):
        cluster = builder(num_nodes)
        result = run_all_to_all(cluster, cluster.gpus(), 1 << 20, mode="drain")
        print(
            f"  {cluster.scheme.upper():<5} busbw {result.busbw / 1e9:6.2f} GB/s per GPU   "
            f"completion {result.time * 1e3:6.2f} ms"
        )
    print("  -> parity, as in Figures 5-6: PXN makes the plane split invisible.")

    print()
    print("=" * 72)
    print("4. Fault isolation of the multi-plane design (Section 5.1.1)")
    print("=" * 72)
    cluster = build_mpft_cluster(num_nodes)
    fail_link(cluster.topology, "n0g0", "MPFT/p0/leaf0")
    print(f"  one NIC link down      -> connectivity {assess_impact(cluster).connectivity:.0%}")
    cluster = build_mpft_cluster(num_nodes)
    fail_entire_plane(cluster, plane=0)
    print(f"  entire plane down      -> connectivity {assess_impact(cluster).connectivity:.0%}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
