"""Hardware catalog: the devices and links the paper reasons about.

All constants are taken from the paper itself (Sections 2.3.2, 4.1, 4.3,
5.2 and Table 5) or from public vendor datasheets where the paper relies
on them implicitly (e.g. H800 peak FLOPS for the MFU computation in
Table 4).  Everything downstream — the TPOT limit model, the EP
simulator, the DualPipe throughput model — pulls its numbers from here
so that a single calibration point governs every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .units import gbps_to_bytes_per_s


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect technology.

    Attributes:
        name: Human-readable identifier.
        bandwidth: Peak unidirectional bandwidth in bytes/s.
        effective_bandwidth: Achievable unidirectional bandwidth in
            bytes/s after protocol overhead and small-message effects
            (the paper uses 160 GB/s for NVLink and 40 GB/s for a
            400 Gb/s IB NIC).
        latency: One-way base latency contribution in seconds for a small
            message (endpoint-to-endpoint for NVLink; per-NIC-pair for
            network links, excluding switch hops).
    """

    name: str
    bandwidth: float
    effective_bandwidth: float
    latency: float

    @property
    def efficiency(self) -> float:
        """Fraction of peak bandwidth that is achievable."""
        return self.effective_bandwidth / self.bandwidth


@dataclass(frozen=True)
class SwitchSpec:
    """A network switch model.

    Attributes:
        name: Human-readable identifier.
        ports: Port count (radix).
        port_bandwidth: Per-port unidirectional bandwidth, bytes/s.
        latency: Per-hop forwarding latency in seconds.
    """

    name: str
    ports: int
    port_bandwidth: float
    latency: float


@dataclass(frozen=True)
class GpuSpec:
    """An accelerator model.

    Peak compute rates are *dense* FLOP/s.  ``fp8_flops`` is the dense
    FP8 tensor-core rate; BF16 is used for MFU in the paper's Table 4.
    """

    name: str
    bf16_flops: float
    fp8_flops: float
    hbm_bytes: float
    hbm_bandwidth: float
    num_sms: int
    scale_up: LinkSpec
    pcie_bandwidth: float = 64e9  # PCIe 5.0 x16 per direction


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU server node.

    Attributes:
        name: Human-readable identifier.
        gpu: The GPU model populated in the node.
        gpus_per_node: Number of GPUs.
        nics_per_node: Number of scale-out NICs (the H800 node pairs one
            CX7 NIC with each GPU).
        nic: Scale-out NIC link spec.
    """

    name: str
    gpu: GpuSpec
    gpus_per_node: int
    nics_per_node: int
    nic: LinkSpec

    @property
    def nic_per_gpu(self) -> float:
        """Scale-out NICs available per GPU."""
        return self.nics_per_node / self.gpus_per_node

    @property
    def scale_up_to_scale_out_ratio(self) -> float:
        """Effective intra-node vs inter-node bandwidth disparity.

        The paper quotes ~4:1 for the H800 (160 GB/s NVLink vs 40 GB/s
        per IB NIC, Section 4.3).
        """
        return (
            self.gpu.scale_up.effective_bandwidth / self.nic.effective_bandwidth
        )


# --- Link technologies (Table 5 calibration) --------------------------------
#
# Table 5 reports CPU-side end-to-end latency for a 64 B transfer:
#   IB:     same leaf 2.8 us, cross leaf 3.7 us
#   RoCE:   same leaf 3.6 us, cross leaf 5.6 us
#   NVLink: 3.33 us
# With latency = 2 * nic_side + hops * switch_hop this fits exactly:
#   IB:   nic_side = 1.175 us, switch_hop = 0.45 us
#   RoCE: nic_side = 1.3 us,   switch_hop = 1.0 us

IB_NIC_SIDE_LATENCY = 1.175e-6
IB_SWITCH_HOP_LATENCY = 0.45e-6
ROCE_NIC_SIDE_LATENCY = 1.3e-6
ROCE_SWITCH_HOP_LATENCY = 1.0e-6
NVLINK_E2E_LATENCY = 3.33e-6

NVLINK_H800 = LinkSpec(
    name="NVLink (H800, 400GB/s bidir)",
    bandwidth=200e9,
    effective_bandwidth=160e9,
    latency=NVLINK_E2E_LATENCY,
)

NVLINK_H100 = LinkSpec(
    name="NVLink (H100, 900GB/s bidir)",
    bandwidth=450e9,
    effective_bandwidth=360e9,
    latency=NVLINK_E2E_LATENCY,
)

NVLINK_GB200 = LinkSpec(
    name="NVLink (GB200 NVL72, 900GB/s unidir)",
    bandwidth=900e9,
    effective_bandwidth=900e9,
    latency=NVLINK_E2E_LATENCY,
)

IB_CX7_400G = LinkSpec(
    name="InfiniBand CX7 400Gbps",
    bandwidth=gbps_to_bytes_per_s(400),  # 50 GB/s
    effective_bandwidth=40e9,
    latency=2 * IB_NIC_SIDE_LATENCY,
)

ROCE_400G = LinkSpec(
    name="RoCE 400Gbps",
    bandwidth=gbps_to_bytes_per_s(400),
    effective_bandwidth=40e9,
    latency=2 * ROCE_NIC_SIDE_LATENCY,
)

PCIE_GEN5_X16 = LinkSpec(
    name="PCIe 5.0 x16",
    bandwidth=64e9,
    effective_bandwidth=55e9,
    latency=1.0e-6,
)

IB_SWITCH_400G_64P = SwitchSpec(
    name="IB NDR 400G 64-port",
    ports=64,
    port_bandwidth=gbps_to_bytes_per_s(400),
    latency=IB_SWITCH_HOP_LATENCY,
)

ROCE_SWITCH_400G_128P = SwitchSpec(
    name="Ethernet 400G 128-port",
    ports=128,
    port_bandwidth=gbps_to_bytes_per_s(400),
    latency=ROCE_SWITCH_HOP_LATENCY,
)


# --- GPUs --------------------------------------------------------------------

H800 = GpuSpec(
    name="NVIDIA H800 SXM",
    bf16_flops=989e12,
    fp8_flops=1979e12,
    hbm_bytes=80 * 1024**3,
    hbm_bandwidth=3.35e12,
    num_sms=132,
    scale_up=NVLINK_H800,
)

H100 = GpuSpec(
    name="NVIDIA H100 SXM",
    bf16_flops=989e12,
    fp8_flops=1979e12,
    hbm_bytes=80 * 1024**3,
    hbm_bandwidth=3.35e12,
    num_sms=132,
    scale_up=NVLINK_H100,
)

GB200 = GpuSpec(
    name="NVIDIA GB200 (Blackwell, NVL72 domain)",
    bf16_flops=2500e12,
    fp8_flops=5000e12,
    hbm_bytes=192 * 1024**3,
    hbm_bandwidth=8e12,
    num_sms=148,
    scale_up=NVLINK_GB200,
)

# A consumer/AI-SoC device of the class the paper cites for personal MoE
# deployment (Apple M4-class / Ryzen AI Max: ~0.25-0.5 TB/s unified memory).
AI_SOC = GpuSpec(
    name="Consumer AI SoC (unified memory)",
    bf16_flops=60e12,
    fp8_flops=120e12,
    hbm_bytes=128 * 1024**3,
    hbm_bandwidth=0.4e12,
    num_sms=40,
    scale_up=LinkSpec("on-package", 200e9, 180e9, 0.5e-6),
)

# A single consumer GPU + host DRAM server of the class the KTransformers
# deployment uses (~$10k): GPU holds hot weights, experts stream from DDR.
CONSUMER_GPU_SERVER_DDR_BANDWIDTH = 0.56e12  # 12-channel DDR5 server


# --- Nodes -------------------------------------------------------------------

H800_NODE = NodeSpec(
    name="H800 node (8 GPU, 8x CX7 400G IB)",
    gpu=H800,
    gpus_per_node=8,
    nics_per_node=8,
    nic=IB_CX7_400G,
)

H800_ROCE_NODE = NodeSpec(
    name="H800 node (8 GPU, 8x 400G RoCE)",
    gpu=H800,
    gpus_per_node=8,
    nics_per_node=8,
    nic=ROCE_400G,
)

GB200_NVL72_NODE = NodeSpec(
    name="GB200 NVL72 rack-scale domain",
    gpu=GB200,
    gpus_per_node=72,
    nics_per_node=72,
    nic=IB_CX7_400G,
)


def with_nic(node: NodeSpec, nic: LinkSpec, name: str | None = None) -> NodeSpec:
    """Return a copy of ``node`` using a different scale-out NIC."""
    return replace(node, nic=nic, name=name or f"{node.name} [{nic.name}]")


GPU_CATALOG: dict[str, GpuSpec] = {
    "H800": H800,
    "H100": H100,
    "GB200": GB200,
    "AI_SOC": AI_SOC,
}

NODE_CATALOG: dict[str, NodeSpec] = {
    "H800": H800_NODE,
    "H800_ROCE": H800_ROCE_NODE,
    "GB200_NVL72": GB200_NVL72_NODE,
}
