"""Process self-measurement helpers.

The memory story of the serving core (streaming constant-memory
reporting, flat-array workload state) is only verifiable if benches can
*measure* it: :func:`peak_rss_bytes` reads the process's resident-set
high-water mark, the number the ``BENCH_simcore_scale.json`` baseline
pins and CI gates.

The value is a high-water mark: it never decreases within a process,
so comparing scenarios requires one fresh process per scenario (the
scale bench forks itself per measurement for exactly this reason).
"""

from __future__ import annotations

import sys

try:  # Unix-only stdlib module; absent on some platforms.
    import resource
except ImportError:  # pragma: no cover - non-Unix fallback
    resource = None  # type: ignore[assignment]

__all__ = ["peak_rss_bytes"]


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux and in
    bytes on macOS; both are normalized to bytes.  Returns 0 where the
    ``resource`` module is unavailable, so callers can record the value
    unconditionally.
    """
    if resource is None:  # pragma: no cover - non-Unix fallback
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024
