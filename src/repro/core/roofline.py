"""Roofline-style execution-time estimates.

Section 2.1.2 of the paper explains why decode is memory bound: the
attention computation degrades from GEMM to GEMV, whose arithmetic
intensity is far below the machine balance of modern accelerators.
This module provides the small amount of shared machinery used by the
decode model, the MFU calculators and the overlap scheduler: given an
operation's FLOP count and memory traffic, estimate its execution time
on a given GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hardware import GpuSpec


@dataclass(frozen=True)
class OpProfile:
    """Static profile of a kernel: work and traffic.

    Attributes:
        name: Identifier for reporting.
        flops: Floating point operations performed.
        bytes_moved: HBM bytes read + written.
    """

    name: str
    flops: float
    bytes_moved: float

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved


@dataclass(frozen=True)
class RooflineEstimate:
    """Execution-time estimate for one op on one GPU."""

    op: OpProfile
    compute_time: float
    memory_time: float

    @property
    def time(self) -> float:
        """Roofline execution time: max of compute and memory time."""
        return max(self.compute_time, self.memory_time)

    @property
    def is_memory_bound(self) -> bool:
        """True when memory traffic, not FLOPs, limits execution."""
        return self.memory_time >= self.compute_time

    @property
    def utilization(self) -> float:
        """Fraction of peak compute achieved (MFU of this op)."""
        if self.time == 0:
            return 0.0
        return self.compute_time / self.time


def machine_balance(gpu: GpuSpec, precision: str = "bf16") -> float:
    """FLOP/byte ratio at which the GPU transitions to compute bound."""
    flops = gpu.fp8_flops if precision == "fp8" else gpu.bf16_flops
    return flops / gpu.hbm_bandwidth


def estimate(
    op: OpProfile,
    gpu: GpuSpec,
    precision: str = "bf16",
    compute_efficiency: float = 1.0,
    memory_efficiency: float = 1.0,
) -> RooflineEstimate:
    """Estimate execution time of ``op`` on ``gpu``.

    Args:
        op: The kernel profile.
        gpu: Target accelerator.
        precision: "bf16" or "fp8" — selects the peak compute rate.
        compute_efficiency: De-rating of peak FLOPS (kernel quality).
        memory_efficiency: De-rating of peak HBM bandwidth.

    Returns:
        A :class:`RooflineEstimate` with compute and memory components.
    """
    if not 0 < compute_efficiency <= 1:
        raise ValueError(f"compute_efficiency must be in (0, 1], got {compute_efficiency}")
    if not 0 < memory_efficiency <= 1:
        raise ValueError(f"memory_efficiency must be in (0, 1], got {memory_efficiency}")
    peak = gpu.fp8_flops if precision == "fp8" else gpu.bf16_flops
    compute_time = op.flops / (peak * compute_efficiency)
    memory_time = op.bytes_moved / (gpu.hbm_bandwidth * memory_efficiency)
    return RooflineEstimate(op=op, compute_time=compute_time, memory_time=memory_time)
