"""Unit helpers used throughout the library.

The paper mixes binary sizes (KB meaning KiB in Table 1), decimal network
bandwidths (400 Gb/s NICs, GB/s link rates), microsecond latencies and
GFLOPS/TFLOPS compute rates.  Keeping the conversion constants in one
place avoids the classic factor-of-1.024 and bits-vs-bytes mistakes.

Conventions used by this library (matching the paper):

* Memory capacities and cache sizes are reported in *binary* units
  (``KiB = 1024 B``) but written "KB" the way the paper writes them.
* Network bandwidths are *decimal* (``1 GB/s = 1e9 B/s``); NIC line rates
  quoted in Gb/s are converted with ``1 Gb/s = 1e9 bit/s``.
* Times are held in seconds internally; helpers convert to/from
  micro/milliseconds for display.
* Compute rates are held in FLOP/s; helpers convert GFLOPS/TFLOPS.
"""

from __future__ import annotations

# --- bytes -----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

# --- time ------------------------------------------------------------------

US = 1e-6
MS = 1e-3
SECONDS_PER_DAY = 86_400.0

# --- compute ---------------------------------------------------------------

GFLOP = 1e9
TFLOP = 1e12
PFLOP = 1e15


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a line rate in Gigabits/s to bytes/s (decimal)."""
    return gbps * 1e9 / 8.0


def bytes_to_kib(n_bytes: float) -> float:
    """Bytes to binary kilobytes (the unit Table 1 calls "KB")."""
    return n_bytes / KIB


def bytes_to_gb(n_bytes: float) -> float:
    """Bytes to decimal gigabytes."""
    return n_bytes / GB


def seconds_to_us(seconds: float) -> float:
    """Seconds to microseconds."""
    return seconds / US


def us_to_seconds(us: float) -> float:
    """Microseconds to seconds."""
    return us * US


def seconds_to_ms(seconds: float) -> float:
    """Seconds to milliseconds."""
    return seconds / MS


def flops_to_gflops(flops: float) -> float:
    """FLOPs to GFLOPs."""
    return flops / GFLOP


def flops_to_tflops(flops: float) -> float:
    """FLOPs to TFLOPs."""
    return flops / TFLOP


def fmt_bytes(n_bytes: float) -> str:
    """Human-readable binary-unit byte count, e.g. ``70.272 KB``."""
    if n_bytes < KIB:
        return f"{n_bytes:.0f} B"
    if n_bytes < MIB:
        return f"{n_bytes / KIB:.3f} KB"
    if n_bytes < GIB:
        return f"{n_bytes / MIB:.3f} MB"
    return f"{n_bytes / GIB:.3f} GB"


def fmt_time(seconds: float) -> str:
    """Human-readable time, choosing between us / ms / s."""
    if seconds < 1e-3:
        return f"{seconds / US:.2f} us"
    if seconds < 1.0:
        return f"{seconds / MS:.2f} ms"
    return f"{seconds:.3f} s"
