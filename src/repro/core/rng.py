"""Shared seeded-RNG factory.

Every stochastic path in the repository — synthetic corpora, precision
noise injection, the serving simulator's arrival/acceptance processes —
draws from a :class:`numpy.random.Generator` built here, so one root
seed reproduces an entire experiment.

Named streams decorrelate the consumers: ``seeded_generator(7, "arrivals")``
and ``seeded_generator(7, "mtp")`` are independent, yet both derive
deterministically from seed 7 via :class:`numpy.random.SeedSequence`.
This is how a single ``--seed`` flag can govern a simulation whose
subsystems each need their own generator without accidental coupling
(consuming one extra arrival must not shift every acceptance draw).
"""

from __future__ import annotations

import zlib

import numpy as np


def _stream_key(stream: str) -> int:
    """Stable 32-bit key for a stream name (crc32, not ``hash()`` —
    Python string hashing is salted per process)."""
    return zlib.crc32(stream.encode("utf-8"))


def derive_seed(seed: int, stream: str) -> int:
    """A deterministic 64-bit child seed for ``(seed, stream)``.

    This extends the named-stream discipline across *process*
    boundaries: the sweep engine (:mod:`repro.sweep`) derives one child
    seed per grid point from the root seed and the point's canonical
    config, then ships the plain integer to a worker process.  The
    child seed depends only on ``(seed, stream)`` — not on worker
    count, scheduling order, or platform — so a fanned-out sweep is
    byte-identical to a serial one.
    """
    state = np.random.SeedSequence([seed, _stream_key(stream)]).generate_state(2, np.uint32)
    return (int(state[0]) << 32) | int(state[1])


def seeded_generator(seed: int, stream: str | None = None) -> np.random.Generator:
    """A deterministic generator for ``(seed, stream)``.

    Args:
        seed: Root experiment seed.
        stream: Optional stream name; distinct names yield independent
            generators for the same seed.  ``None`` gives the root
            stream (identical to ``np.random.default_rng(seed)``).

    Returns:
        A fresh ``numpy.random.Generator``.
    """
    if stream is None:
        return np.random.default_rng(seed)
    return np.random.default_rng(np.random.SeedSequence([seed, _stream_key(stream)]))
