"""Paged KV-cache allocator for the serving simulator.

§2.1.2 and the DeepSeek memory analyses make the point the closed-form
serving models cannot: KV-cache *capacity*, not per-token FLOPs, caps
decode concurrency.  This allocator models a vLLM-style paged pool:
capacity is block-granular (a block holds ``block_tokens`` tokens of
cache for one request), requests allocate on admission, extend as they
generate, and free on completion.  When the pool is exhausted the
scheduler preempts a victim — its blocks are freed and its context is
recomputed later, exactly the recompute-on-preemption policy production
engines use.

Pool capacity is sized from :func:`repro.model.kvcache.kv_cache_bytes_per_token`
against the HBM left after resident weights, keeping the simulator on
the same calibration as Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hardware import GpuSpec
from ..model.config import ModelConfig
from ..model.kvcache import DTYPE_BYTES, kv_cache_bytes_per_token
from ..model.params import count_params


@dataclass(frozen=True)
class KVPoolConfig:
    """Sizing of one pool's paged KV cache.

    Attributes:
        total_blocks: Blocks in the pool.
        block_tokens: Tokens of context one block holds.
    """

    total_blocks: int
    block_tokens: int = 64

    def __post_init__(self) -> None:
        if self.total_blocks < 1 or self.block_tokens < 1:
            raise ValueError("total_blocks and block_tokens must be positive")


def kv_pool_blocks(
    model: ModelConfig,
    gpu: GpuSpec,
    num_gpus: int,
    ep_degree: int,
    block_tokens: int = 64,
    kv_dtype: str = "bf16",
    weight_dtype: str = "fp8",
    reserve_fraction: float = 0.1,
) -> KVPoolConfig:
    """Size a pool's KV cache from its aggregate HBM budget.

    Weights shard over the EP group, so each GPU holds
    ``total_params / ep_degree`` weight bytes; the rest of HBM (minus an
    activation/fragmentation reserve) is KV blocks.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be positive")
    if not 0 <= reserve_fraction < 1:
        raise ValueError("reserve_fraction must be in [0, 1)")
    weight_bytes = count_params(model).total * DTYPE_BYTES[weight_dtype] / ep_degree
    budget_per_gpu = gpu.hbm_bytes * (1.0 - reserve_fraction) - weight_bytes
    if budget_per_gpu <= 0:
        raise ValueError("weights alone exceed the HBM budget")
    block_bytes = kv_cache_bytes_per_token(model, kv_dtype) * block_tokens
    total = int(budget_per_gpu * num_gpus // block_bytes)
    if total < 1:
        raise ValueError("KV budget smaller than one block")
    return KVPoolConfig(total_blocks=total, block_tokens=block_tokens)


class PagedKVPool:
    """Block-granular KV allocator with per-request accounting.

    Every operation is O(1): block counts come from pure integer
    arithmetic (no float ``ceil`` on the hot path) and per-request
    holdings live in one dict keyed by ``rid``.  The simulator caches
    each request's covered-token cursor (``capacity_tokens``) so the
    common decode step — the new token still fits in the last block —
    does not even reach the allocator.
    """

    __slots__ = ("_config", "_free", "_held", "_block_tokens", "peak_used")

    def __init__(self, config: KVPoolConfig) -> None:
        self._config = config
        self._free = config.total_blocks
        self._held: dict[int, int] = {}  # rid -> blocks held
        self._block_tokens = config.block_tokens
        self.peak_used = 0

    @property
    def config(self) -> KVPoolConfig:
        """The pool sizing."""
        return self._config

    @property
    def free_blocks(self) -> int:
        """Blocks currently unallocated.

        Negative after a shrinking :meth:`resize` that left the pool
        over-committed — live reservations exceed the new capacity and
        the caller must evict until this is non-negative.
        """
        return self._free

    @property
    def used_blocks(self) -> int:
        """Blocks currently allocated."""
        return self._config.total_blocks - self._free

    @property
    def occupancy(self) -> float:
        """Fraction of the pool in use."""
        return self.used_blocks / self._config.total_blocks

    @property
    def peak_occupancy(self) -> float:
        """High-water occupancy fraction, against *current* capacity
        (after a shrinking :meth:`resize` this can exceed 1.0 — the
        pre-fault peak measured against the degraded pool)."""
        return self.peak_used / self._config.total_blocks

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` of context."""
        blocks = -(-tokens // self._block_tokens)  # exact integer ceil
        return blocks if blocks > 1 else 1

    def capacity_tokens(self, rid: int) -> int:
        """Context tokens the request's current blocks can hold (0 when
        the request holds none) — the cursor the simulator caches to
        skip :meth:`extend` while the next token still fits."""
        return self._held.get(rid, 0) * self._block_tokens

    def can_allocate(self, tokens: int) -> bool:
        """Whether a fresh allocation of ``tokens`` would succeed."""
        return self.blocks_for(tokens) <= self._free

    def allocate(self, rid: int, tokens: int) -> bool:
        """Reserve blocks for a new request; False when full."""
        if rid in self._held:
            raise ValueError(f"request {rid} already holds blocks")
        need = self.blocks_for(tokens)
        if need > self._free:
            return False
        self._free -= need
        self._held[rid] = need
        used = self._config.total_blocks - self._free
        if used > self.peak_used:
            self.peak_used = used
        return True

    def extend(self, rid: int, tokens: int) -> bool:
        """Grow a request's reservation to cover ``tokens`` of context.

        Returns False (and leaves the reservation unchanged) when the
        pool cannot supply the extra blocks — the preemption trigger.
        """
        held = self._held.get(rid)
        if held is None:
            raise KeyError(f"request {rid} holds no blocks")
        need = self.blocks_for(tokens)
        if need <= held:
            return True
        if need - held > self._free:
            return False
        self._free -= need - held
        self._held[rid] = need
        used = self._config.total_blocks - self._free
        if used > self.peak_used:
            self.peak_used = used
        return True

    def free(self, rid: int) -> None:
        """Release all blocks of a finished or preempted request."""
        self._free += self._held.pop(rid)

    def resize(self, total_blocks: int) -> None:
        """Re-size the pool in place (fault injection / repair).

        Existing reservations are untouched; only the capacity moves.
        Shrinking below the blocks currently held leaves ``free_blocks``
        negative — an over-committed pool — and the fault engine evicts
        requests until the deficit clears.  ``peak_used`` keeps its
        high-water meaning across the resize.
        """
        if total_blocks < 1:
            raise ValueError("total_blocks must be positive")
        delta = total_blocks - self._config.total_blocks
        self._config = KVPoolConfig(
            total_blocks=total_blocks, block_tokens=self._block_tokens
        )
        self._free += delta
