"""Seeded discrete-event simulator for LLM serving (§2.3.1–§2.3.3).

Drives individual requests through one or two modeled GPU pools:

* **colocated** — a single pool runs prefill and decode; prefill
  batches block decode steps (prefill-priority), reproducing the
  interference §2.3.1 says motivates disaggregation.
* **disaggregated** — a prefill pool hands finished contexts to a
  decode pool over a modeled KV-cache transfer, so decode steps never
  wait behind prefill bursts.

All stochastic choices (arrivals, lengths, MTP acceptance) come from
named streams of :func:`repro.core.rng.seeded_generator`, and the
calendar-queue event scheduler (:class:`repro.serving.calqueue.CalendarQueue`,
pop order proven identical to a binary heap) breaks time ties with
``(kind, seq)``, so a seed fully determines the run: two simulations
with the same config produce ``SimReport``s that compare equal — and,
with a :class:`repro.obs.Tracer` attached, byte-identical trace files.

Step costs come from :class:`repro.serving.costmodel.StepCostModel`,
which is calibrated against the analytic rooflines — the simulator
adds queueing, batching, KV-capacity and tail-latency dynamics on top
of the closed forms, it does not re-derive the per-step physics.

Observability: quantitative channels (queue depth, KV occupancy,
counters) live in a :class:`repro.obs.MetricsRegistry`; span-level
structure (request lifecycle queued → prefill → [kv_transfer] →
decode → finish, per-pool step batches, preemption instants) goes to
the tracer, which defaults to the zero-cost
:data:`repro.obs.NULL_TRACER`.  Pools are trace *processes*; requests
are *tracks* in a dedicated "requests" process.

Hot-path design (pinned bit-for-bit by ``tests/test_simcore_golden.py``):

* Requests have identity semantics (``eq=False``), so membership and
  removal never run field-wise dataclass comparison.
* Each pool keeps its active set pre-sorted by ``(arrival, rid)`` and
  carries a running integer sum of context tokens, so decode-batch
  selection is a prefix slice, the preemption victim is ``active[-1]``
  and the batch's mean context needs no per-step re-summation.  All
  maintained aggregates are integers, so they equal the from-scratch
  sums exactly.
* Requests cache the token capacity of their held KV blocks
  (``Request.kv_tokens``); a decode step only calls into the allocator
  when the next token actually crosses a block boundary.
* Event counters accumulate in plain ints and flush into the
  :class:`MetricsRegistry` once per run, so tracing-off runs pay no
  per-event instrument overhead.

Memory design (million-request runs, gated by
``benchmarks/bench_simcore_scale.py``):

* The workload is sampled in bounded chunks into flat numpy columns
  (:class:`repro.serving.workload.RequestColumns`, ~24 bytes/request);
  a mutable :class:`Request` is materialized only when its arrival
  fires, and each arrival event feeds the next, so live Python objects
  are O(active requests).
* Reporting streams by default: retired requests fold into
  geometric-bucket histograms and running sums, traces decimate to
  ``STREAM_TRACE_POINTS``, and the report is assembled by
  :func:`repro.serving.report.build_streaming_report`.  Exact
  per-request records return behind ``SimConfig.record_requests`` (and
  automatically for fault runs, whose degradation report needs them).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field
from operator import attrgetter

from ..core.rng import seeded_generator
from ..faults.report import annotate_alerts, build_degradation
from ..faults.schedule import FaultEvent, FaultSchedule, RecoveryPolicy
from ..obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    WindowedMetrics,
    evaluate_slo,
    parse_slo_rules,
    window_summaries,
)
from ..obs.metrics import Histogram
from .calqueue import CalendarQueue
from .costmodel import StepCostModel
from .kvpool import KVPoolConfig, PagedKVPool, kv_pool_blocks
from .report import SLO, SimReport, build_report, build_streaming_report
from .scheduler import SchedulerConfig, form_prefill_batch
from .workload import Request, WorkloadSpec, generate_request_columns

COLOCATED = "colocated"
DISAGGREGATED = "disaggregated"

# Event kinds, in tie-breaking order: arrivals and transfers land
# before step completions at the same instant; fault/repair/retry land
# after them (the new kinds extend the order so fault-free heaps sort
# exactly as before).  At one instant a repair precedes a retry, so a
# retried request sees restored capacity.
_ARRIVAL = 0
_DECODE_ENTER = 1
_STEP_DONE = 2
_FAULT = 3
_REPAIR = 4
_RETRY = 5

#: Fault kinds the serving simulator consumes (see repro.faults).
_SERVING_FAULT_KINDS = ("gpu", "node")

#: Registry channel names the report is built from.
QUEUE_DEPTH = "serving.queue_depth"
KV_OCCUPANCY = "serving.kv_occupancy"

#: Scheduler order: oldest-first with rid tie-break (see scheduler.py).
_BY_ARRIVAL = attrgetter("arrival", "rid")
_BY_RID = attrgetter("rid")

#: Streaming mode keeps the queue/KV traces at decaying resolution
#: (TimeSeries decimate mode) instead of one exact sample per event.
STREAM_TRACE_POINTS = 2048


@dataclass(frozen=True)
class SimConfig:
    """One serving-simulation scenario.

    Attributes:
        workload: Request stream to generate.
        costs: Calibrated step-cost model (shared by both pools).
        mode: ``"colocated"`` or ``"disaggregated"``.
        prefill_gpus / decode_gpus: Pool sizes.  Colocated mode runs
            one pool of ``prefill_gpus + decode_gpus`` GPUs, so the two
            modes compare at equal hardware.
        scheduler: Batching/admission limits.
        kv_blocks_per_gpu: Paged KV blocks per GPU; ``None`` sizes the
            pool from HBM minus resident weights (Table 1 calibration).
        block_tokens: Tokens per KV block.
        context_bucket: Decode step times are evaluated at the batch's
            mean context rounded up to this granularity (bounds the
            cost-model cache while tracking context growth).
        slo: Goodput objectives.
        seed: Root seed for every stochastic stream.
        faults: Optional fault schedule (``gpu``/``node`` events
            targeting pool names; an empty target means the decode-side
            pool).  ``None`` or an empty schedule leaves the run
            bit-identical to a pre-fault-engine simulation.
        recovery: Retry/backoff/shedding policy for fault survival.
        window_s: Telemetry window width (sim seconds).  ``None`` (the
            default) disables windowed aggregation entirely — the run,
            its report and its trace stay bit-identical to a
            pre-telemetry simulation.
        slo_rules: Declarative SLO monitor rules (anything
            :func:`repro.obs.parse_slo_rules` accepts — ``SloRule``s,
            dicts, or compact strings like ``"burn>2@0.9"``).
            Requires ``window_s``; the resulting alert timeline lands
            in ``SimReport.alerts``.
        record_requests: Keep exact per-request records and full-
            resolution traces (O(total requests) memory) and build the
            report from them — the bit-exact mode the golden tests pin.
            The default is *streaming*: latency distributions fold into
            geometric-bucket histograms as requests finish, traces
            decimate to a bounded point budget, and steady-state memory
            is O(active requests + histogram buckets + windows), so
            million-request runs fit in a flat footprint.  Runs with a
            non-empty fault schedule always keep records — the
            degradation report needs per-request timelines.
    """

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    costs: StepCostModel = field(default_factory=StepCostModel)
    mode: str = COLOCATED
    prefill_gpus: int = 2
    decode_gpus: int = 6
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    kv_blocks_per_gpu: int | None = None
    block_tokens: int = 64
    context_bucket: int = 512
    slo: SLO = field(default_factory=SLO)
    seed: int = 0
    faults: FaultSchedule | None = None
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    window_s: float | None = None
    slo_rules: tuple = ()
    record_requests: bool = False

    def __post_init__(self) -> None:
        if self.mode not in (COLOCATED, DISAGGREGATED):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.prefill_gpus < 1 or self.decode_gpus < 1:
            raise ValueError("pool sizes must be positive")
        if self.block_tokens < 1 or self.context_bucket < 1:
            raise ValueError("block_tokens and context_bucket must be positive")
        if self.kv_blocks_per_gpu is not None and self.kv_blocks_per_gpu < 1:
            raise ValueError("kv_blocks_per_gpu must be positive")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.slo_rules:
            if self.window_s is None:
                raise ValueError("slo_rules require window_s")
            object.__setattr__(self, "slo_rules", parse_slo_rules(self.slo_rules))


class _Pool:
    """Runtime state of one GPU pool.

    ``active`` is kept sorted by ``(arrival, rid)`` — the scheduler
    order of :func:`repro.serving.scheduler.select_decode_batch` — and
    ``active_ctx`` is the running integer sum of its members' context
    tokens (prompt + generated).  Both are maintained incrementally at
    every admission, emission, preemption and completion, so per-step
    scheduling is O(batch) with no sorting or re-summation.
    """

    __slots__ = (
        "name", "pid", "num_gpus", "kv", "does_prefill", "does_decode",
        "prefill_queue", "entry_queue", "active", "active_ctx", "busy",
        "current_kind", "current_batch", "step_start", "_concurrent_cap",
        "base_gpus", "base_cap", "base_blocks", "step_epoch",
    )

    def __init__(
        self,
        name: str,
        pid: int,
        num_gpus: int,
        kv: PagedKVPool,
        does_prefill: bool,
        does_decode: bool,
    ) -> None:
        self.name = name
        self.pid = pid  # trace process id
        self.num_gpus = num_gpus
        self.kv = kv
        self.does_prefill = does_prefill
        self.does_decode = does_decode
        self.prefill_queue: deque[Request] = deque()
        self.entry_queue: deque[Request] = deque()  # awaiting KV admission
        self.active: list[Request] = []  # sorted by (arrival, rid)
        self.active_ctx = 0  # sum of context tokens over `active`
        self.busy = False
        self.current_kind: str | None = None
        self.current_batch: list[Request] = []
        self.step_start = 0.0
        # Fault-injection baseline: healthy capacity the fault engine
        # scales from, and the epoch counter that invalidates the
        # in-flight _STEP_DONE event when a fault aborts a step.
        self.base_gpus = num_gpus
        self.base_cap = 0
        self.base_blocks = kv.config.total_blocks
        self.step_epoch = 0

    @property
    def decode_cap(self) -> int:
        """Concurrent decode streams this pool sustains."""
        return self._concurrent_cap

    def set_cap(self, cap: int) -> None:
        self._concurrent_cap = cap

    def add_active(self, request: Request) -> None:
        """Admit a request to the decode set, preserving scheduler order."""
        insort(self.active, request, key=_BY_ARRIVAL)
        self.active_ctx += request.prompt_tokens + request.generated
        request.decoding = True

    def remove_active(self, request: Request) -> None:
        """Drop a request from the decode set (O(log n) index lookup)."""
        index = bisect_left(self.active, _BY_ARRIVAL(request), key=_BY_ARRIVAL)
        del self.active[index]
        self.active_ctx -= request.prompt_tokens + request.generated
        request.decoding = False

    def select_batch(self, cap: int) -> tuple[list[Request], int]:
        """The step's decode batch and its total context tokens.

        Equivalent to ``select_decode_batch(self.active, cap)`` plus a
        fresh context-token sum, but O(batch): the active list is
        already in scheduler order and the full-set sum is maintained.
        """
        active = self.active
        if len(active) <= cap:
            return active.copy(), self.active_ctx
        batch = active[:cap]
        tokens = 0
        for r in batch:
            tokens += r.prompt_tokens + r.generated
        return batch, tokens


class ServingSimulator:
    """Seeded, deterministic request-level serving simulation.

    Args:
        config: The scenario.
        tracer: Optional span tracer; defaults to the no-op
            :data:`repro.obs.NULL_TRACER`.  Use one tracer per ``run``.
        metrics: Optional metrics registry; a fresh one is created per
            ``run`` when not supplied, and is available afterwards as
            ``self.metrics``.
        on_progress: Optional ``callback(done, total, sim_time)`` fired
            roughly every 5% of requests retired (finished or dropped),
            and once at the end.  Lets long runs surface bounded
            progress without the caller polling simulator internals.
    """

    def __init__(
        self,
        config: SimConfig,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        on_progress=None,
    ) -> None:
        self.config = config
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics_arg = metrics
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._mtp_rng = seeded_generator(config.seed, "mtp")
        self._windowed: WindowedMetrics | None = None
        self._on_progress = on_progress
        self._progress_total = config.workload.num_requests
        self._progress_every = max(1, self._progress_total // 20)

    def _make_pools(self) -> tuple[_Pool, ...]:
        cfg = self.config
        sched = cfg.scheduler

        def kv_for(num_gpus: int) -> PagedKVPool:
            if cfg.kv_blocks_per_gpu is not None:
                pool_cfg = KVPoolConfig(
                    total_blocks=cfg.kv_blocks_per_gpu * num_gpus,
                    block_tokens=cfg.block_tokens,
                )
            else:
                serving = cfg.costs.serving
                pool_cfg = kv_pool_blocks(
                    serving.model,
                    serving.gpu,
                    num_gpus,
                    serving.ep_degree,
                    block_tokens=cfg.block_tokens,
                    weight_dtype=serving.weight_dtype,
                )
            return PagedKVPool(pool_cfg)

        if cfg.mode == COLOCATED:
            gpus = cfg.prefill_gpus + cfg.decode_gpus
            pool = _Pool("pool", 1, gpus, kv_for(gpus), True, True)
            pool.set_cap(sched.max_concurrent_per_gpu * gpus)
            pool.base_cap = pool.decode_cap
            return (pool,)
        prefill = _Pool("prefill", 1, cfg.prefill_gpus, kv_for(cfg.prefill_gpus), True, False)
        prefill.set_cap(0)
        decode = _Pool("decode", 2, cfg.decode_gpus, kv_for(cfg.decode_gpus), False, True)
        decode.set_cap(sched.max_concurrent_per_gpu * cfg.decode_gpus)
        decode.base_cap = decode.decode_cap
        return (prefill, decode)

    # -- event loop ------------------------------------------------------

    def run(self) -> SimReport:
        """Simulate the whole workload and aggregate the report."""
        cfg = self.config
        tracer = self.tracer
        metrics = self._metrics_arg if self._metrics_arg is not None else MetricsRegistry()
        self.metrics = metrics
        pools = self._make_pools()
        prefill_pool = pools[0]
        decode_pool = pools[-1]
        self._requests_pid = len(pools) + 1
        for pool in pools:
            tracer.process(pool.pid, f"pool:{pool.name}")
            tracer.thread(pool.pid, 0, "steps")
        tracer.process(self._requests_pid, "requests")

        # Calendar queue sized so an average bucket spans a fraction of
        # the mean interarrival gap — O(1) amortized push/pop at any
        # request count, with pop order identical to the old heapq
        # (pinned by the goldens and tests/test_calqueue.py).
        events = CalendarQueue(
            bucket_width=max(1e-6, 0.25 / cfg.workload.request_rate)
        )
        seq = 0

        def push(time: float, kind: int, payload: object) -> None:
            nonlocal seq
            events.push((time, kind, seq, payload))
            seq += 1

        # Fault schedule: serving-applicable events enter the same queue
        # as ordinary simulation events.  An absent/empty schedule adds
        # nothing, keeping the fault-free event sequence — and thus the
        # golden outputs — bit-identical.
        fault_events = (
            cfg.faults.for_kinds(_SERVING_FAULT_KINDS) if cfg.faults else ()
        )
        # Record mode keeps exact per-request state; fault runs imply it
        # because the degradation report needs per-request timelines.
        records_kept = cfg.record_requests or bool(fault_events)

        # Workload state stays in flat numpy columns; a Request object
        # exists only from its arrival event until it finishes (or is
        # dropped), so live object count tracks *active* requests.  Each
        # arrival pop feeds the next arrival push: arrivals are sorted
        # by time and fed in rid order, so every same-(time, kind) tie
        # keeps its relative sequence order and the pop order is
        # identical to pushing the whole stream up front.
        columns = generate_request_columns(
            cfg.workload, seeded_generator(cfg.seed, "workload")
        )
        total_requests = len(columns)
        all_requests: list[Request] | None = [] if records_kept else None
        next_arrival = 0

        def feed_arrival() -> None:
            nonlocal next_arrival
            request = columns.materialize(next_arrival)
            next_arrival += 1
            if all_requests is not None:
                all_requests.append(request)
            push(request.arrival, _ARRIVAL, request)

        feed_arrival()
        for event in fault_events:
            push(event.time, _FAULT, event)
        # Live telemetry: fold events into sim-time windows as they
        # happen (O(windows) memory).  None unless window_s was set, so
        # un-windowed runs skip every hook with one identity check.
        windowed = WindowedMetrics(cfg.window_s) if cfg.window_s is not None else None
        self._windowed = windowed
        self._active_faults = 0
        self._n_retries = 0
        self._n_retry_dropped = 0
        self._n_shed = 0
        self._n_evicted = 0
        self._n_steps_aborted = 0
        self._lost_tokens = 0

        finished: list[Request] = []
        dropped: list[int] = []  # rids only — drop records are counters
        # Event counters accumulate in plain ints; they flush into the
        # registry once at the end of the run (nothing reads them
        # mid-run, and per-event Counter.inc() calls are pure overhead).
        self._n_preemptions = 0
        self._n_decode_steps = 0
        self._n_prefill_batches = 0
        self._n_draft_attempts = 0
        self._n_draft_accepted = 0
        self._n_completed = 0
        self._n_dropped = 0
        self._batch_profile: dict[int, list] = {}
        # Streaming aggregation state: latency histograms plus running
        # sums over the sampled channels replace per-request lists.
        self._record_finished = finished if records_kept else None
        self._n_slo_met = 0
        self._tokens_generated = 0
        self._ttft_hist = Histogram("ttft")
        self._tpot_hist = Histogram("tpot")
        self._e2e_hist = Histogram("e2e")
        channel_samples = 0
        queue_sum = 0
        queue_max = 0
        kv_sum = 0.0
        kv_peak = 0.0
        if records_kept:
            queue_series = metrics.series(QUEUE_DEPTH)
            kv_series = metrics.series(KV_OCCUPANCY)
        else:
            queue_series = metrics.series(
                QUEUE_DEPTH, max_points=STREAM_TRACE_POINTS, mode="decimate"
            )
            kv_series = metrics.series(
                KV_OCCUPANCY, max_points=STREAM_TRACE_POINTS, mode="decimate"
            )
        queue_append = queue_series.samples.append
        kv_append = kv_series.samples.append
        total_blocks = sum(p.kv.config.total_blocks for p in pools)
        now = 0.0

        def sample_channels(t: float) -> None:
            nonlocal channel_samples, queue_sum, queue_max, kv_sum, kv_peak
            depth = 0
            used = 0
            for p in pools:
                depth += len(p.prefill_queue) + len(p.entry_queue)
                used += p.kv.used_blocks
            occupancy = used / total_blocks
            if records_kept:
                queue_append((t, depth))
                kv_append((t, occupancy))
            else:
                channel_samples += 1
                queue_sum += depth
                kv_sum += occupancy
                if depth > queue_max:
                    queue_max = depth
                if occupancy > kv_peak:
                    kv_peak = occupancy
                queue_series.record(t, depth)
                kv_series.record(t, occupancy)
            if windowed is not None:
                windowed.sample("queue_depth", t, depth)
                windowed.sample("kv_occupancy", t, occupancy)
            if tracer.enabled:
                for p in pools:
                    pool_depth = len(p.prefill_queue) + len(p.entry_queue)
                    pool_occ = p.kv.used_blocks / p.kv.config.total_blocks
                    tracer.counter("queue_depth", p.pid, t, {"requests": pool_depth})
                    tracer.counter("kv_occupancy", p.pid, t, {"fraction": pool_occ})
                    tracer.counter("active_streams", p.pid, t, {"requests": len(p.active)})

        while events:
            now, kind, _, payload = events.pop()
            if kind == _ARRIVAL:
                assert isinstance(payload, Request)
                if next_arrival < total_requests:
                    feed_arrival()
                if windowed is not None:
                    windowed.count("arrivals", now)  # offered load, pre-shed
                if self._active_faults and self._shed_arrival(
                    payload, now, pools, dropped
                ):
                    continue
                payload.queued_since = now
                prefill_pool.prefill_queue.append(payload)
                if tracer.enabled:
                    tracer.thread(self._requests_pid, payload.rid, f"req{payload.rid}")
            elif kind == _DECODE_ENTER:
                assert isinstance(payload, Request)
                decode_pool.entry_queue.append(payload)
            elif kind == _STEP_DONE:
                pool, epoch = payload
                if epoch != pool.step_epoch:
                    continue  # step was aborted by a fault; completion is stale
                self._finish_step(pool, now, pools, finished, push)
                sample_channels(now)
            elif kind == _FAULT:
                assert isinstance(payload, FaultEvent)
                self._apply_fault(payload, now, pools, dropped, push)
                sample_channels(now)
            elif kind == _REPAIR:
                self._apply_repair(payload, now)
                sample_channels(now)
            else:  # _RETRY: backoff elapsed, re-enter the prefill queue
                assert isinstance(payload, Request)
                payload.queued_since = now
                prefill_pool.prefill_queue.append(payload)
            for pool in pools:
                self._try_start(pool, now, pools, dropped, push)

        duration = now
        for name, value in (
            ("serving.preemptions", self._n_preemptions),
            ("serving.decode_steps", self._n_decode_steps),
            ("serving.prefill_batches", self._n_prefill_batches),
            ("serving.mtp_draft_attempts", self._n_draft_attempts),
            ("serving.mtp_draft_accepted", self._n_draft_accepted),
            ("serving.requests_completed", self._n_completed),
            ("serving.requests_dropped", self._n_dropped),
        ):
            metrics.counter(name).inc(value)
        degradation = None
        if fault_events:
            # Fault channels exist only on faulty runs, so fault-free
            # registries (and their snapshots) are untouched.
            for name, value in (
                ("serving.fault_retries", self._n_retries),
                ("serving.fault_retry_dropped", self._n_retry_dropped),
                ("serving.fault_shed", self._n_shed),
                ("serving.fault_evicted", self._n_evicted),
                ("serving.fault_steps_aborted", self._n_steps_aborted),
                ("serving.fault_lost_tokens", self._lost_tokens),
            ):
                metrics.counter(name).inc(value)
            degradation = build_degradation(
                all_requests,
                fault_events,
                cfg.slo,
                horizon=duration,
                admitted=total_requests,
                finished=self._n_completed,
                dropped=self._n_dropped,
                shed=self._n_shed,
                retry_dropped=self._n_retry_dropped,
                retries=self._n_retries,
                evicted=self._n_evicted,
                steps_aborted=self._n_steps_aborted,
                lost_tokens=self._lost_tokens,
            )
        windows = None
        alerts = None
        if windowed is not None:
            rollup = windowed.rollup()
            windows = tuple(rollup)
            if cfg.slo_rules:
                events = evaluate_slo(window_summaries(rollup), cfg.slo_rules)
                alert_dicts = [event.to_dict() for event in events]
                if degradation is not None:
                    annotate_alerts(alert_dicts, degradation.windows)
                # () when monitored but quiet; None only when unmonitored.
                alerts = tuple(alert_dicts)
                fired = sum(1 for a in alert_dicts if a["state"] == "fire")
                metrics.counter("serving.slo.alerts_fired").inc(fired)
                metrics.counter("serving.slo.alerts_resolved").inc(
                    len(alert_dicts) - fired
                )
                if tracer.enabled:
                    for a in alert_dicts:
                        tracer.instant(
                            f"slo_{a['state']}", "slo", pools[-1].pid, 0,
                            a["time"],
                            args={
                                "rule": a["rule"],
                                "value": a["value"],
                                "limit": a["limit"],
                            },
                        )
        if records_kept:
            report = build_report(
                finished,
                cfg.slo,
                duration,
                self._n_preemptions,
                self._n_decode_steps,
                self._n_prefill_batches,
                self._n_draft_attempts,
                self._n_draft_accepted,
                queue_series.samples,
                kv_series.samples,
                degradation=degradation,
                windows=windows,
                alerts=alerts,
            )
        else:
            report = build_streaming_report(
                completed=self._n_completed,
                slo_met=self._n_slo_met,
                tokens_generated=self._tokens_generated,
                ttft=self._ttft_hist,
                tpot=self._tpot_hist,
                e2e=self._e2e_hist,
                duration=duration,
                preemptions=self._n_preemptions,
                decode_steps=self._n_decode_steps,
                prefill_batches=self._n_prefill_batches,
                draft_attempts=self._n_draft_attempts,
                draft_accepted=self._n_draft_accepted,
                channel_samples=channel_samples,
                queue_sum=queue_sum,
                queue_max=queue_max,
                kv_sum=kv_sum,
                kv_peak=kv_peak,
                queue_trace=queue_series.samples,
                kv_trace=kv_series.samples,
                windows=windows,
                alerts=alerts,
            )
        self.decode_batch_profile = tuple(
            (batch, count, total / count)
            for batch, (count, total) in sorted(self._batch_profile.items())
        )
        self.dropped = tuple(dropped)
        self.finished_requests = tuple(finished)  # finish order; () when streaming
        return report

    # -- per-request trace helpers ---------------------------------------

    def _span(self, name: str, request: Request, start: float, end: float, **args) -> None:
        self.tracer.complete(
            name, "request", self._requests_pid, request.rid, start, end - start,
            args=args or None,
        )

    def _drop(self, request: Request, now: float, dropped: list[int]) -> None:
        dropped.append(request.rid)
        self._n_dropped += 1
        if self._windowed is not None:
            self._windowed.count("dropped", now)
        if self.tracer.enabled:
            self.tracer.instant(
                "drop", "request", self._requests_pid, request.rid, now,
                args={"context_tokens": request.context_tokens},
            )
        if self._on_progress is not None:
            self._progress(now)

    def _progress(self, now: float) -> None:
        """Fire the progress callback on every 5% of retired requests."""
        done = self._n_completed + self._n_dropped
        if done % self._progress_every == 0 or done == self._progress_total:
            self._on_progress(done, self._progress_total, now)

    # -- fault injection (repro.faults) ----------------------------------

    def _fault_pool(self, event: FaultEvent, pools: tuple[_Pool, ...]) -> _Pool:
        """Resolve a fault's victim pool (empty target → decode side)."""
        for pool in pools:
            if pool.name == event.target:
                return pool
        return pools[-1]

    def _emit_failed_gpus(self, pool: _Pool, now: float) -> None:
        down = pool.base_gpus - pool.num_gpus
        self.metrics.gauge(f"serving.failed_gpus.{pool.name}").set(down)
        if self.tracer.enabled:
            self.tracer.counter("failed_gpus", pool.pid, now, {"gpus": down})

    def _apply_fault(
        self,
        event: FaultEvent,
        now: float,
        pools: tuple[_Pool, ...],
        dropped: list[int],
        push,
    ) -> None:
        """Inject one gpu/node failure: abort the in-flight step, shrink
        capacity and KV, evict what no longer fits, schedule repair."""
        pool = self._fault_pool(event, pools)
        lost = min(event.gpus_lost, pool.num_gpus)
        prefill_pool = pools[0]
        if pool.busy:
            # The step dies with the hardware: its completion event is
            # invalidated via the epoch counter and its work is lost.
            batch, step_kind = pool.current_batch, pool.current_kind
            pool.busy = False
            pool.current_batch, pool.current_kind = [], None
            pool.step_epoch += 1
            self._n_steps_aborted += 1
            if step_kind == "prefill":
                # Partial prefill produced nothing durable: release the
                # batch's KV and put it back at the head of the queue.
                for request in reversed(batch):
                    pool.kv.free(request.rid)
                    request.kv_tokens = 0
                    request.queued_since = now
                    prefill_pool.prefill_queue.appendleft(request)
            # An aborted decode step emitted no tokens; its requests
            # stay active (their KV survives on the remaining GPUs) and
            # the eviction pass below trims them to the shrunken pool.
        if lost:
            pool.num_gpus -= lost
            pool.set_cap(pool.base_cap * pool.num_gpus // pool.base_gpus)
            pool.kv.resize(max(1, pool.base_blocks * pool.num_gpus // pool.base_gpus))
        # Evict newest-first until the survivors fit the degraded pool —
        # the same victim order as KV preemption, but through the retry
        # path (evicted work re-prefills after backoff).
        active = pool.active
        while active and (len(active) > pool.decode_cap or pool.kv.free_blocks < 0):
            victim = active.pop()
            pool.active_ctx -= victim.prompt_tokens + victim.generated
            victim.decoding = False
            pool.kv.free(victim.rid)
            victim.kv_tokens = 0
            self._fail_request(victim, now, dropped, push)
        self._active_faults += 1
        if math.isfinite(event.mttr):
            push(event.time + event.mttr, _REPAIR, (pool, lost))
        if self.tracer.enabled:
            self.tracer.instant(
                "fault", "fault", pool.pid, 0, now,
                args={"kind": event.kind, "gpus_lost": lost},
            )
        self._emit_failed_gpus(pool, now)

    def _apply_repair(self, payload: tuple[_Pool, int], now: float) -> None:
        """Return repaired capacity to service after its MTTR."""
        pool, lost = payload
        pool.num_gpus += lost
        pool.set_cap(pool.base_cap * pool.num_gpus // pool.base_gpus)
        pool.kv.resize(max(1, pool.base_blocks * pool.num_gpus // pool.base_gpus))
        self._active_faults -= 1
        if self.tracer.enabled:
            self.tracer.instant(
                "repair", "fault", pool.pid, 0, now, args={"gpus_restored": lost}
            )
        self._emit_failed_gpus(pool, now)

    def _fail_request(
        self, request: Request, now: float, dropped: list[int], push
    ) -> None:
        """An in-flight request lost its GPU: retry with exponential
        backoff until the budget runs out, then drop."""
        policy = self.config.recovery
        self._n_evicted += 1
        self._lost_tokens += request.generated
        request.retries += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "evict", "fault", self._requests_pid, request.rid, now,
                args={"retries": request.retries, "generated": request.generated},
            )
        if request.retries > policy.retry_budget:
            self._n_retry_dropped += 1
            self._drop(request, now, dropped)
            return
        self._n_retries += 1
        delay = policy.backoff_base * policy.backoff_factor ** (request.retries - 1)
        push(now + delay, _RETRY, request)

    def _shed_arrival(
        self,
        request: Request,
        now: float,
        pools: tuple[_Pool, ...],
        dropped: list[int],
    ) -> bool:
        """Degraded admission control: while a fault window is open,
        arrivals beyond the queue limit are shed at the door (FCFS makes
        the newest entrant the lowest-priority one)."""
        depth = 0
        for pool in pools:
            depth += len(pool.prefill_queue) + len(pool.entry_queue)
        if depth < self.config.recovery.degraded_queue_limit:
            return False
        self._n_shed += 1
        self._drop(request, now, dropped)
        return True

    # -- scheduling ------------------------------------------------------

    def _try_start(
        self,
        pool: _Pool,
        now: float,
        pools: tuple[_Pool, ...],
        dropped: list[int],
        push,
    ) -> None:
        if pool.busy or pool.num_gpus < 1:
            return
        cfg = self.config
        tracer = self.tracer
        self._admit_entrants(pool, now, dropped)
        if pool.does_prefill and pool.prefill_queue:
            decode_pool = pools[-1]
            inflight = len(decode_pool.active) + len(decode_pool.entry_queue)
            batch = form_prefill_batch(
                pool.prefill_queue, pool.kv, cfg.scheduler, inflight, decode_pool.decode_cap
            )
            if not batch:
                head = pool.prefill_queue[0]
                if (
                    not self._active_faults
                    and pool.kv.blocks_for(head.context_tokens + 1)
                    > pool.kv.config.total_blocks
                ):
                    # Larger than the whole pool: can never fit, drop it.
                    # (While a fault window is open the pool is shrunk —
                    # the head may fit again after repair, so it waits.)
                    self._drop(pool.prefill_queue.popleft(), now, dropped)
                    return self._try_start(pool, now, pools, dropped, push)
            if batch:
                tokens = sum(r.prompt_tokens + r.generated for r in batch)
                duration = cfg.costs.prefill_time(tokens, pool.num_gpus)
                pool.busy = True
                pool.current_kind = "prefill"
                pool.current_batch = batch
                pool.step_start = now
                self._n_prefill_batches += 1
                if tracer.enabled:
                    for request in batch:
                        self._span("queued", request, request.queued_since, now)
                push(now + duration, _STEP_DONE, (pool, pool.step_epoch))
                return
        if pool.does_decode and pool.active:
            batch, context_tokens = pool.select_batch(pool.decode_cap)
            per_device = max(1, math.ceil(len(batch) / (2 * pool.num_gpus)))
            mean_ctx = context_tokens / len(batch)
            bucket = max(1, math.ceil(mean_ctx / cfg.context_bucket)) * cfg.context_bucket
            duration = cfg.costs.decode_step_time(per_device, bucket)
            pool.busy = True
            pool.current_kind = "decode"
            pool.current_batch = batch
            pool.step_start = now
            self._n_decode_steps += 1
            profile = self._batch_profile.get(len(batch))
            if profile is None:
                self._batch_profile[len(batch)] = [1, duration]
            else:
                profile[0] += 1
                profile[1] += duration
            push(now + duration, _STEP_DONE, (pool, pool.step_epoch))

    def _admit_entrants(self, pool: _Pool, now: float, dropped: list[int]) -> None:
        kv = pool.kv
        while pool.entry_queue and len(pool.active) < pool.decode_cap:
            head = pool.entry_queue[0]
            if not kv.allocate(head.rid, head.context_tokens + 1):
                if kv.blocks_for(head.context_tokens + 1) > kv.config.total_blocks:
                    if self._active_faults:
                        break  # pool is shrunk; may fit again after repair
                    self._drop(pool.entry_queue.popleft(), now, dropped)
                    continue
                break
            pool.entry_queue.popleft()
            head.kv_tokens = kv.capacity_tokens(head.rid)
            head.decode_since = now
            pool.add_active(head)

    # -- step completion -------------------------------------------------

    def _finish_step(
        self,
        pool: _Pool,
        now: float,
        pools: tuple[_Pool, ...],
        finished: list[Request],
        push,
    ) -> None:
        cfg = self.config
        tracer = self.tracer
        batch, kind = pool.current_batch, pool.current_kind
        start = pool.step_start
        pool.busy = False
        pool.current_batch, pool.current_kind = [], None
        if kind == "prefill":
            if tracer.enabled:
                tracer.complete(
                    "prefill", "step", pool.pid, 0, start, now - start,
                    args={
                        "requests": len(batch),
                        "tokens": sum(r.prompt_tokens + r.generated for r in batch),
                    },
                )
            for request in batch:
                request.prefill_runs += 1
                if tracer.enabled:
                    self._span(
                        "prefill", request, start, now, tokens=request.prompt_tokens
                    )
                if request.generated == 0:
                    request.first_token_time = now
                    request.generated = 1
                if request.generated >= request.output_tokens:
                    self._finish_request(request, now, pool, finished, from_active=False)
                elif cfg.mode == COLOCATED:
                    request.decode_since = now
                    pool.add_active(request)
                else:
                    pool.kv.free(request.rid)  # cache migrates to decode pool
                    request.kv_tokens = 0
                    delay = cfg.costs.kv_transfer_time(request.context_tokens)
                    if tracer.enabled:
                        self._span(
                            "kv_transfer", request, now, now + delay,
                            tokens=request.context_tokens,
                        )
                    push(now + delay, _DECODE_ENTER, request)
            return
        # Decode step: emit tokens, grow KV, preempt on exhaustion.
        if tracer.enabled:
            tracer.complete(
                "decode_step", "step", pool.pid, 0, start, now - start,
                args={"batch": len(batch)},
            )
        mtp = cfg.costs.mtp
        mtp_enabled = mtp.enabled
        acceptance = mtp.acceptance_rate
        uniform = self._mtp_rng.uniform
        kv = pool.kv
        block_tokens = kv.config.block_tokens
        active = pool.active
        batch.sort(key=_BY_RID)  # rid order fixes the MTP draw sequence
        for request in batch:
            if not request.decoding:
                continue  # preempted earlier in this loop
            generated = request.generated
            output_tokens = request.output_tokens
            emit = 1
            if mtp_enabled and generated + 1 < output_tokens:
                self._n_draft_attempts += 1
                if uniform() < acceptance:
                    self._n_draft_accepted += 1
                    emit = 2
            new_generated = generated + emit
            if new_generated > output_tokens:
                new_generated = output_tokens
            pool.active_ctx += new_generated - generated
            request.generated = new_generated
            if new_generated >= output_tokens:
                pool.remove_active(request)
                self._finish_request(request, now, pool, finished, from_active=True)
                continue
            need = request.prompt_tokens + new_generated + 1
            if need <= request.kv_tokens:
                continue  # next token still fits in the held blocks
            while not kv.extend(request.rid, need):
                victim = active[-1]  # pick_preemption_victim: newest first
                kv.free(victim.rid)
                victim.kv_tokens = 0
                active.pop()
                pool.active_ctx -= victim.prompt_tokens + victim.generated
                victim.decoding = False
                self._n_preemptions += 1
                if tracer.enabled:
                    self._span(
                        "decode", victim, victim.decode_since, now,
                        tokens=victim.generated, preempted=True,
                    )
                    tracer.instant(
                        "preempt", "request", self._requests_pid, victim.rid, now,
                        args={"generated": victim.generated},
                    )
                target = pools[0]  # recompute re-runs prefill (front of queue)
                victim.queued_since = now
                target.prefill_queue.appendleft(victim)
                if victim is request:
                    break
            else:
                request.kv_tokens = -(-need // block_tokens) * block_tokens

    def _finish_request(
        self,
        request: Request,
        now: float,
        pool: _Pool,
        finished: list[Request],
        from_active: bool,
    ) -> None:
        request.finish_time = now
        pool.kv.free(request.rid)
        request.kv_tokens = 0
        if self._record_finished is not None:
            finished.append(request)
        else:
            # Streaming: fold the request into the run-level aggregates
            # and let the object die — nothing retains it past here.
            self._ttft_hist.observe(request.ttft)
            if request.has_tpot:
                self._tpot_hist.observe(request.tpot)
            self._e2e_hist.observe(request.e2e)
            self._tokens_generated += request.generated
            if self.config.slo.met_by(request):
                self._n_slo_met += 1
        self._n_completed += 1
        if self._on_progress is not None:
            self._progress(now)
        windowed = self._windowed
        if windowed is not None:
            windowed.count("finished", now)
            windowed.count("tokens", now, request.generated)
            if self.config.slo.met_by(request):
                windowed.count("slo_met", now)
            windowed.observe("ttft", now, request.ttft)
            if request.has_tpot:
                windowed.observe("tpot", now, request.tpot)
            windowed.observe("e2e", now, request.e2e)
        if self.tracer.enabled:
            if from_active and request.decode_since >= 0:
                self._span(
                    "decode", request, request.decode_since, now,
                    tokens=request.generated,
                )
            self.tracer.instant(
                "finish", "request", self._requests_pid, request.rid, now,
                args={"generated": request.generated},
            )
