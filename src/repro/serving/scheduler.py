"""Continuous-batching scheduler policies.

A pool's scheduling decisions are pure functions of its queues and KV
pool so they can be unit-tested without running the event loop:

* *prefill batch formation* — FCFS admission under a token budget and
  KV availability (admission control: a request whose cache cannot be
  allocated waits, creating backpressure instead of OOM).
* *decode batch selection* — all admitted requests up to the pool's
  concurrency cap (continuous batching: the batch re-forms every step).
* *preemption victim choice* — latest-arrival-first, the
  recompute-on-preemption policy of paged-attention engines: the newest
  request loses its blocks and re-enters the prefill queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .kvpool import PagedKVPool
from .workload import Request


@dataclass(frozen=True)
class SchedulerConfig:
    """Batching and admission knobs for one pool.

    Attributes:
        max_concurrent_per_gpu: Decode streams one GPU sustains across
            both interleaved micro-batches (2 x per-device batch cap).
        max_prefill_tokens: Token budget of one prefill batch.
        max_prefill_requests: Request cap of one prefill batch.
    """

    max_concurrent_per_gpu: int = 64
    max_prefill_tokens: int = 8192
    max_prefill_requests: int = 16

    def __post_init__(self) -> None:
        if min(
            self.max_concurrent_per_gpu,
            self.max_prefill_tokens,
            self.max_prefill_requests,
        ) < 1:
            raise ValueError("scheduler limits must be positive")


def form_prefill_batch(
    queue: deque[Request],
    kv: PagedKVPool,
    config: SchedulerConfig,
    decode_load: int,
    decode_cap: int,
) -> list[Request]:
    """Pop an FCFS prefill batch, allocating KV as admission control.

    Requests are admitted while the token budget, the request cap, the
    KV pool, and the downstream decode slots all have room.  Admission
    stops at the first request that does not fit (FCFS, no reordering —
    head-of-line blocking is part of what the simulator measures).
    """
    batch: list[Request] = []
    tokens = 0
    while queue and len(batch) < config.max_prefill_requests:
        head = queue[0]
        need = head.prompt_tokens + 1  # room for the first generated token
        if batch and tokens + head.prompt_tokens > config.max_prefill_tokens:
            break
        if decode_load + len(batch) >= decode_cap:
            break
        # Single allocate attempt: a False return is exactly the old
        # can_allocate pre-check failing, without computing the block
        # count twice per admitted request.
        if not kv.allocate(head.rid, need):
            break
        queue.popleft()
        head.kv_tokens = kv.capacity_tokens(head.rid)  # decode-step cursor
        batch.append(head)
        tokens += head.prompt_tokens
    return batch


def select_decode_batch(active: list[Request], cap: int) -> list[Request]:
    """The step's decode batch: oldest ``cap`` admitted requests.

    This is the *policy definition*; the simulator keeps each pool's
    active list pre-sorted by ``(arrival, rid)`` so the same batch is a
    plain prefix slice on the hot path (see ``_Pool.select_batch``).
    """
    if len(active) <= cap:
        return list(active)
    return sorted(active, key=lambda r: (r.arrival, r.rid))[:cap]


def pick_preemption_victim(active: list[Request]) -> Request:
    """Latest-arrival victim (ties broken by rid for determinism).

    With the pool's active list pre-sorted by ``(arrival, rid)`` the
    victim is simply the last element; this function states the policy
    for callers holding an unsorted list.
    """
    if not active:
        raise ValueError("no active request to preempt")
    return max(active, key=lambda r: (r.arrival, r.rid))
