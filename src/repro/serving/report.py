"""Simulation output: latency distributions, traces, goodput.

This is the payoff of request-level simulation over the closed forms in
:mod:`repro.inference`: not one steady-state TPOT but the full TTFT /
TPOT / end-to-end *distributions*, queue-depth and KV-occupancy traces,
and goodput under explicit SLOs — the quantities §2.3.1's
disaggregation argument is actually about (tail latency under bursts).

Reports are frozen dataclasses of plain floats/tuples, so two runs of a
seeded simulator can be compared with ``==`` to assert determinism.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..obs.metrics import Histogram
from .workload import Request

if TYPE_CHECKING:  # circular at runtime: repro.faults builds on this module
    from ..faults.report import DegradationReport


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of one latency metric (seconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def from_samples(samples: list[float]) -> "LatencyStats":
        """Compute the summary (zeros for an empty sample set)."""
        if not samples:
            return LatencyStats(0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(arr, [50, 95, 99])
        return LatencyStats(
            mean=float(arr.mean()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            max=float(arr.max()),
        )

    @staticmethod
    def from_histogram(hist: Histogram) -> "LatencyStats":
        """Summary from a streaming geometric-bucket histogram.

        Mean, count and max are exact (running aggregates); the
        percentiles carry the histogram's bounded relative error
        (≈1% at the default growth) — the streaming-mode trade that
        makes report memory independent of request count.
        """
        if hist.count == 0:
            return LatencyStats(0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencyStats(
            mean=hist.mean,
            p50=hist.percentile(50),
            p95=hist.percentile(95),
            p99=hist.percentile(99),
            max=hist.max,
        )


@dataclass(frozen=True)
class SLO:
    """Service-level objectives a request must meet to count as goodput."""

    ttft: float = 2.0
    tpot: float = 0.1

    def met_by(self, request: Request) -> bool:
        """Whether a completed request satisfied both objectives.

        Degenerate requests — a single generated token, so no
        inter-token gaps (``request.has_tpot`` is False) — have no
        TPOT to judge: the TPOT objective is vacuously met and only
        TTFT decides.  This is the explicit form of the previous
        accidental behavior (TPOT defaulted to 0.0, which always
        passed) and is pinned by ``tests/test_serving_report.py``.
        """
        tpot_ok = request.tpot <= self.tpot if request.has_tpot else True
        return request.ttft <= self.ttft and tpot_ok


@dataclass(frozen=True)
class SimReport:
    """Everything one simulation run measured."""

    # -- population ------------------------------------------------------
    completed: int
    preemptions: int
    duration: float
    tokens_generated: int
    # -- latency distributions ------------------------------------------
    ttft: LatencyStats
    tpot: LatencyStats
    e2e: LatencyStats
    # -- rates -----------------------------------------------------------
    throughput_tokens_per_s: float
    goodput_requests_per_s: float
    slo_attainment: float
    # -- dynamics --------------------------------------------------------
    mean_queue_depth: float
    max_queue_depth: int
    mean_kv_occupancy: float
    peak_kv_occupancy: float
    decode_steps: int
    prefill_batches: int
    mtp_acceptance_measured: float
    # -- traces (time, value) pairs; tuples so the report hashes/compares
    queue_depth_trace: tuple[tuple[float, int], ...]
    kv_occupancy_trace: tuple[tuple[float, float], ...]
    # -- fault injection (None unless a fault schedule touched the run) --
    degradation: "DegradationReport | None" = None
    # -- live telemetry (None unless SimConfig.window_s was set) ---------
    # windows: the mergeable rollup from repro.obs.windows (raw bucket
    # state, so cross-point rollups merge exactly); alerts: the SLO
    # monitor's fire/resolve timeline ([] = monitored but quiet).
    windows: tuple[dict, ...] | None = None
    alerts: tuple[dict, ...] | None = None


def report_asdict(report: SimReport) -> dict:
    """``dataclasses.asdict`` with the baseline shape preserved.

    Optional sections (``degradation``, ``windows``, ``alerts``) are
    stripped when ``None``, keeping the serialized report
    byte-identical to the goldens that predate each feature (and to
    CLI ``--json`` consumers): fault-free runs match pre-fault-engine
    output, un-windowed runs match pre-telemetry output.
    """
    payload = asdict(report)
    for optional in ("degradation", "windows", "alerts"):
        if payload.get(optional) is None:
            payload.pop(optional, None)
    return payload


def compact_record(
    report: SimReport,
    *,
    gpus: int | None = None,
    gpu_cost_per_hour: float | None = None,
) -> dict:
    """A flat, JSON-able summary record of one run.

    This is the per-point payload the sweep engine and the benchmark
    ablations share: every headline scalar (latency percentiles in
    display units, rates, dynamics), none of the O(requests) traces —
    small enough to cache per grid point and diff as a committed
    baseline.  Fault runs append the degradation totals under a
    ``"degradation"`` sub-dict.

    Passing ``gpus`` + ``gpu_cost_per_hour`` appends the objective-ready
    economics fields the co-design optimizer (:mod:`repro.optimize`)
    scores against, derived entirely from existing report data:

    * ``cost_per_token`` — ``gpus × $/h ÷ 3600 ÷ throughput`` ($/token;
      ``None`` when the run produced no tokens, which an objective
      treats as unscorable rather than infinitely cheap);
    * ``goodput_tokens_per_s`` — token throughput discounted by SLO
      attainment, the paper's "useful tokens" rate.

    Both are stripped when economics are not configured, so default
    payloads (goldens, cached sweep entries, BENCH baselines) stay
    byte-identical to pre-economics output.
    """
    ms = 1e3
    record = {
        "completed": report.completed,
        "preemptions": report.preemptions,
        "duration_s": report.duration,
        "tokens_generated": report.tokens_generated,
        "ttft_p50_ms": report.ttft.p50 * ms,
        "ttft_p99_ms": report.ttft.p99 * ms,
        "tpot_p50_ms": report.tpot.p50 * ms,
        "tpot_p99_ms": report.tpot.p99 * ms,
        "e2e_p50_s": report.e2e.p50,
        "e2e_p99_s": report.e2e.p99,
        "throughput_tokens_per_s": report.throughput_tokens_per_s,
        "goodput_requests_per_s": report.goodput_requests_per_s,
        "slo_attainment": report.slo_attainment,
        "mtp_acceptance_measured": report.mtp_acceptance_measured,
        "decode_steps": report.decode_steps,
        "prefill_batches": report.prefill_batches,
        "mean_queue_depth": report.mean_queue_depth,
        "max_queue_depth": report.max_queue_depth,
        "mean_kv_occupancy": report.mean_kv_occupancy,
        "peak_kv_occupancy": report.peak_kv_occupancy,
    }
    if gpu_cost_per_hour is not None:
        if gpus is None:
            raise ValueError("economics fields need both gpus and gpu_cost_per_hour")
        throughput = report.throughput_tokens_per_s
        record["cost_per_token"] = (
            gpus * gpu_cost_per_hour / 3600.0 / throughput if throughput > 0 else None
        )
        record["goodput_tokens_per_s"] = throughput * report.slo_attainment
    d = report.degradation
    if d is not None:
        record["degradation"] = {
            "dropped": d.dropped,
            "shed": d.shed,
            "retries": d.retries,
            "retry_dropped": d.retry_dropped,
            "evicted": d.evicted,
            "unserved": d.unserved,
            "lost_tokens": d.lost_tokens,
            "steps_aborted": d.steps_aborted,
            "accounted": d.accounted,
        }
    # Telemetry sections ride along only when windowing was configured,
    # so default sweep payloads (and their cached entries, goldens and
    # BENCH_*.json baselines) stay byte-identical.
    if report.windows is not None:
        record["windows"] = [dict(w) for w in report.windows]
    if report.alerts is not None:
        record["alerts"] = [dict(a) for a in report.alerts]
    return record


def build_report(
    finished: list[Request],
    slo: SLO,
    duration: float,
    preemptions: int,
    decode_steps: int,
    prefill_batches: int,
    draft_attempts: int,
    draft_accepted: int,
    queue_trace: list[tuple[float, int]],
    kv_trace: list[tuple[float, float]],
    degradation: "DegradationReport | None" = None,
    windows: tuple[dict, ...] | None = None,
    alerts: tuple[dict, ...] | None = None,
) -> SimReport:
    """Aggregate per-request records into a :class:`SimReport`.

    The TPOT distribution is built only from requests where TPOT is
    defined (two or more generated tokens); degenerate single-token
    requests would otherwise pull the percentiles toward an artificial
    0.0.  They still count toward completion, TTFT/E2E and goodput
    (see :meth:`SLO.met_by`).
    """
    finished = sorted(finished, key=lambda r: r.rid)
    tokens = sum(r.generated for r in finished)
    slo_met = sum(1 for r in finished if slo.met_by(r))
    queue_depths = [d for _, d in queue_trace]
    kv_levels = [v for _, v in kv_trace]
    return SimReport(
        completed=len(finished),
        preemptions=preemptions,
        duration=duration,
        tokens_generated=tokens,
        ttft=LatencyStats.from_samples([r.ttft for r in finished]),
        tpot=LatencyStats.from_samples([r.tpot for r in finished if r.has_tpot]),
        e2e=LatencyStats.from_samples([r.e2e for r in finished]),
        throughput_tokens_per_s=tokens / duration if duration > 0 else 0.0,
        goodput_requests_per_s=slo_met / duration if duration > 0 else 0.0,
        slo_attainment=slo_met / len(finished) if finished else 0.0,
        mean_queue_depth=float(np.mean(queue_depths)) if queue_depths else 0.0,
        max_queue_depth=max(queue_depths, default=0),
        mean_kv_occupancy=float(np.mean(kv_levels)) if kv_levels else 0.0,
        peak_kv_occupancy=max(kv_levels, default=0.0),
        decode_steps=decode_steps,
        prefill_batches=prefill_batches,
        mtp_acceptance_measured=draft_accepted / draft_attempts if draft_attempts else 0.0,
        queue_depth_trace=tuple(queue_trace),
        kv_occupancy_trace=tuple(kv_trace),
        degradation=degradation,
        windows=windows,
        alerts=alerts,
    )


def build_streaming_report(
    *,
    completed: int,
    slo_met: int,
    tokens_generated: int,
    ttft: Histogram,
    tpot: Histogram,
    e2e: Histogram,
    duration: float,
    preemptions: int,
    decode_steps: int,
    prefill_batches: int,
    draft_attempts: int,
    draft_accepted: int,
    channel_samples: int,
    queue_sum: float,
    queue_max: int,
    kv_sum: float,
    kv_peak: float,
    queue_trace: list[tuple[float, int]],
    kv_trace: list[tuple[float, float]],
    windows: tuple[dict, ...] | None = None,
    alerts: tuple[dict, ...] | None = None,
) -> SimReport:
    """Aggregate streaming run state into a :class:`SimReport`.

    The constant-memory counterpart of :func:`build_report`: counts,
    rates, means, maxima and KV/queue dynamics are exact (running
    integer/float aggregates over every event); only the latency
    *percentiles* are histogram estimates with bounded relative error.
    Traces are the decimated channels — full time span, bounded points.
    """
    return SimReport(
        completed=completed,
        preemptions=preemptions,
        duration=duration,
        tokens_generated=tokens_generated,
        ttft=LatencyStats.from_histogram(ttft),
        tpot=LatencyStats.from_histogram(tpot),
        e2e=LatencyStats.from_histogram(e2e),
        throughput_tokens_per_s=tokens_generated / duration if duration > 0 else 0.0,
        goodput_requests_per_s=slo_met / duration if duration > 0 else 0.0,
        slo_attainment=slo_met / completed if completed else 0.0,
        mean_queue_depth=queue_sum / channel_samples if channel_samples else 0.0,
        max_queue_depth=queue_max,
        mean_kv_occupancy=kv_sum / channel_samples if channel_samples else 0.0,
        peak_kv_occupancy=kv_peak,
        decode_steps=decode_steps,
        prefill_batches=prefill_batches,
        mtp_acceptance_measured=draft_accepted / draft_attempts if draft_attempts else 0.0,
        queue_depth_trace=tuple(queue_trace),
        kv_occupancy_trace=tuple(kv_trace),
        degradation=None,
        windows=windows,
        alerts=alerts,
    )
