"""Request-level discrete-event serving simulator (§2.3.1–§2.3.3).

The closed-form models in :mod:`repro.inference` give steady-state
TPOT/throughput; this subsystem simulates the dynamics they average
away — queueing under bursty arrivals, continuous-batch formation,
paged KV-cache pressure with preemption/recompute, prefill/decode
disaggregation, and MTP speculative decoding — producing TTFT/TPOT/E2E
percentile distributions, queue and KV-occupancy traces, and goodput
under SLOs.  Per-step costs are calibrated from the analytic rooflines
so the simulator's saturated steady state cross-validates against the
closed forms (pinned by ``tests/test_serving_sim.py``).
"""

from .calqueue import CalendarQueue
from .costmodel import MTPConfig, StepCostModel
from .kvpool import KVPoolConfig, PagedKVPool, kv_pool_blocks
from .report import (
    SLO,
    LatencyStats,
    SimReport,
    build_report,
    build_streaming_report,
    compact_record,
    report_asdict,
)
from .scheduler import (
    SchedulerConfig,
    form_prefill_batch,
    pick_preemption_victim,
    select_decode_batch,
)
from .simulator import (
    COLOCATED,
    DISAGGREGATED,
    KV_OCCUPANCY,
    QUEUE_DEPTH,
    ServingSimulator,
    SimConfig,
)
from .workload import (
    Request,
    RequestColumns,
    WorkloadSpec,
    generate_request_columns,
    generate_requests,
)

__all__ = [
    "CalendarQueue",
    "MTPConfig",
    "StepCostModel",
    "KVPoolConfig",
    "PagedKVPool",
    "kv_pool_blocks",
    "SLO",
    "LatencyStats",
    "SimReport",
    "build_report",
    "build_streaming_report",
    "compact_record",
    "report_asdict",
    "SchedulerConfig",
    "form_prefill_batch",
    "pick_preemption_victim",
    "select_decode_batch",
    "COLOCATED",
    "DISAGGREGATED",
    "KV_OCCUPANCY",
    "QUEUE_DEPTH",
    "ServingSimulator",
    "SimConfig",
    "Request",
    "RequestColumns",
    "WorkloadSpec",
    "generate_request_columns",
    "generate_requests",
]
