"""Calendar-queue event scheduler for the serving hot loop.

A discrete-event simulator at million-request scale spends a large
share of its time ordering future events.  A binary heap pays
O(log n) per operation with n the *total* pending-event count; a
calendar queue (R. Brown, CACM 1988) exploits the structure DES event
streams actually have — times are near-monotone and densely packed —
to make both operations amortized O(1): events hash into fixed-width
time buckets, and the simulation clock sweeps the buckets in order.

:class:`CalendarQueue` is the bucketed-time-wheel variant used by
:class:`repro.serving.simulator.ServingSimulator`:

* Future events append into per-bucket lists (``dict`` keyed by the
  absolute bucket index ``floor(time / width)``), so a push is one
  multiply, one dict probe and one append — no comparisons.
* A small heap of *bucket indices* finds the next non-empty bucket
  without scanning empty ones, so sparse regions (idle tails, long
  repair delays) cost O(log buckets), not O(span / width).
* The bucket at the simulation clock is heapified once (C-speed) and
  drained with ``heappop``; same-bucket pushes land directly in that
  heap, preserving order for events scheduled at the current instant.

Entries are plain ``(time, kind, seq, payload)`` tuples — the exact
shape the simulator previously fed to :mod:`heapq` — and the pop order
is **identical** to a global heap's ``(time, kind, seq)`` order for
*any* push/pop interleaving, not just monotone ones: a push that lands
at or before the current bucket goes straight into the live heap, so
it still sorts correctly against everything not yet popped.  That
equivalence is what lets the golden SimReports and trace SHA-256 pins
survive the swap bit-for-bit; ``tests/test_calqueue.py`` additionally
property-tests it against a ``heapq`` reference across seeded random
event streams, including same-timestamp ties broken by ``(kind, seq)``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """Bucketed time-wheel priority queue over ``(time, ...)`` tuples.

    Args:
        bucket_width: Seconds of simulated time per bucket.  Throughput
            is best when an average bucket holds O(1) events — width ≈
            the mean gap between *distinct* event times; the structure
            stays correct (just gradually degrades toward one big heap
            or a long index walk) for any positive width.
    """

    __slots__ = ("width", "_scale", "_buckets", "_heads", "_cur", "_cur_index")

    def __init__(self, bucket_width: float = 1.0) -> None:
        if not bucket_width > 0.0:
            raise ValueError("bucket_width must be positive")
        self.width = float(bucket_width)
        self._scale = 1.0 / self.width
        self._buckets: dict[int, list] = {}  # future bucket index -> entries
        self._heads: list[int] = []  # min-heap of future bucket indices
        self._cur: list = []  # heap of entries in the current bucket
        # Index of the bucket currently being drained.  Invariant: every
        # index in _heads is > _cur_index, so a pushed entry belongs to
        # the live heap iff its index is <= _cur_index.
        self._cur_index = -(2**63)

    def __len__(self) -> int:
        return len(self._cur) + sum(map(len, self._buckets.values()))

    def __bool__(self) -> bool:
        return bool(self._cur) or bool(self._heads)

    def push(self, entry: tuple) -> None:
        """Insert one ``(time, kind, seq, payload)`` entry."""
        index = int(entry[0] * self._scale)
        if index <= self._cur_index:
            # Lands in (or before) the bucket being drained: keep it in
            # the live heap so it sorts against the not-yet-popped tail.
            heappush(self._cur, entry)
            return
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            heappush(self._heads, index)
        else:
            bucket.append(entry)

    def pop(self) -> tuple:
        """Remove and return the minimum entry by ``(time, kind, seq)``."""
        cur = self._cur
        heads = self._heads
        while True:
            if cur and (not heads or self._cur_index < heads[0]):
                return heappop(cur)
            if not heads:
                raise IndexError("pop from an empty CalendarQueue")
            # cur is empty here: every index in _heads exceeds
            # _cur_index, so while cur holds entries they are the min.
            index = heappop(heads)
            bucket = self._buckets.pop(index)
            heapify(bucket)
            self._cur = cur = bucket
            self._cur_index = index
