"""Per-step costs for the serving simulator, calibrated from the
analytical models.

The calibration contract (pinned by ``tests/test_serving_sim.py``):

* A decode step over per-device micro-batch ``b`` costs exactly the
  analytic TPOT of :func:`repro.inference.serving.serving_point` at
  batch ``b`` — MLA/MoE rooflines plus EP dispatch/combine under dual
  micro-batch overlap.  A saturated simulated decode pool therefore
  reproduces the closed-form throughput-latency frontier, while an
  unsaturated one exposes the queueing behaviour the closed form
  averages away.
* A prefill batch costs its forward FLOPs against the pool's aggregate
  compute at :func:`repro.inference.disagg.prefill_gpus_needed`'s
  efficiency, so the simulator's prefill capacity matches the §2.3.1
  pool-sizing model.
* MTP speculative decoding scales the step by the same
  ``1 + draft_overhead`` and accepts drafts at the same rate as
  :func:`repro.inference.speculative.mtp_speedup`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..comm.overlap import layer_time
from ..inference.serving import ServingConfig, decode_stage_times
from ..model.flops import forward_flops_per_token
from ..model.kvcache import kv_cache_bytes_per_token


@dataclass(frozen=True)
class MTPConfig:
    """Speculative-decoding knobs (§2.3.3)."""

    enabled: bool = False
    acceptance_rate: float = 0.85
    draft_overhead: float = 1.0 / 61.0

    def __post_init__(self) -> None:
        if not 0 <= self.acceptance_rate <= 1:
            raise ValueError("acceptance_rate must be in [0, 1]")
        if self.draft_overhead < 0:
            raise ValueError("draft_overhead must be non-negative")


@dataclass
class StepCostModel:
    """Step-time oracle shared by every pool in one simulation.

    Attributes:
        serving: The decode-side scenario (model, GPU, NIC, EP degree).
        prefill_efficiency: Achieved FLOP fraction during prefill
            (§2.3.1's pool-sizing default).
        mtp: Speculative-decoding configuration.
        kv_transfer_bandwidth: Prefill-to-decode KV migration bandwidth
            per request stream (disaggregated mode), bytes/s.
        kv_dtype: KV-cache precision for migration sizing.
    """

    serving: ServingConfig = field(default_factory=ServingConfig)
    prefill_efficiency: float = 0.5
    mtp: MTPConfig = field(default_factory=MTPConfig)
    kv_transfer_bandwidth: float = 40e9
    kv_dtype: str = "bf16"

    def __post_init__(self) -> None:
        if not 0 < self.prefill_efficiency <= 1:
            raise ValueError("prefill_efficiency must be in (0, 1]")
        if self.kv_transfer_bandwidth <= 0:
            raise ValueError("kv_transfer_bandwidth must be positive")
        self._decode_cache: dict[tuple[int, int], float] = {}
        self._kv_bytes_per_token: float | None = None

    def decode_step_time(self, per_device_batch: int, context_tokens: int) -> float:
        """One decode iteration (one token per request) at this load.

        Matches the analytic ``serving_point(...).tpot``:
        ``num_layers x 2 x max(compute, comm)`` under dual micro-batch
        overlap, with the MTP verification overhead applied on top when
        speculation is on.
        """
        key = (per_device_batch, context_tokens)
        base = self._decode_cache.get(key)
        if base is None:
            config = self.serving
            if context_tokens != config.context_tokens:
                config = replace(config, context_tokens=context_tokens)
            stages = decode_stage_times(config, per_device_batch)
            slot = layer_time(stages, dual_microbatch=True)
            base = config.model.num_layers * 2.0 * slot
            self._decode_cache[key] = base
        if self.mtp.enabled:
            return base * (1.0 + self.mtp.draft_overhead)
        return base

    def prefill_time(self, total_prompt_tokens: int, num_gpus: int) -> float:
        """Process a prefill batch of ``total_prompt_tokens`` tokens."""
        if total_prompt_tokens < 1 or num_gpus < 1:
            raise ValueError("prefill needs positive tokens and GPUs")
        model = self.serving.model
        flops = (
            forward_flops_per_token(model, total_prompt_tokens, causal=True)
            * total_prompt_tokens
        )
        return flops / (num_gpus * self.serving.gpu.bf16_flops * self.prefill_efficiency)

    def kv_transfer_time(self, context_tokens: int) -> float:
        """Migrate one request's KV cache from prefill to decode pool."""
        kv_bytes = self._kv_bytes_per_token
        if kv_bytes is None:
            kv_bytes = kv_cache_bytes_per_token(self.serving.model, self.kv_dtype)
            self._kv_bytes_per_token = kv_bytes
        return context_tokens * kv_bytes / self.kv_transfer_bandwidth
