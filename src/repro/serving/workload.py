"""Request-level workload generation for the serving simulator.

The closed-form models in :mod:`repro.inference` take a mean arrival
rate and mean lengths; the simulator needs individual requests.  Two
arrival processes are supported:

* ``poisson`` — exponential interarrivals at the configured rate.
* ``bursty`` — a hyperexponential mixture: a fraction of interarrival
  gaps is drawn from a much faster exponential, producing the bursty
  traffic (CV > 1) that §2.3.1 argues disaggregation must absorb.

Prompt and output lengths are lognormal with configurable mean and
coefficient of variation (CV 0 pins the length exactly, which the
calibration tests use).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(eq=False, slots=True)
class Request:
    """One request moving through the simulated serving system.

    The first three fields are the workload; the rest is runtime state
    mutated by the simulator.

    Requests have *identity* semantics (``eq=False``): batch membership
    and removal compare object identity instead of every dataclass
    field, which keeps the simulator's per-step bookkeeping O(1) per
    request — field-wise ``__eq__`` was the single hottest function in
    profiles of large runs.  Two requests are equal iff they are the
    same object; ``rid`` is the stable key for reports and traces.
    """

    rid: int
    arrival: float
    prompt_tokens: int
    output_tokens: int
    # -- runtime state --------------------------------------------------
    first_token_time: float = -1.0
    finish_time: float = -1.0
    generated: int = 0
    prefill_runs: int = 0  # >1 means the request was preempted and recomputed
    retries: int = 0  # fault-eviction requeues consumed (bounded by the retry budget)
    queued_since: float = -1.0  # start of the current wait (arrival or requeue)
    decode_since: float = -1.0  # when the request last entered a decode pool
    # -- hot-path caches (owned by the pool the request sits in) --------
    kv_tokens: int = 0  # context tokens covered by currently held KV blocks
    decoding: bool = False  # member of a pool's active decode set

    @property
    def ttft(self) -> float:
        """Time to first token (valid once prefill completed)."""
        return self.first_token_time - self.arrival

    @property
    def e2e(self) -> float:
        """End-to-end latency (valid once finished)."""
        return self.finish_time - self.arrival

    @property
    def has_tpot(self) -> bool:
        """Whether TPOT is defined: a request with fewer than two
        generated tokens has no inter-token gaps to average."""
        return self.generated >= 2

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first (valid once done).

        Degenerate single-token requests (``has_tpot`` is False) return
        0.0 by definition; reports exclude them from TPOT distributions
        and treat the TPOT objective as vacuously met.
        """
        if not self.has_tpot:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.generated - 1)

    @property
    def context_tokens(self) -> int:
        """Current KV footprint in tokens (prompt plus generated)."""
        return self.prompt_tokens + self.generated


@dataclass(frozen=True)
class WorkloadSpec:
    """A synthetic serving workload.

    Attributes:
        request_rate: Mean arrival rate, requests/s.
        num_requests: Requests to generate.
        prompt_mean / prompt_cv: Lognormal prompt-length parameters.
        output_mean / output_cv: Lognormal output-length parameters.
        arrival: ``"poisson"`` or ``"bursty"``.
        burst_fraction: Fraction of gaps drawn from the fast phase
            (bursty only).
        burst_factor: Rate multiplier of the fast phase (bursty only).
    """

    request_rate: float = 2.0
    num_requests: int = 200
    prompt_mean: int = 1024
    prompt_cv: float = 0.5
    output_mean: int = 256
    output_cv: float = 0.5
    arrival: str = "poisson"
    burst_fraction: float = 0.9
    burst_factor: float = 20.0

    def __post_init__(self) -> None:
        if self.request_rate <= 0 or self.num_requests < 1:
            raise ValueError("request_rate and num_requests must be positive")
        if self.prompt_mean < 1 or self.output_mean < 1:
            raise ValueError("mean lengths must be at least 1 token")
        if self.prompt_cv < 0 or self.output_cv < 0:
            raise ValueError("length CVs must be non-negative")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError("arrival must be 'poisson' or 'bursty'")
        if not 0 < self.burst_fraction < 1 or self.burst_factor <= 1:
            raise ValueError("need 0 < burst_fraction < 1 and burst_factor > 1")


#: Per-draw batch size for :func:`generate_request_columns`.  Bounds the
#: transient numpy buffers during generation; the flat output columns
#: themselves are ~24 bytes/request regardless of chunking.
DEFAULT_CHUNK_REQUESTS = 65_536


@dataclass(frozen=True, slots=True)
class RequestColumns:
    """Flat per-request workload state, indexed by rid.

    Three parallel numpy columns replace the up-front ``list[Request]``
    at the engine boundary: ~24 bytes per request instead of a ~400-byte
    Python object, and the simulator materializes a :class:`Request`
    only when its arrival fires (O(active) live objects, not O(total)).
    """

    arrivals: np.ndarray  # float64, ascending (cumsum of positive gaps)
    prompts: np.ndarray  # int64 prompt lengths, >= 1
    outputs: np.ndarray  # int64 output lengths, >= 1

    def __len__(self) -> int:
        return self.arrivals.shape[0]

    def materialize(self, rid: int) -> Request:
        """Build the mutable runtime object for one request."""
        return Request(
            rid=rid,
            arrival=float(self.arrivals[rid]),
            prompt_tokens=int(self.prompts[rid]),
            output_tokens=int(self.outputs[rid]),
        )


def _fill_chunked(out: np.ndarray, draw, chunk: int) -> None:
    """Fill ``out`` with ``draw(m)`` batches of at most ``chunk`` draws.

    numpy Generators produce identical streams whether a distribution is
    sampled once with ``size=n`` or in consecutive slices summing to n,
    so chunking is invisible to the result — only the transient buffer
    size changes.  Pinned by ``tests/test_workload_chunking.py``.
    """
    n = out.shape[0]
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        out[start:stop] = draw(stop - start)


def _lognormal_lengths(
    rng: np.random.Generator, mean: int, cv: float, n: int, chunk: int
) -> np.ndarray:
    if cv == 0:
        return np.full(n, mean, dtype=np.int64)
    sigma2 = math.log1p(cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    sigma = math.sqrt(sigma2)
    out = np.empty(n, dtype=np.int64)
    _fill_chunked(
        out,
        lambda m: np.maximum(1, np.rint(rng.lognormal(mean=mu, sigma=sigma, size=m))),
        chunk,
    )
    return out


def _interarrival_gaps(
    rng: np.random.Generator, spec: WorkloadSpec, chunk: int
) -> np.ndarray:
    n = spec.num_requests
    gaps = np.empty(n, dtype=np.float64)
    if spec.arrival == "poisson":
        _fill_chunked(gaps, lambda m: rng.exponential(1.0 / spec.request_rate, size=m), chunk)
        return gaps
    # Hyperexponential: fraction p of gaps at rate k*r_slow, the rest at
    # r_slow, with r_slow chosen so the mixture mean is 1/request_rate.
    # Draw order (all uniforms, then all exponentials) matches the
    # historical eager path so seeds reproduce byte-identical streams.
    p, k = spec.burst_fraction, spec.burst_factor
    rate_slow = spec.request_rate * (p / k + (1.0 - p))
    fast = np.empty(n, dtype=bool)
    _fill_chunked(fast, lambda m: rng.uniform(size=m) < p, chunk)
    _fill_chunked(gaps, lambda m: rng.exponential(1.0 / rate_slow, size=m), chunk)
    gaps[fast] /= k
    return gaps


def generate_request_columns(
    spec: WorkloadSpec,
    rng: np.random.Generator,
    chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
) -> RequestColumns:
    """Sample the request stream into flat columns (sorted by arrival).

    Draws happen in batches of at most ``chunk_requests`` so transient
    memory is bounded; the resulting columns are byte-identical to a
    single eager draw for the same seed.
    """
    if chunk_requests < 1:
        raise ValueError("chunk_requests must be at least 1")
    gaps = _interarrival_gaps(rng, spec, chunk_requests)
    arrivals = np.cumsum(gaps, out=gaps)
    prompts = _lognormal_lengths(
        rng, spec.prompt_mean, spec.prompt_cv, spec.num_requests, chunk_requests
    )
    outputs = _lognormal_lengths(
        rng, spec.output_mean, spec.output_cv, spec.num_requests, chunk_requests
    )
    return RequestColumns(arrivals=arrivals, prompts=prompts, outputs=outputs)


def generate_requests(spec: WorkloadSpec, rng: np.random.Generator) -> list[Request]:
    """Sample the request stream (sorted by arrival time).

    Eager convenience wrapper over :func:`generate_request_columns`;
    large runs should keep the columns and materialize lazily.
    """
    columns = generate_request_columns(spec, rng)
    return [columns.materialize(i) for i in range(len(columns))]
