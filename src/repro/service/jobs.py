"""Jobs: specs, lifecycle state machine, bounded queue + worker pool.

A *job* is one sweep — a registered target plus a grid/point list —
submitted over HTTP and executed through :func:`repro.sweep.run_sweep`
on a worker.  The manager enforces explicit backpressure: at most
``queue_size`` jobs may wait while ``job_workers`` run; a submission
past that capacity raises :class:`ServiceBusy`, which the HTTP layer
turns into ``429`` + ``Retry-After`` (the service never queues
unboundedly — the paper's goodput lesson applied to the service
itself).

Each job runs inside a thread from the event loop's default executor;
the sweep engine's ``on_point`` hook pushes every settled point back
onto the loop via ``call_soon_threadsafe``, where it is journaled
(:class:`repro.service.state.StateStore`) and published to SSE
subscribers (:class:`repro.service.events.EventBroker`).  Because the
sweep writes every evaluated point to the shared
:class:`repro.sweep.SweepCache` *before* reporting it, a killed server
can always be restarted: non-terminal journaled jobs are re-enqueued
and re-run, and every point that completed before the kill is a cache
hit — resume recomputes only unevaluated points.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

from ..faults import FaultSchedule
from ..obs import MetricsRegistry, Tracer, parse_slo_rules
from ..sweep import (
    PointResult,
    SweepCache,
    SweepInterrupted,
    SweepSpec,
    grid,
    run_sweep,
    target_names,
)
from ..sweep.spec import canonical_config
from .events import EventBroker
from .state import StateStore

__all__ = ["Job", "JobManager", "JobSpec", "ServiceBusy", "TERMINAL_STATES"]

TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceBusy(Exception):
    """Queue + worker pool at capacity; retry after ``retry_after`` s."""

    def __init__(self, retry_after: float) -> None:
        super().__init__("job queue at capacity")
        self.retry_after = retry_after


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission (the journaled, replayable form)."""

    target: str
    points: tuple[dict, ...]
    base: dict = field(default_factory=dict)
    seed: int = 0
    workers: int = 1
    name: str | None = None

    @classmethod
    def from_payload(cls, payload: dict, *, max_workers: int = 4) -> "JobSpec":
        """Validate a ``POST /jobs`` body; raises ``ValueError`` with a
        client-facing message on anything malformed.

        Accepted keys: ``target`` (required, registered sweep target),
        ``grid`` (axes dict) and/or ``points`` (explicit config list),
        ``base``, ``seed``, ``workers`` (clamped to ``max_workers``),
        ``name``, ``faults`` (a :class:`repro.faults.FaultSchedule`
        JSON payload, validated then folded into ``base``),
        ``recovery`` (kwargs dict, folded likewise), and the telemetry
        pair ``window_s`` / ``slo`` (rules for
        :func:`repro.obs.parse_slo_rules`, canonicalized then folded
        into ``base`` so journal and cache keys are client-order
        independent).
        """
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        unknown = set(payload) - {
            "target", "grid", "points", "base", "seed", "workers", "name",
            "faults", "recovery", "window_s", "slo",
        }
        if unknown:
            raise ValueError(f"unknown job spec keys: {sorted(unknown)}")
        target = payload.get("target")
        if not isinstance(target, str) or target not in target_names():
            raise ValueError(
                f"unknown target {target!r} (registered: {', '.join(target_names())})"
            )
        points: list[dict] = []
        axes = payload.get("grid")
        if axes is not None:
            if not isinstance(axes, dict) or not axes:
                raise ValueError("'grid' must be a non-empty object of axes")
            points.extend(grid(**axes))
        for point in payload.get("points", []):
            if not isinstance(point, dict):
                raise ValueError("'points' entries must be objects")
            points.append(point)
        if not points:
            raise ValueError("a job needs a 'grid' and/or a 'points' list")
        base = payload.get("base", {})
        if not isinstance(base, dict):
            raise ValueError("'base' must be an object")
        base = dict(base)
        faults = payload.get("faults")
        if faults is not None:
            if not isinstance(faults, dict):
                raise ValueError("'faults' must be a FaultSchedule JSON object")
            try:
                schedule = FaultSchedule.from_json(faults)
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"bad fault schedule: {exc}") from exc
            # Store the canonical re-serialized form so the journal and
            # cache keys never depend on client-side key ordering.
            base["faults"] = json.loads(schedule.to_json())
        recovery = payload.get("recovery")
        if recovery is not None:
            if not isinstance(recovery, dict):
                raise ValueError("'recovery' must be an object of kwargs")
            base["recovery"] = recovery
        window_s = payload.get("window_s")
        if window_s is not None:
            if not isinstance(window_s, (int, float)) or isinstance(
                window_s, bool
            ) or window_s <= 0:
                raise ValueError("'window_s' must be a positive number")
            base["window_s"] = window_s
        slo = payload.get("slo")
        if slo is not None:
            if not isinstance(slo, list) or not slo:
                raise ValueError("'slo' must be a non-empty list of rules")
            if "window_s" not in base:
                raise ValueError("'slo' rules require 'window_s'")
            try:
                rules = parse_slo_rules(slo)
            except ValueError as exc:
                raise ValueError(f"bad SLO rules: {exc}") from exc
            base["slo"] = [rule.to_dict() for rule in rules]
        try:
            for point in points:
                canonical_config({**base, **point})
        except TypeError as exc:
            raise ValueError(str(exc)) from exc
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise ValueError("'workers' must be a positive integer")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise ValueError("'name' must be a string")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError("'seed' must be an integer")
        return cls(
            target=target,
            points=tuple(points),
            base=base,
            seed=seed,
            workers=min(workers, max_workers),
            name=name,
        )

    def to_payload(self) -> dict:
        """The journal form; :meth:`from_journal` round-trips it."""
        return {
            "target": self.target,
            "points": list(self.points),
            "base": self.base,
            "seed": self.seed,
            "workers": self.workers,
            "name": self.name,
        }

    @classmethod
    def from_journal(cls, payload: dict) -> "JobSpec":
        return cls(
            target=payload["target"],
            points=tuple(payload["points"]),
            base=payload.get("base", {}),
            seed=payload.get("seed", 0),
            workers=payload.get("workers", 1),
            name=payload.get("name"),
        )

    def sweep_spec(self) -> SweepSpec:
        return SweepSpec(
            target=self.target,
            points=self.points,
            base=self.base,
            seed=self.seed,
            name=self.name,
        )


class Job:
    """One submitted sweep and its live state."""

    def __init__(
        self, job_id: str, spec: JobSpec, *, buffer: int = 256, resumed: bool = False
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.resumed = resumed
        self.created = time.time()
        self.total = len(spec.points)
        self.done_points = 0
        self.evaluated = 0
        self.cache_hits = 0
        self.errors = 0
        self.error: str | None = None  # terminal failure, not per-point
        self.broker = EventBroker(buffer=buffer)
        self.cancel_requested = threading.Event()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> dict:
        """The ``GET /jobs`` / ``GET /jobs/{id}`` summary."""
        return {
            "id": self.id,
            "name": self.spec.name,
            "target": self.spec.target,
            "state": self.state,
            "resumed": self.resumed,
            "created": self.created,
            "seed": self.spec.seed,
            "workers": self.spec.workers,
            "total": self.total,
            "done": self.done_points,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            **({"error": self.error} if self.error else {}),
        }

    def _counts(self) -> dict:
        return {
            "job": self.id,
            "done": self.done_points,
            "total": self.total,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
        }


class JobManager:
    """Bounded queue + worker pool over the sweep engine."""

    def __init__(
        self,
        *,
        state: StateStore,
        cache: SweepCache | None,
        queue_size: int = 8,
        job_workers: int = 2,
        max_sweep_workers: int = 4,
        metrics_interval: float = 1.0,
        client_buffer: int = 256,
        retry_after: float = 2.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.state = state
        self.cache = cache
        self.queue_size = queue_size
        self.job_workers = job_workers
        self.max_sweep_workers = max_sweep_workers
        self.metrics_interval = metrics_interval
        self.client_buffer = client_buffer
        self.retry_after = retry_after
        self.registry = registry if registry is not None else MetricsRegistry()
        self.jobs: dict[str, Job] = {}
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._seq = 0
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._restore()
        for _ in range(self.job_workers):
            self._tasks.append(asyncio.create_task(self._worker()))

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()

    # -- submission / capacity -------------------------------------------

    @property
    def in_flight(self) -> int:
        """Jobs currently queued or running (the bounded resource)."""
        return sum(1 for job in self.jobs.values() if not job.terminal)

    @property
    def capacity(self) -> int:
        return self.queue_size + self.job_workers

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a new job, or raise :class:`ServiceBusy` at capacity."""
        if self.in_flight >= self.capacity:
            self.registry.counter("service.jobs.rejected").inc()
            raise ServiceBusy(self.retry_after)
        job = self._new_job(spec)
        self.state.append(job.id, {"kind": "submit", "spec": spec.to_payload()})
        self._enqueue(job)
        self.registry.counter("service.jobs.submitted").inc()
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; idempotent once terminal."""
        job = self.jobs[job_id]
        if job.terminal:
            return job
        job.cancel_requested.set()
        if job.state == "queued":
            # The worker will skip it when popped; settle it right away.
            self._finalize(job, "cancelled")
        return job

    def _new_job(self, spec: JobSpec, *, resumed: bool = False) -> Job:
        self._seq += 1
        job = Job(
            f"j{self._seq:04d}", spec, buffer=self.client_buffer, resumed=resumed
        )
        self.jobs[job.id] = job
        return job

    def _enqueue(self, job: Job) -> None:
        job.state = "queued"
        self._queue.put_nowait(job)
        self.registry.gauge("service.jobs.in_flight").set(self.in_flight)

    # -- restart / resume ------------------------------------------------

    def _restore(self) -> None:
        """Rebuild jobs from journals; re-enqueue interrupted ones.

        Resume bypasses the capacity check on purpose — work the server
        already accepted is never shed by a restart.
        """
        for job_id, records in sorted(self.state.load().items()):
            submit = next((r for r in records if r.get("kind") == "submit"), None)
            if submit is None:
                continue
            try:
                spec = JobSpec.from_journal(submit["spec"])
            except (KeyError, TypeError):
                continue
            terminal = next(
                (
                    r["state"]
                    for r in reversed(records)
                    if r.get("kind") == "status" and r.get("state") in TERMINAL_STATES
                ),
                None,
            )
            self._seq = max(self._seq, _job_seq(job_id))
            job = Job(job_id, spec, buffer=self.client_buffer, resumed=terminal is None)
            self.jobs[job.id] = job
            if terminal is not None:
                job.state = terminal
                summary = next(
                    (r for r in reversed(records) if r.get("kind") == "summary"), {}
                )
                job.done_points = summary.get("done", job.total)
                job.evaluated = summary.get("evaluated", 0)
                job.cache_hits = summary.get("cache_hits", 0)
                job.errors = summary.get("errors", 0)
                job.error = summary.get("error")
                # Seed the broker so a late SSE client sees the ending.
                job.broker.publish(terminal, {"state": terminal, **job._counts()})
                continue
            self.state.append(job.id, {"kind": "resume"})
            self.registry.counter("service.jobs.resumed").inc()
            self._enqueue(job)

    # -- execution -------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            if job.terminal:  # cancelled while queued
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None
        loop = self._loop
        self._set_state(job, "running")
        pump = asyncio.create_task(self._metrics_pump(job))
        cache = self.cache

        def on_point(point: PointResult) -> None:
            loop.call_soon_threadsafe(self._point_settled, job, point)

        def blocking_run():
            return run_sweep(
                job.spec.sweep_spec(),
                workers=min(job.spec.workers, self.max_sweep_workers),
                cache=cache,
                tracer=job.tracer,
                metrics=job.metrics,
                strict=False,
                on_point=on_point,
                interrupt=job.cancel_requested.is_set,
            )

        try:
            result = await loop.run_in_executor(None, blocking_run)
        except SweepInterrupted:
            self._finalize(job, "cancelled")
        except Exception as exc:  # noqa: BLE001 - job-level failure
            job.error = f"{type(exc).__name__}: {exc}"
            self._finalize(job, "failed")
        else:
            self.state.report_path(job.id).write_text(result.to_report_json())
            job.tracer.write(self.state.trace_path(job.id))
            self._finalize(job, "done")
        finally:
            pump.cancel()

    async def _metrics_pump(self, job: Job) -> None:
        """Periodic droppable SSE frames of the job's obs registry."""
        while True:
            await asyncio.sleep(self.metrics_interval)
            job.broker.publish(
                "metrics",
                {
                    "job": job.id,
                    "metrics": job.metrics.snapshot(),
                    "sse_dropped": job.broker.dropped,
                    **job._counts(),
                },
                droppable=True,
            )

    # -- event-loop-side bookkeeping -------------------------------------

    def _point_settled(self, job: Job, point: PointResult) -> None:
        job.done_points += 1
        if point.cached:
            job.cache_hits += 1
            event = "cache_hit"
        elif point.error is not None:
            job.errors += 1
            job.evaluated += 1
            event = "error"
        else:
            job.evaluated += 1
            event = "progress"
        record = {
            "kind": "point",
            "index": point.index,
            "key": point.key,
            "cached": point.cached,
            "elapsed": round(point.elapsed, 6),
        }
        if point.error is not None:
            record["error"] = point.error["type"]
        self.state.append(job.id, record)
        data = {
            "index": point.index,
            "config": point.config,
            "seed": point.seed,
            "key": point.key,
            "cached": point.cached,
            "elapsed": round(point.elapsed, 6),
            **job._counts(),
        }
        if point.error is not None:
            data["error"] = point.error
        job.broker.publish(event, data)
        # SLO alerts (telemetry-configured serving points) become their
        # own critical SSE frames: unlike metrics ticks they replay to
        # late subscribers and are never dropped under backpressure.
        if isinstance(point.result, dict):
            for alert in point.result.get("alerts") or ():
                job.broker.publish(
                    "alert",
                    {"job": job.id, "index": point.index, "seed": point.seed, **alert},
                )
                self.registry.counter("service.alerts.published").inc()
        settled = self.registry.counter("service.points.settled")
        hits = self.registry.counter("service.points.cache_hits")
        settled.inc()
        if point.cached:
            hits.inc()
        self.registry.gauge("service.cache.hit_ratio").set(hits.value / settled.value)

    def update_utilization(self) -> None:
        """Refresh the queue-depth / worker-utilization gauges (called
        from the server's telemetry pump)."""
        from ..core.proc import peak_rss_bytes

        running = sum(1 for job in self.jobs.values() if job.state == "running")
        self.registry.gauge("service.workers.busy").set(running)
        self.registry.gauge("service.workers.utilization").set(
            running / self.job_workers if self.job_workers else 0.0
        )
        self.registry.gauge("service.queue.depth").set(self._queue.qsize())
        # Process high-water mark: lets the dashboard/scraper confirm the
        # streaming serving path keeps long-running services flat.
        self.registry.gauge("service.proc.peak_rss_bytes").set(peak_rss_bytes())

    def _set_state(self, job: Job, state: str) -> None:
        job.state = state
        self.state.append(job.id, {"kind": "status", "state": state})
        job.broker.publish("status", {"state": state, **job._counts()})

    def _finalize(self, job: Job, state: str) -> None:
        job.state = state
        self.state.append(job.id, {"kind": "status", "state": state})
        self.state.append(
            job.id,
            {
                "kind": "summary",
                "done": job.done_points,
                "evaluated": job.evaluated,
                "cache_hits": job.cache_hits,
                "errors": job.errors,
                **({"error": job.error} if job.error else {}),
            },
        )
        job.broker.publish(state, {"state": state, **job._counts()})
        self.registry.counter(f"service.jobs.{state}").inc()
        self.registry.gauge("service.jobs.in_flight").set(self.in_flight)


def _job_seq(job_id: str) -> int:
    """The numeric suffix of a ``jNNNN`` id (0 when unparsable)."""
    try:
        return int(job_id.lstrip("j"))
    except ValueError:
        return 0
