"""Jobs: specs, lifecycle state machine, bounded queue + worker pool.

A *job* is one sweep — a registered target plus a grid/point list —
submitted over HTTP and executed through :func:`repro.sweep.run_sweep`
on a worker.  The manager enforces explicit backpressure: at most
``queue_size`` jobs may wait while ``job_workers`` run; a submission
past that capacity raises :class:`ServiceBusy`, which the HTTP layer
turns into ``429`` + ``Retry-After`` (the service never queues
unboundedly — the paper's goodput lesson applied to the service
itself).

Each job runs inside a thread from the event loop's default executor;
the sweep engine's ``on_point`` hook pushes every settled point back
onto the loop via ``call_soon_threadsafe``, where it is journaled
(:class:`repro.service.state.StateStore`) and published to SSE
subscribers (:class:`repro.service.events.EventBroker`).  Because the
sweep writes every evaluated point to the shared
:class:`repro.sweep.SweepCache` *before* reporting it, a killed server
can always be restarted: non-terminal journaled jobs are re-enqueued
and re-run, and every point that completed before the kill is a cache
hit — resume recomputes only unevaluated points.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

from ..faults import FaultSchedule
from ..obs import MetricsRegistry, Tracer, parse_slo_rules
from ..sweep import (
    PointResult,
    SupervisorPolicy,
    SweepCache,
    SweepInterrupted,
    SweepSpec,
    get_target,
    grid,
    run_sweep,
    target_names,
)
from ..sweep.spec import canonical_config
from .breaker import CircuitBreaker
from .events import EventBroker
from .state import StateStore

__all__ = ["Job", "JobManager", "JobSpec", "ServiceBusy", "TERMINAL_STATES"]

TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceBusy(Exception):
    """Queue + worker pool at capacity; retry after ``retry_after`` s."""

    def __init__(self, retry_after: float) -> None:
        super().__init__("job queue at capacity")
        self.retry_after = retry_after


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission (the journaled, replayable form)."""

    target: str
    points: tuple[dict, ...]
    base: dict = field(default_factory=dict)
    seed: int = 0
    workers: int = 1
    name: str | None = None
    deadline_s: float | None = None
    timeout_s: float | None = None
    max_attempts: int = 1

    @classmethod
    def from_payload(cls, payload: dict, *, max_workers: int = 4) -> "JobSpec":
        """Validate a ``POST /jobs`` body; raises ``ValueError`` with a
        client-facing message on anything malformed.

        Accepted keys: ``target`` (required, registered sweep target),
        ``grid`` (axes dict) and/or ``points`` (explicit config list),
        ``base``, ``seed``, ``workers`` (clamped to ``max_workers``),
        ``name``, ``faults`` (a :class:`repro.faults.FaultSchedule`
        JSON payload, validated then folded into ``base``),
        ``recovery`` (kwargs dict, folded likewise), and the telemetry
        pair ``window_s`` / ``slo`` (rules for
        :func:`repro.obs.parse_slo_rules`, canonicalized then folded
        into ``base`` so journal and cache keys are client-order
        independent).

        Robustness knobs: ``deadline_s`` (whole-job wall-clock budget;
        an overdue job is interrupted at a point boundary and ends
        ``failed``), and the supervised-execution pair ``timeout_s``
        (per point-attempt kill budget) / ``max_attempts`` (retries
        before quarantine) which route the sweep through
        :class:`repro.sweep.SupervisorPolicy`.
        """
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        unknown = set(payload) - {
            "target", "grid", "points", "base", "seed", "workers", "name",
            "faults", "recovery", "window_s", "slo",
            "deadline_s", "timeout_s", "max_attempts",
        }
        if unknown:
            raise ValueError(f"unknown job spec keys: {sorted(unknown)}")
        target = payload.get("target")
        if not isinstance(target, str):
            raise ValueError("'target' must be a string")
        try:
            # get_target rather than a target_names() membership test:
            # it resolves lazily-registered targets (repro.chaos) too.
            get_target(target)
        except KeyError:
            raise ValueError(
                f"unknown target {target!r} (registered: {', '.join(target_names())})"
            ) from None
        points: list[dict] = []
        axes = payload.get("grid")
        if axes is not None:
            if not isinstance(axes, dict) or not axes:
                raise ValueError("'grid' must be a non-empty object of axes")
            points.extend(grid(**axes))
        for point in payload.get("points", []):
            if not isinstance(point, dict):
                raise ValueError("'points' entries must be objects")
            points.append(point)
        if not points:
            raise ValueError("a job needs a 'grid' and/or a 'points' list")
        base = payload.get("base", {})
        if not isinstance(base, dict):
            raise ValueError("'base' must be an object")
        base = dict(base)
        faults = payload.get("faults")
        if faults is not None:
            if not isinstance(faults, dict):
                raise ValueError("'faults' must be a FaultSchedule JSON object")
            try:
                schedule = FaultSchedule.from_json(faults)
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"bad fault schedule: {exc}") from exc
            # Store the canonical re-serialized form so the journal and
            # cache keys never depend on client-side key ordering.
            base["faults"] = json.loads(schedule.to_json())
        recovery = payload.get("recovery")
        if recovery is not None:
            if not isinstance(recovery, dict):
                raise ValueError("'recovery' must be an object of kwargs")
            base["recovery"] = recovery
        window_s = payload.get("window_s")
        if window_s is not None:
            if not isinstance(window_s, (int, float)) or isinstance(
                window_s, bool
            ) or window_s <= 0:
                raise ValueError("'window_s' must be a positive number")
            base["window_s"] = window_s
        slo = payload.get("slo")
        if slo is not None:
            if not isinstance(slo, list) or not slo:
                raise ValueError("'slo' must be a non-empty list of rules")
            if "window_s" not in base:
                raise ValueError("'slo' rules require 'window_s'")
            try:
                rules = parse_slo_rules(slo)
            except ValueError as exc:
                raise ValueError(f"bad SLO rules: {exc}") from exc
            base["slo"] = [rule.to_dict() for rule in rules]
        try:
            for point in points:
                canonical_config({**base, **point})
        except TypeError as exc:
            raise ValueError(str(exc)) from exc
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise ValueError("'workers' must be a positive integer")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise ValueError("'name' must be a string")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError("'seed' must be an integer")
        deadline_s = payload.get("deadline_s")
        timeout_s = payload.get("timeout_s")
        for label, value in (("deadline_s", deadline_s), ("timeout_s", timeout_s)):
            if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value <= 0
            ):
                raise ValueError(f"'{label}' must be a positive number")
        max_attempts = payload.get("max_attempts", 1)
        if not isinstance(max_attempts, int) or max_attempts < 1:
            raise ValueError("'max_attempts' must be a positive integer")
        return cls(
            target=target,
            points=tuple(points),
            base=base,
            seed=seed,
            workers=min(workers, max_workers),
            name=name,
            deadline_s=deadline_s,
            timeout_s=timeout_s,
            max_attempts=max_attempts,
        )

    def to_payload(self) -> dict:
        """The journal form; :meth:`from_journal` round-trips it."""
        return {
            "target": self.target,
            "points": list(self.points),
            "base": self.base,
            "seed": self.seed,
            "workers": self.workers,
            "name": self.name,
            "deadline_s": self.deadline_s,
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_journal(cls, payload: dict) -> "JobSpec":
        return cls(
            target=payload["target"],
            points=tuple(payload["points"]),
            base=payload.get("base", {}),
            seed=payload.get("seed", 0),
            workers=payload.get("workers", 1),
            name=payload.get("name"),
            deadline_s=payload.get("deadline_s"),
            timeout_s=payload.get("timeout_s"),
            max_attempts=payload.get("max_attempts", 1),
        )

    def supervisor_policy(self) -> SupervisorPolicy | None:
        """The supervised-execution policy, or ``None`` for the plain
        pool path (no timeout, single attempt)."""
        if self.timeout_s is None and self.max_attempts <= 1:
            return None
        return SupervisorPolicy(
            timeout_s=self.timeout_s, max_attempts=self.max_attempts
        )

    def sweep_spec(self) -> SweepSpec:
        return SweepSpec(
            target=self.target,
            points=self.points,
            base=self.base,
            seed=self.seed,
            name=self.name,
        )


class Job:
    """One submitted sweep and its live state."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        *,
        buffer: int = 256,
        history_limit: int = 10_000,
        resumed: bool = False,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.resumed = resumed
        self.created = time.time()
        self.total = len(spec.points)
        self.done_points = 0
        self.evaluated = 0
        self.cache_hits = 0
        self.errors = 0
        self.error: str | None = None  # terminal failure, not per-point
        self.broker = EventBroker(buffer=buffer, history_limit=history_limit)
        self.cancel_requested = threading.Event()
        self.deadline_exceeded = threading.Event()
        self.run_started: float | None = None  # monotonic, set per run
        self.last_progress: float | None = None  # monotonic, watchdog input
        self.hung = False
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> dict:
        """The ``GET /jobs`` / ``GET /jobs/{id}`` summary."""
        return {
            "id": self.id,
            "name": self.spec.name,
            "target": self.spec.target,
            "state": self.state,
            "resumed": self.resumed,
            "created": self.created,
            "seed": self.spec.seed,
            "workers": self.spec.workers,
            "total": self.total,
            "done": self.done_points,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            **({"error": self.error} if self.error else {}),
            **({"hung": True} if self.hung else {}),
            **(
                {"deadline_s": self.spec.deadline_s}
                if self.spec.deadline_s is not None
                else {}
            ),
        }

    def _counts(self) -> dict:
        return {
            "job": self.id,
            "done": self.done_points,
            "total": self.total,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
        }


class JobManager:
    """Bounded queue + worker pool over the sweep engine."""

    def __init__(
        self,
        *,
        state: StateStore,
        cache: SweepCache | None,
        queue_size: int = 8,
        job_workers: int = 2,
        max_sweep_workers: int = 4,
        metrics_interval: float = 1.0,
        client_buffer: int = 256,
        history_limit: int = 10_000,
        retry_after: float = 2.0,
        registry: MetricsRegistry | None = None,
        breaker: CircuitBreaker | None = None,
        hung_after_s: float = 60.0,
        watchdog_interval_s: float = 0.5,
    ) -> None:
        self.state = state
        self.cache = cache
        self.queue_size = queue_size
        self.job_workers = job_workers
        self.max_sweep_workers = max_sweep_workers
        self.metrics_interval = metrics_interval
        self.client_buffer = client_buffer
        self.history_limit = history_limit
        self.retry_after = retry_after
        self.registry = registry if registry is not None else MetricsRegistry()
        self.breaker = breaker
        self.hung_after_s = hung_after_s
        self.watchdog_interval_s = watchdog_interval_s
        self.jobs: dict[str, Job] = {}
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._seq = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        # Drain is a threading.Event because the sweep's interrupt
        # callable polls it from the executor thread.
        self._drain = threading.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._restore()
        for _ in range(self.job_workers):
            self._tasks.append(asyncio.create_task(self._worker()))
        self._tasks.append(asyncio.create_task(self._watchdog()))

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    async def drain(self, grace_s: float) -> bool:
        """Stop gracefully: interrupt running jobs at a point boundary.

        Sets the drain flag (the HTTP layer turns new submissions into
        ``503`` + ``Retry-After``), journals a ``drain`` record for
        every queued job, and waits up to ``grace_s`` for running jobs
        to settle out of ``running`` — each journals its own ``drain``
        record (with progress counts) as its sweep interrupt lands.
        Every point completed before the interrupt is already in the
        cache, so a restarted server re-enqueues these jobs and
        recomputes only the unevaluated points; the final report is
        byte-identical to an undrained run.  Returns ``True`` when all
        running jobs settled within the grace period.
        """
        if not self._drain.is_set():
            self._drain.set()
            self.registry.counter("service.drains").inc()
            for job in self.jobs.values():
                if job.state == "queued":
                    self.state.append(
                        job.id, {"kind": "drain", "done": 0, "total": job.total}
                    )
        deadline = time.monotonic() + grace_s
        while any(job.state == "running" for job in self.jobs.values()):
            if time.monotonic() >= deadline:
                self.registry.counter("service.drain.overruns").inc()
                return False
            await asyncio.sleep(0.02)
        return True

    # -- submission / capacity -------------------------------------------

    @property
    def in_flight(self) -> int:
        """Jobs currently queued or running (the bounded resource)."""
        return sum(1 for job in self.jobs.values() if not job.terminal)

    @property
    def capacity(self) -> int:
        return self.queue_size + self.job_workers

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a new job, or raise :class:`ServiceBusy` at capacity
        (:class:`~repro.service.breaker.CircuitOpen` when the target's
        breaker is tripped — checked after capacity so a rejected
        submission never claims the half-open probe slot)."""
        if self.in_flight >= self.capacity:
            self.registry.counter("service.jobs.rejected").inc()
            raise ServiceBusy(self.retry_after)
        if self.breaker is not None:
            try:
                self.breaker.admit(spec.target)
            except Exception:
                self.registry.counter("service.breaker.rejected").inc()
                raise
        job = self._new_job(spec)
        self.state.append(job.id, {"kind": "submit", "spec": spec.to_payload()})
        self._enqueue(job)
        self.registry.counter("service.jobs.submitted").inc()
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; idempotent once terminal."""
        job = self.jobs[job_id]
        if job.terminal:
            return job
        job.cancel_requested.set()
        if job.state == "queued":
            # The worker will skip it when popped; settle it right away.
            self._finalize(job, "cancelled")
        return job

    def _new_job(self, spec: JobSpec, *, resumed: bool = False) -> Job:
        self._seq += 1
        job = Job(
            f"j{self._seq:04d}",
            spec,
            buffer=self.client_buffer,
            history_limit=self.history_limit,
            resumed=resumed,
        )
        self.jobs[job.id] = job
        return job

    def _enqueue(self, job: Job) -> None:
        job.state = "queued"
        self._queue.put_nowait(job)
        self.registry.gauge("service.jobs.in_flight").set(self.in_flight)

    # -- restart / resume ------------------------------------------------

    def _restore(self) -> None:
        """Rebuild jobs from journals; re-enqueue interrupted ones.

        Resume bypasses the capacity check on purpose — work the server
        already accepted is never shed by a restart.
        """
        for job_id, records in sorted(self.state.load().items()):
            submit = next((r for r in records if r.get("kind") == "submit"), None)
            if submit is None:
                continue
            try:
                spec = JobSpec.from_journal(submit["spec"])
            except (KeyError, TypeError):
                continue
            terminal = next(
                (
                    r["state"]
                    for r in reversed(records)
                    if r.get("kind") == "status" and r.get("state") in TERMINAL_STATES
                ),
                None,
            )
            self._seq = max(self._seq, _job_seq(job_id))
            job = Job(
                job_id,
                spec,
                buffer=self.client_buffer,
                history_limit=self.history_limit,
                resumed=terminal is None,
            )
            self.jobs[job.id] = job
            if terminal is not None:
                job.state = terminal
                summary = next(
                    (r for r in reversed(records) if r.get("kind") == "summary"), {}
                )
                job.done_points = summary.get("done", job.total)
                job.evaluated = summary.get("evaluated", 0)
                job.cache_hits = summary.get("cache_hits", 0)
                job.errors = summary.get("errors", 0)
                job.error = summary.get("error")
                # Seed the broker so a late SSE client sees the ending.
                job.broker.publish(terminal, {"state": terminal, **job._counts()})
                continue
            self.state.append(job.id, {"kind": "resume"})
            self.registry.counter("service.jobs.resumed").inc()
            self._enqueue(job)

    # -- execution -------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            if job.terminal:  # cancelled while queued
                continue
            if self._drain.is_set():
                # Draining: leave the job queued-but-unstarted; its
                # journal has no terminal status, so a restarted
                # server re-enqueues it untouched.
                continue
            await self._run_job(job)

    async def _watchdog(self) -> None:
        """Deadline + hung-job sentinel over every running job.

        Deadlines fire the job's ``deadline_exceeded`` event (the sweep
        interrupt picks it up at the next point boundary — under
        supervised execution that boundary is bounded by ``timeout_s``).
        A job with no settled point for ``hung_after_s`` is flagged
        hung: journaled, published as a critical SSE frame, counted —
        and un-flagged the moment progress resumes.  The watchdog never
        kills anything itself; killing is the supervisor's job, with
        the deadline/cancel machinery as the job-level lever.
        """
        hung_gauge = self.registry.gauge("service.jobs.hung")
        while True:
            await asyncio.sleep(self.watchdog_interval_s)
            now = time.monotonic()
            for job in self.jobs.values():
                if job.state != "running" or job.run_started is None:
                    continue
                deadline = job.spec.deadline_s
                if (
                    deadline is not None
                    and now - job.run_started > deadline
                    and not job.deadline_exceeded.is_set()
                ):
                    job.deadline_exceeded.set()
                    self.state.append(
                        job.id, {"kind": "deadline", "deadline_s": deadline}
                    )
                    job.broker.publish(
                        "deadline", {"deadline_s": deadline, **job._counts()}
                    )
                    self.registry.counter("service.jobs.deadline_exceeded").inc()
                stalled = now - (job.last_progress or job.run_started)
                if self.hung_after_s and stalled > self.hung_after_s and not job.hung:
                    job.hung = True
                    self.state.append(
                        job.id, {"kind": "hung", "stalled_s": round(stalled, 3)}
                    )
                    job.broker.publish(
                        "hung", {"stalled_s": round(stalled, 3), **job._counts()}
                    )
                    self.registry.counter("service.jobs.hung_detected").inc()
            hung_gauge.set(sum(1 for j in self.jobs.values() if j.hung))

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None
        loop = self._loop
        job.run_started = time.monotonic()
        job.last_progress = job.run_started
        self._set_state(job, "running")
        pump = asyncio.create_task(self._metrics_pump(job))
        cache = self.cache
        drain_flag = self._drain

        def on_point(point: PointResult) -> None:
            loop.call_soon_threadsafe(self._point_settled, job, point)

        def interrupted() -> bool:
            return (
                job.cancel_requested.is_set()
                or job.deadline_exceeded.is_set()
                or drain_flag.is_set()
            )

        def blocking_run():
            return run_sweep(
                job.spec.sweep_spec(),
                workers=min(job.spec.workers, self.max_sweep_workers),
                cache=cache,
                tracer=job.tracer,
                metrics=job.metrics,
                strict=False,
                on_point=on_point,
                interrupt=interrupted,
                supervise=job.spec.supervisor_policy(),
            )

        try:
            result = await loop.run_in_executor(None, blocking_run)
        except SweepInterrupted:
            # Precedence: an explicit cancel or blown deadline is a
            # per-job verdict; a drain interrupt is *not* terminal —
            # the journal records the pause and a restarted server
            # resumes the job from the cache.
            if job.cancel_requested.is_set():
                self._finalize(job, "cancelled")
            elif job.deadline_exceeded.is_set():
                job.error = (
                    f"JobDeadlineExceeded: exceeded deadline_s="
                    f"{job.spec.deadline_s:g} after {job.done_points}/{job.total} points"
                )
                self._finalize(job, "failed")
            else:
                self.state.append(
                    job.id,
                    {"kind": "drain", "done": job.done_points, "total": job.total},
                )
                self._set_state(job, "interrupted")
                self.registry.counter("service.jobs.drained").inc()
        except Exception as exc:  # noqa: BLE001 - job-level failure
            job.error = f"{type(exc).__name__}: {exc}"
            self._finalize(job, "failed")
        else:
            self.state.report_path(job.id).write_text(result.to_report_json())
            job.tracer.write(self.state.trace_path(job.id))
            self._finalize(job, "done")
        finally:
            pump.cancel()

    async def _metrics_pump(self, job: Job) -> None:
        """Periodic droppable SSE frames of the job's obs registry."""
        while True:
            await asyncio.sleep(self.metrics_interval)
            job.broker.publish(
                "metrics",
                {
                    "job": job.id,
                    "metrics": job.metrics.snapshot(),
                    "sse_dropped": job.broker.dropped,
                    **job._counts(),
                },
                droppable=True,
            )

    # -- event-loop-side bookkeeping -------------------------------------

    def _point_settled(self, job: Job, point: PointResult) -> None:
        job.last_progress = time.monotonic()
        if job.hung:
            job.hung = False  # progress resumed; the gauge follows
        job.done_points += 1
        if point.cached:
            job.cache_hits += 1
            event = "cache_hit"
        elif point.error is not None:
            job.errors += 1
            job.evaluated += 1
            event = "error"
        else:
            job.evaluated += 1
            event = "progress"
        record = {
            "kind": "point",
            "index": point.index,
            "key": point.key,
            "cached": point.cached,
            "elapsed": round(point.elapsed, 6),
        }
        if point.error is not None:
            record["error"] = point.error["type"]
        self.state.append(job.id, record)
        data = {
            "index": point.index,
            "config": point.config,
            "seed": point.seed,
            "key": point.key,
            "cached": point.cached,
            "elapsed": round(point.elapsed, 6),
            **job._counts(),
        }
        if point.error is not None:
            data["error"] = point.error
        job.broker.publish(event, data)
        # SLO alerts (telemetry-configured serving points) become their
        # own critical SSE frames: unlike metrics ticks they replay to
        # late subscribers and are never dropped under backpressure.
        if isinstance(point.result, dict):
            for alert in point.result.get("alerts") or ():
                job.broker.publish(
                    "alert",
                    {"job": job.id, "index": point.index, "seed": point.seed, **alert},
                )
                self.registry.counter("service.alerts.published").inc()
        settled = self.registry.counter("service.points.settled")
        hits = self.registry.counter("service.points.cache_hits")
        settled.inc()
        if point.cached:
            hits.inc()
        self.registry.gauge("service.cache.hit_ratio").set(hits.value / settled.value)

    def update_utilization(self) -> None:
        """Refresh the queue-depth / worker-utilization gauges (called
        from the server's telemetry pump)."""
        from ..core.proc import peak_rss_bytes

        running = sum(1 for job in self.jobs.values() if job.state == "running")
        self.registry.gauge("service.workers.busy").set(running)
        self.registry.gauge("service.workers.utilization").set(
            running / self.job_workers if self.job_workers else 0.0
        )
        self.registry.gauge("service.queue.depth").set(self._queue.qsize())
        # Process high-water mark: lets the dashboard/scraper confirm the
        # streaming serving path keeps long-running services flat.
        self.registry.gauge("service.proc.peak_rss_bytes").set(peak_rss_bytes())

    def _set_state(self, job: Job, state: str) -> None:
        job.state = state
        self.state.append(job.id, {"kind": "status", "state": state})
        job.broker.publish("status", {"state": state, **job._counts()})

    def _finalize(self, job: Job, state: str) -> None:
        job.state = state
        self.state.append(job.id, {"kind": "status", "state": state})
        self.state.append(
            job.id,
            {
                "kind": "summary",
                "done": job.done_points,
                "evaluated": job.evaluated,
                "cache_hits": job.cache_hits,
                "errors": job.errors,
                **({"error": job.error} if job.error else {}),
            },
        )
        job.broker.publish(state, {"state": state, **job._counts()})
        self.registry.counter(f"service.jobs.{state}").inc()
        self.registry.gauge("service.jobs.in_flight").set(self.in_flight)
        if self.breaker is not None and state in ("done", "failed"):
            # A job "succeeds" for breaker purposes unless it failed
            # outright or *every* point errored — one poisoned point in
            # a healthy grid must not trip the target.
            total_failure = state == "failed" or (
                job.total > 0 and job.errors >= job.total
            )
            if total_failure:
                self.breaker.record_failure(job.spec.target)
            else:
                self.breaker.record_success(job.spec.target)
            self.registry.gauge("service.breaker.open").set(self.breaker.open_count)


def _job_seq(job_id: str) -> int:
    """The numeric suffix of a ``jNNNN`` id (0 when unparsable)."""
    try:
        return int(job_id.lstrip("j"))
    except ValueError:
        return 0
