"""Minimal HTTP/1.1 + Server-Sent Events on raw asyncio streams.

The experiment service deliberately runs on the standard library only
(the repo rule: no runtime deps beyond numpy/networkx), so this module
is the thin slice of HTTP it actually needs — request parsing with
bounded header/body sizes, plain JSON responses, and the
``text/event-stream`` wire format.  One request per connection: every
response carries ``Connection: close``, which keeps the server loop
trivial and is exactly how the artifact/submit routes are used; only
the SSE route holds a connection open, and that one ends when the job
reaches a terminal state or the client goes away.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "json_response",
    "read_request",
    "sse_event",
]

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the server rejects with ``status`` and a JSON body."""

    def __init__(self, status: int, message: str, headers: dict[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}

    def response(self) -> "HttpResponse":
        return json_response(
            {"error": self.message}, status=self.status, headers=self.headers
        )


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request (headers lower-cased, query flattened)."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        """The body as a JSON object, or a 400 :class:`HttpError`."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            payload = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request, or ``None`` if the peer closed the connection."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise HttpError(400, "bad Content-Length") from exc
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length > 0 else b""
    split = urlsplit(target.decode("latin-1"))
    query = {k: v[-1] for k, v in parse_qs(split.query).items()}
    return HttpRequest(
        method=method.decode("latin-1").upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


@dataclass
class HttpResponse:
    """One response; :meth:`encode` renders the wire bytes."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{k}: {v}" for k, v in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def json_response(
    payload: object, status: int = 200, headers: dict[str, str] | None = None
) -> HttpResponse:
    """A canonical-JSON response (sorted keys, trailing newline)."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return HttpResponse(status=status, body=body, headers=headers or {})


def sse_event(event: str, data: object) -> bytes:
    """One ``text/event-stream`` frame: named event + compact JSON data."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")


#: The periodic comment frame that keeps idle SSE connections alive
#: (clients ignore comment lines by spec).
SSE_HEARTBEAT = b": heartbeat\n\n"

#: Response head for an SSE stream (written once, then frames follow).
SSE_HEADER = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-cache\r\n"
    b"Connection: close\r\n"
    b"\r\n"
)
