"""Session persistence: append-only JSONL journals and job artifacts.

Layout under the service ``--state-dir``::

    <state>/server.json              # bound host/port/pid (atomic write)
    <state>/jobs/<id>.jsonl          # one journal per job, append-only
    <state>/artifacts/<id>.report.json
    <state>/artifacts/<id>.trace.json

A journal line is one JSON object with a ``"kind"`` discriminator:
``submit`` (the full job spec), ``status`` (state transition),
``point`` (one settled sweep point), ``resume`` (a restart picked the
job back up), ``summary`` (terminal counts).  The journal is the only
write path for job state, so a server killed at any instant loses at
most the line it was writing — :meth:`StateStore.load` tolerates a
truncated final line — and a restart reconstructs every job from the
journals alone.  Results themselves are *not* journaled: they live in
the :class:`repro.sweep.SweepCache`, which is what makes resume cheap
(recompute only unevaluated points) and the report byte-identical.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..obs import MetricsRegistry

__all__ = ["StateStore"]


def _atomic_write(path: Path, body: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        # os.replace only orders the rename against *this process*; the
        # directory entry itself can still be lost to a crash until the
        # parent directory is fsync'd.  server.json is how restarted
        # tooling finds the server, so make the rename durable.
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class StateStore:
    """The service's on-disk session state."""

    def __init__(
        self, root: str | Path, metrics: "MetricsRegistry | None" = None
    ) -> None:
        self.root = Path(root).expanduser()
        self.jobs_dir = self.root / "jobs"
        self.artifacts_dir = self.root / "artifacts"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        # Self-telemetry: journal fsync latency is the one disk wait on
        # the event-loop thread, so the server watches it (growth=1.1
        # keeps the bucket count small over the ms..s range).
        self._fsync_hist = (
            metrics.histogram("service.journal.fsync_s", growth=1.1)
            if metrics is not None
            else None
        )

    # -- journals --------------------------------------------------------

    def journal_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.jsonl"

    def append(self, job_id: str, record: dict) -> None:
        """Append one journal line, flushed before returning."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(self.journal_path(job_id), "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            start = time.perf_counter()
            os.fsync(handle.fileno())
            if self._fsync_hist is not None:
                self._fsync_hist.observe(time.perf_counter() - start)

    def load(self) -> dict[str, list[dict]]:
        """Every job's journal records, keyed by job id.

        A truncated or corrupt trailing line (the server died
        mid-append) is skipped, never fatal.
        """
        journals: dict[str, list[dict]] = {}
        for path in sorted(self.jobs_dir.glob("*.jsonl")):
            records = []
            for line in path.read_text(encoding="utf-8").splitlines():
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
            if records:
                journals[path.stem] = records
        return journals

    # -- artifacts -------------------------------------------------------

    def report_path(self, job_id: str) -> Path:
        return self.artifacts_dir / f"{job_id}.report.json"

    def trace_path(self, job_id: str) -> Path:
        return self.artifacts_dir / f"{job_id}.trace.json"

    # -- server info -----------------------------------------------------

    def write_server_info(self, host: str, port: int) -> Path:
        """Record where the server is listening (atomic, for scripts and
        tests that start ``repro serve --port 0`` and need the bound
        port)."""
        path = self.root / "server.json"
        _atomic_write(
            path,
            json.dumps(
                {"host": host, "port": port, "pid": os.getpid()}, sort_keys=True
            )
            + "\n",
        )
        return path
