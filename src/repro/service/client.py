"""A tiny asyncio client for the experiment service.

Used by ``tests/test_service.py`` and the CI ``service-smoke`` job; it
speaks exactly the protocol :mod:`repro.service.http` serves — one
request per connection, JSON bodies, and ``text/event-stream``
consumption with comment (heartbeat) frames skipped.  Kept in the
package (not the tests) so scripts can drive a running service with
nothing but the standard library::

    client = ServiceClient("127.0.0.1", 8742)
    status, job = await client.post_json("/jobs", {"target": "serving", ...})
    async for event, data in client.events(f"/jobs/{job['id']}/events"):
        ...
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator

from .events import TERMINAL_EVENTS

__all__ = ["ServiceClient"]


class ServiceClient:
    """Stdlib-only HTTP/SSE client bound to one host:port."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One request; returns ``(status, headers, body)``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = b""
            headers = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers.append("Content-Type: application/json")
            headers.append(f"Content-Length: {len(body)}")
            headers.append("Connection: close")
            writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
            status, response_headers = await _read_head(reader)
            raw = await reader.read()
            return status, response_headers, raw
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def get_json(self, path: str) -> tuple[int, dict]:
        status, _, body = await self.request("GET", path)
        return status, _parse_json(body)

    async def post_json(
        self, path: str, payload: dict, *, retry_budget_s: float = 0.0
    ) -> tuple[int, dict]:
        """POST with optional bounded retry of ``429`` backpressure.

        With a positive ``retry_budget_s``, a ``429`` whose
        ``Retry-After`` fits in the remaining budget is honored: sleep
        exactly what the server asked, deduct it, retry.  A hint that
        does not fit (or a missing one once the budget is spent)
        surfaces the ``429`` to the caller — the client never waits
        longer than its budget in total, and with the default ``0.0``
        behaves exactly as before (no retry).
        """
        budget = retry_budget_s
        while True:
            status, headers, body = await self.request("POST", path, payload)
            if status != 429:
                return status, _parse_json(body)
            try:
                delay = float(headers.get("retry-after", "1"))
            except ValueError:
                delay = 1.0
            delay = max(delay, 0.05)
            if delay > budget:
                return status, _parse_json(body)
            await asyncio.sleep(delay)
            budget -= delay

    async def delete_json(self, path: str) -> tuple[int, dict]:
        status, _, body = await self.request("DELETE", path)
        return status, _parse_json(body)

    async def events(
        self, path: str, *, stop_on_terminal: bool = True
    ) -> AsyncIterator[tuple[str, dict]]:
        """Consume an SSE stream, yielding ``(event, data)`` pairs.

        Heartbeat comments are skipped.  With ``stop_on_terminal`` the
        iterator returns after a ``done``/``failed``/``cancelled``
        event (the server closes the connection then anyway).
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\nHost: {self.host}:{self.port}\r\n"
                    "Accept: text/event-stream\r\nConnection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status, headers = await _read_head(reader)
            if status != 200:
                body = await reader.read()
                raise RuntimeError(f"SSE request failed: {status} {body[:200]!r}")
            event_name = None
            data_lines: list[str] = []
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # heartbeat comment
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                    continue
                if line == "" and event_name is not None:
                    data = json.loads("\n".join(data_lines)) if data_lines else {}
                    yield event_name, data
                    if stop_on_terminal and event_name in TERMINAL_EVENTS:
                        return
                    event_name = None
                    data_lines = []
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def collect_events(
        self, path: str, *, timeout: float = 60.0
    ) -> list[tuple[str, dict]]:
        """All events up to (and including) the terminal one."""

        async def _collect() -> list[tuple[str, dict]]:
            seen = []
            async for event, data in self.events(path):
                seen.append((event, data))
            return seen

        return await asyncio.wait_for(_collect(), timeout=timeout)

    async def wait_healthy(self, *, timeout: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            try:
                status, payload = await self.get_json("/healthz")
                if status == 200:
                    return payload
            except OSError:
                pass
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(f"service at {self.host}:{self.port} never came up")
            await asyncio.sleep(0.05)


async def _read_head(reader: asyncio.StreamReader) -> tuple[int, dict[str, str]]:
    status_line = await reader.readline()
    parts = status_line.split(None, 2)
    if len(parts) < 2:
        raise RuntimeError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers


def _parse_json(body: bytes) -> dict:
    return json.loads(body.decode("utf-8")) if body else {}
