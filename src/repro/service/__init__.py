"""Long-lived async experiment service over the sweep engine.

The co-design loop the paper closes with (§6) only pays off when
experiments run continuously against a shared engine — not as one-shot
scripts.  ``repro serve`` turns this repository's simulators into that
service: a stdlib-only asyncio HTTP server (no runtime deps beyond
numpy/networkx) that

* accepts sweep **jobs** over ``POST /jobs`` — any registered sweep
  target, a grid and/or explicit points, a root seed, an optional
  :class:`repro.faults.FaultSchedule` payload — and fans each job out
  through :func:`repro.sweep.run_sweep` with the shared
  content-addressed :class:`repro.sweep.SweepCache`, so warm work is
  served from cache;
* applies explicit **backpressure**: a bounded queue + worker pool,
  with over-capacity submissions rejected ``429`` + ``Retry-After``
  rather than queued unboundedly;
* **streams** live progress over Server-Sent Events
  (``GET /jobs/{id}/events``): one frame per settled point, cache-hit
  instants, per-point error records, periodic
  :meth:`repro.obs.MetricsRegistry.snapshot` frames and heartbeats —
  behind bounded per-client buffers, so slow consumers lose metrics
  frames instead of blocking the worker;
* **persists sessions** as append-only JSONL journals under
  ``--state-dir``: a killed server restarts, lists its prior jobs, and
  resumes interrupted sweeps with only the unevaluated points
  recomputed (everything else hits the cache), producing a report
  byte-identical to an uninterrupted run;
* serves **artifacts**: the deterministic sweep report and the
  Chrome trace JSON per job;
* **hardens itself**: graceful drain on SIGTERM/SIGINT (``503`` +
  ``Retry-After`` while draining, running jobs interrupted at a point
  boundary with a journaled ``drain`` record, restart resumes
  byte-identically), per-job ``deadline_s``, a hung-job watchdog, a
  per-target :class:`CircuitBreaker` (consecutive-failure trip,
  half-open probe → ``503``), and supervised sweep execution
  (``timeout_s`` / ``max_attempts`` per job) so hostile points are
  killed, retried, and quarantined instead of wedging a worker;
* exposes **live telemetry**: ``GET /metrics`` renders every registry
  (server self-telemetry — event-loop lag, queue depth, worker
  utilization, cache hit ratio, journal fsync latency — plus one
  labeled family set per job) as OpenMetrics text for any Prometheus
  scraper, SLO ``alert`` frames ride the SSE stream as critical
  (replayed, never dropped) events, and ``GET /dash`` is a
  self-contained live HTML dashboard over those streams.

:class:`ExperimentServer` is the server, :class:`ServiceClient` the
stdlib test/scripting client, and the ``repro serve`` CLI subcommand
the front door.
"""

from .breaker import CircuitBreaker, CircuitOpen
from .client import ServiceClient
from .dash import render_dashboard
from .events import EventBroker, TERMINAL_EVENTS
from .jobs import Job, JobManager, JobSpec, ServiceBusy, TERMINAL_STATES
from .server import ExperimentServer, ServiceConfig
from .state import StateStore

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "EventBroker",
    "ExperimentServer",
    "Job",
    "JobManager",
    "JobSpec",
    "ServiceBusy",
    "ServiceClient",
    "ServiceConfig",
    "StateStore",
    "TERMINAL_EVENTS",
    "TERMINAL_STATES",
    "render_dashboard",
]
