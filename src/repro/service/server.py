"""The experiment server: routes, SSE streaming, artifact serving.

Routes (all JSON unless noted):

=========  ==========================  =====================================
Method     Path                        Meaning
=========  ==========================  =====================================
``GET``    ``/healthz``                liveness + version + job counts
``GET``    ``/metrics``                OpenMetrics text: server
                                       self-telemetry + every job registry
                                       labeled ``{job="..."}``
                                       (``?format=json`` keeps the legacy
                                       snapshot shape)
``GET``    ``/dash``                   live HTML dashboard (self-contained;
                                       renders SSE frames per job)
``POST``   ``/jobs``                   submit a job (``202``; ``429`` +
                                       ``Retry-After`` at capacity)
``GET``    ``/jobs``                   list every known job
``GET``    ``/jobs/{id}``              one job incl. its metrics snapshot
``DELETE`` ``/jobs/{id}``              cancel (idempotent once terminal)
``GET``    ``/jobs/{id}/events``       ``text/event-stream``: replay +
                                       live ``progress``/``cache_hit``/
                                       ``error``/``metrics``/``alert``/
                                       ``status`` frames, heartbeat
                                       comments, ends on
                                       ``done``/``failed``/``cancelled``
``GET``    ``/jobs/{id}/report``       the cache-independent sweep report
                                       (``?windows=1`` appends the merged
                                       telemetry section)
``GET``    ``/jobs/{id}/trace``        the job's Chrome trace JSON
=========  ==========================  =====================================

Concurrency model: one asyncio task per connection, one task per job
worker, one metrics pump per running job.  The sweep itself runs on an
executor thread; nothing on the event loop ever blocks on it, and SSE
consumers are isolated behind bounded :class:`EventBroker` buffers.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass
from pathlib import Path

import repro

from ..obs import MetricsRegistry
from ..obs import openmetrics as _om
from ..sweep import SweepCache, merged_windows_section
from .dash import render_dashboard
from .events import TERMINAL_EVENTS
from .http import (
    SSE_HEADER,
    SSE_HEARTBEAT,
    HttpError,
    HttpRequest,
    HttpResponse,
    json_response,
    read_request,
    sse_event,
)
from .breaker import CircuitBreaker, CircuitOpen
from .jobs import JobManager, JobSpec, ServiceBusy
from .state import StateStore

__all__ = ["ExperimentServer", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` exposes as flags."""

    state_dir: str | Path
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in server.json
    cache_dir: str | Path | None = None
    cache: bool = True
    queue_size: int = 8
    job_workers: int = 2
    max_sweep_workers: int = 4
    heartbeat_s: float = 10.0
    metrics_interval_s: float = 1.0
    telemetry_interval_s: float = 0.5
    client_buffer: int = 256
    history_limit: int = 10_000
    retry_after_s: float = 2.0
    drain_grace_s: float = 10.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    hung_after_s: float = 60.0
    watchdog_interval_s: float = 0.5


class ExperimentServer:
    """A long-lived asyncio HTTP server over the sweep engine."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        # The registry exists before the StateStore so journal fsync
        # latency lands in the server's own telemetry from line one.
        self.metrics = MetricsRegistry()
        self.state = StateStore(config.state_dir, metrics=self.metrics)
        self.cache = SweepCache(config.cache_dir) if config.cache else None
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.manager = JobManager(
            state=self.state,
            cache=self.cache,
            queue_size=config.queue_size,
            job_workers=config.job_workers,
            max_sweep_workers=config.max_sweep_workers,
            metrics_interval=config.metrics_interval_s,
            client_buffer=config.client_buffer,
            history_limit=config.history_limit,
            retry_after=config.retry_after_s,
            registry=self.metrics,
            breaker=self.breaker,
            hung_after_s=config.hung_after_s,
            watchdog_interval_s=config.watchdog_interval_s,
        )
        self.host = config.host
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._telemetry_task: asyncio.Task | None = None
        self._routes = [
            ("GET", re.compile(r"^/healthz$"), self._get_healthz),
            ("GET", re.compile(r"^/metrics$"), self._get_metrics),
            ("GET", re.compile(r"^/dash$"), self._get_dash),
            ("POST", re.compile(r"^/jobs$"), self._post_jobs),
            ("GET", re.compile(r"^/jobs$"), self._get_jobs),
            ("GET", re.compile(r"^/jobs/(?P<job_id>[\w.-]+)$"), self._get_job),
            ("DELETE", re.compile(r"^/jobs/(?P<job_id>[\w.-]+)$"), self._delete_job),
            ("GET", re.compile(r"^/jobs/(?P<job_id>[\w.-]+)/events$"), None),  # SSE
            ("GET", re.compile(r"^/jobs/(?P<job_id>[\w.-]+)/report$"), self._get_report),
            ("GET", re.compile(r"^/jobs/(?P<job_id>[\w.-]+)/trace$"), self._get_trace),
        ]

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Restore journaled jobs, start workers, bind the socket."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.state.write_server_info(self.host, self.port)
        self._telemetry_task = asyncio.create_task(self._telemetry_pump())

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> bool:
        """Graceful shutdown, phase one: refuse new work, settle old.

        Idempotent; flips the manager into draining (new ``POST /jobs``
        answer ``503`` + ``Retry-After`` immediately) and waits up to
        ``drain_grace_s`` for running jobs to stop at a point boundary
        and journal their ``drain`` records.  The listener stays up the
        whole time so health checks and SSE clients see the drain
        happen.  Call :meth:`stop` afterwards to close the socket.
        """
        return await self.manager.drain(self.config.drain_grace_s)

    async def stop(self) -> None:
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            try:
                await self._telemetry_task
            except asyncio.CancelledError:
                pass
            self._telemetry_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.stop()

    async def _telemetry_pump(self) -> None:
        """Server self-telemetry on a fixed cadence.

        Event-loop lag — how late the sleep wakes up — is the server's
        own "TPOT": it directly bounds SSE frame latency and HTTP
        responsiveness.  It lands in a histogram (for percentiles over
        the whole run), a bounded ring series (recent shape for the
        dashboard; decimation keeps it O(1) memory), and a last-value
        gauge; queue depth and worker utilization refresh on the same
        tick.
        """
        interval = self.config.telemetry_interval_s
        loop = asyncio.get_running_loop()
        lag_hist = self.metrics.histogram("service.loop.lag_s", growth=1.1)
        lag_series = self.metrics.series(
            "service.loop.lag_last_s.series", max_points=512, mode="ring"
        )
        lag_gauge = self.metrics.gauge("service.loop.lag_last_s")
        while True:
            before = loop.time()
            await asyncio.sleep(interval)
            lag = max(0.0, loop.time() - before - interval)
            lag_hist.observe(lag)
            lag_series.record(loop.time(), lag)
            lag_gauge.set(lag)
            self.manager.update_utilization()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                self.metrics.counter("service.http.requests").inc()
                response = await self._dispatch(request, writer)
            except HttpError as exc:
                response = exc.response()
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                self.metrics.counter("service.http.errors").inc()
                response = json_response(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500
                )
            if response is not None:
                writer.write(response.encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> HttpResponse | None:
        path_exists = False
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if not match:
                continue
            path_exists = True
            if method != request.method:
                continue
            if handler is None:  # the SSE route streams on the raw writer
                await self._stream_events(writer, **match.groupdict())
                return None
            return handler(request, **match.groupdict())
        if path_exists:
            raise HttpError(405, f"method {request.method} not allowed here")
        raise HttpError(404, f"no route for {request.path}")

    # -- plain routes ----------------------------------------------------

    def _job_or_404(self, job_id: str):
        try:
            return self.manager.jobs[job_id]
        except KeyError:
            raise HttpError(404, f"unknown job {job_id!r}") from None

    def _get_healthz(self, request: HttpRequest) -> HttpResponse:
        return json_response(
            {
                "ok": True,
                "version": repro.__version__,
                "jobs": len(self.manager.jobs),
                "in_flight": self.manager.in_flight,
                "capacity": self.manager.capacity,
                "draining": self.manager.draining,
                "breakers": self.breaker.describe(),
            }
        )

    def _get_metrics(self, request: HttpRequest) -> HttpResponse:
        if request.query.get("format") == "json":
            return json_response({"server": self.metrics.snapshot()})
        registries = [(self.metrics, None)]
        for job in self.manager.jobs.values():
            registries.append((job.metrics, {"job": job.id}))
        return HttpResponse(
            body=_om.render_openmetrics(registries).encode(),
            content_type=_om.CONTENT_TYPE,
        )

    def _get_dash(self, request: HttpRequest) -> HttpResponse:
        jobs = [job.describe() for job in self.manager.jobs.values()]
        return HttpResponse(
            body=render_dashboard(jobs, version=repro.__version__).encode(),
            content_type="text/html; charset=utf-8",
        )

    def _post_jobs(self, request: HttpRequest) -> HttpResponse:
        if self.manager.draining:
            raise HttpError(
                503,
                "server is draining; not accepting new jobs",
                headers={"Retry-After": f"{self.config.retry_after_s:g}"},
            )
        try:
            spec = JobSpec.from_payload(
                request.json(), max_workers=self.config.max_sweep_workers
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        try:
            job = self.manager.submit(spec)
        except ServiceBusy as exc:
            raise HttpError(
                429,
                "job queue at capacity",
                headers={"Retry-After": f"{exc.retry_after:g}"},
            ) from None
        except CircuitOpen as exc:
            raise HttpError(
                503,
                str(exc),
                headers={"Retry-After": f"{max(1.0, exc.retry_after):g}"},
            ) from None
        return json_response(job.describe(), status=202)

    def _get_jobs(self, request: HttpRequest) -> HttpResponse:
        return json_response(
            {"jobs": [job.describe() for job in self.manager.jobs.values()]}
        )

    def _get_job(self, request: HttpRequest, job_id: str) -> HttpResponse:
        job = self._job_or_404(job_id)
        return json_response({**job.describe(), "metrics": job.metrics.snapshot()})

    def _delete_job(self, request: HttpRequest, job_id: str) -> HttpResponse:
        self._job_or_404(job_id)
        return json_response(self.manager.cancel(job_id).describe())

    def _get_report(self, request: HttpRequest, job_id: str) -> HttpResponse:
        response = self._artifact(job_id, self.state.report_path(job_id), "report")
        if request.query.get("windows") in (None, "", "0"):
            # Default body is the artifact verbatim — byte-identical to
            # what the sweep engine wrote, telemetry or not.
            return response
        payload = json.loads(response.body)
        section = merged_windows_section(payload.get("points", []))
        if section is not None:
            payload["windows"] = section
        return json_response(payload)

    def _get_trace(self, request: HttpRequest, job_id: str) -> HttpResponse:
        return self._artifact(job_id, self.state.trace_path(job_id), "trace")

    def _artifact(self, job_id: str, path: Path, what: str) -> HttpResponse:
        job = self._job_or_404(job_id)
        if not path.is_file():
            raise HttpError(
                404, f"{what} for {job_id!r} not available (state: {job.state})"
            )
        return HttpResponse(body=path.read_bytes())

    # -- SSE -------------------------------------------------------------

    async def _stream_events(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        """Replay history, then stream live events until terminal.

        Heartbeat comments go out every ``heartbeat_s`` of silence.  A
        slow client only ever stalls *this* coroutine — the broker
        queue between it and the worker is bounded and lossy (metrics
        frames drop first), so the job never blocks and memory never
        grows with client count or slowness.
        """
        job = self._job_or_404(job_id)
        replay, queue = job.broker.subscribe()
        self.metrics.counter("service.sse.clients").inc()
        try:
            writer.write(SSE_HEADER)
            terminal = False
            for event, data in replay:
                writer.write(sse_event(event, data))
                terminal = terminal or event in TERMINAL_EVENTS
            await writer.drain()
            while not terminal:
                try:
                    event, data = await asyncio.wait_for(
                        queue.get(), timeout=self.config.heartbeat_s
                    )
                except asyncio.TimeoutError:
                    writer.write(SSE_HEARTBEAT)
                    await writer.drain()
                    continue
                writer.write(sse_event(event, data))
                await writer.drain()
                terminal = event in TERMINAL_EVENTS
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            job.broker.unsubscribe(queue)
