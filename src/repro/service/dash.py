"""Self-contained live dashboard for the experiment server.

One HTML page, zero external assets: the job list is injected
server-side as JSON (so the page is meaningful — and testable — even
with JavaScript disabled), and inline JS subscribes to each
non-terminal job's SSE stream (``/jobs/{id}/events``), folding
``progress``/``cache_hit``/``error``/``metrics``/``alert``/``status``
frames into per-job cards: a completion bar, an SVG sparkline of
points settled over time, headline counters, and an alert timeline
(fire/resolve, with fault context when the simulator annotated it).

Terminal jobs render from the embedded snapshot alone; their streams
are never opened (an ``EventSource`` on a finished job would reconnect
forever, since the server closes the connection after the terminal
frame).
"""

from __future__ import annotations

import json

__all__ = ["render_dashboard"]

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro dash</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; padding: 1.5rem; background: #14161a; color: #d5d9e0;
         font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace; }
  h1 { font-size: 1.1rem; margin: 0 0 1rem; color: #8ab4f8; }
  h1 small { color: #5f6672; font-weight: normal; }
  .card { background: #1c1f26; border: 1px solid #2a2e37; border-radius: 8px;
          padding: .8rem 1rem; margin-bottom: .9rem; }
  .card h2 { font-size: .95rem; margin: 0 0 .4rem; }
  .state { padding: .05rem .5rem; border-radius: 9px; font-size: .75rem;
           margin-left: .5rem; background: #2a2e37; }
  .state.running { background: #1b3a57; color: #8ab4f8; }
  .state.done { background: #1e3a2a; color: #7bd88f; }
  .state.failed, .state.cancelled { background: #4a2327; color: #ff7b85; }
  .bar { height: 6px; background: #2a2e37; border-radius: 3px; overflow: hidden;
         margin: .4rem 0; }
  .bar > div { height: 100%; background: #8ab4f8; width: 0; }
  .row { display: flex; gap: 1.4rem; flex-wrap: wrap; align-items: center; }
  .kv { color: #9aa3b0; }
  .kv b { color: #d5d9e0; font-weight: 600; }
  svg.spark { background: #14161a; border-radius: 4px; }
  polyline { fill: none; stroke: #8ab4f8; stroke-width: 1.5; }
  ul.alerts { list-style: none; margin: .5rem 0 0; padding: 0; font-size: .8rem; }
  ul.alerts li { padding: .1rem 0; }
  ul.alerts li.fire { color: #ff7b85; }
  ul.alerts li.resolve { color: #7bd88f; }
  #empty { color: #5f6672; }
</style>
</head>
<body>
<h1>repro dash <small>v__VERSION__</small></h1>
<div id="jobs"></div>
<p id="empty" hidden>no jobs yet &mdash; POST /jobs to submit one</p>
<script id="jobs-data" type="application/json">__JOBS__</script>
<script>
"use strict";
const jobs = JSON.parse(document.getElementById("jobs-data").textContent);
const TERMINAL = ["done", "failed", "cancelled"];
const root = document.getElementById("jobs");
if (!jobs.length) document.getElementById("empty").hidden = false;

function spark(values, w, h) {
  if (values.length < 2) return "";
  const lo = Math.min(...values), hi = Math.max(...values), span = hi - lo || 1;
  const pts = values.map((v, i) =>
    (i / (values.length - 1) * w).toFixed(1) + "," +
    (h - 2 - (v - lo) / span * (h - 4)).toFixed(1)).join(" ");
  return '<polyline points="' + pts + '"/>';
}

function card(job) {
  const el = document.createElement("div");
  el.className = "card";
  el.id = "job-" + job.id;
  el.innerHTML =
    '<h2>' + job.id + (job.name ? " &middot; " + job.name : "") +
    ' <span class="state"></span></h2>' +
    '<div class="bar"><div></div></div>' +
    '<div class="row">' +
    '<span class="kv">target <b class="target"></b></span>' +
    '<span class="kv">done <b class="done">0</b>/<b class="total">0</b></span>' +
    '<span class="kv">cache hits <b class="hits">0</b></span>' +
    '<span class="kv">errors <b class="errs">0</b></span>' +
    '<svg class="spark" width="140" height="30" viewBox="0 0 140 30"></svg>' +
    "</div>" +
    '<ul class="alerts"></ul>';
  root.appendChild(el);
  const history = [];
  const view = {
    update(d) {
      if (d.total !== undefined) {
        el.querySelector(".done").textContent = d.done;
        el.querySelector(".total").textContent = d.total;
        el.querySelector(".hits").textContent = d.cache_hits;
        el.querySelector(".errs").textContent = d.errors;
        el.querySelector(".bar > div").style.width =
          (d.total ? 100 * d.done / d.total : 0) + "%";
        history.push(d.done);
        el.querySelector("svg.spark").innerHTML = spark(history, 140, 30);
      }
    },
    state(s) {
      const badge = el.querySelector(".state");
      badge.textContent = s;
      badge.className = "state " + s;
    },
    alert(a) {
      const li = document.createElement("li");
      li.className = a.state;
      li.textContent = "t=" + Number(a.time).toFixed(2) + "s " +
        (a.state === "fire" ? "\\u25b2" : "\\u25bc") + " " + a.rule +
        " (value " + Number(a.value).toFixed(3) + ", limit " + a.limit +
        (a.during_fault ? ", during fault on " + a.fault_target : "") + ")";
      el.querySelector("ul.alerts").appendChild(li);
    },
  };
  view.state(job.state);
  view.update(job);
  el.querySelector(".target").textContent = job.target;
  return view;
}

for (const job of jobs) {
  const view = card(job);
  if (TERMINAL.includes(job.state)) continue;
  const es = new EventSource("/jobs/" + job.id + "/events");
  for (const ev of ["progress", "cache_hit", "error", "metrics"])
    es.addEventListener(ev, (e) => view.update(JSON.parse(e.data)));
  es.addEventListener("alert", (e) => view.alert(JSON.parse(e.data)));
  es.addEventListener("status", (e) => view.state(JSON.parse(e.data).state));
  for (const ev of TERMINAL)
    es.addEventListener(ev, (e) => {
      const d = JSON.parse(e.data);
      view.update(d);
      view.state(d.state);
      es.close();  // the server closed; don't auto-reconnect forever
    });
}
</script>
</body>
</html>
"""


def render_dashboard(jobs: list[dict], *, version: str) -> str:
    """The ``GET /dash`` page, with the current job list embedded.

    ``jobs`` is the ``Job.describe()`` list; it is JSON-injected into
    an inert ``<script type="application/json">`` block (``</`` escaped
    so job names can never close the tag).
    """
    payload = json.dumps(jobs, sort_keys=True).replace("</", "<\\/")
    return _PAGE.replace("__VERSION__", version).replace("__JOBS__", payload)
