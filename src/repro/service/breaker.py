"""Per-target circuit breaker for job admission.

A target whose jobs keep failing (a broken custom target, a config
class that OOMs workers faster than the supervisor can quarantine)
should stop consuming worker slots *before* the queue fills with doomed
work.  The breaker applies the classic three-state pattern per target
name:

* **closed** — normal admission; consecutive job failures are counted.
* **open** — ``threshold`` consecutive failures trip the breaker; every
  submission for that target is rejected (``503`` + ``Retry-After`` at
  the HTTP layer) until ``cooldown_s`` elapses.
* **half-open** — after the cooldown, exactly one *probe* job is
  admitted.  Its outcome decides: success closes the breaker, failure
  re-opens it for another full cooldown.

Failure counting happens at job granularity (see
``JobManager._finalize``): a job counts as failed when it ends
``failed`` or when every one of its points errored — one poisoned point
in an otherwise healthy grid does not trip anything.

The breaker is deliberately synchronous, clock-injected state — no
tasks, no locks (the event loop serializes access) — so it is trivially
testable and restart-safe to *not* persist: a restarted server starts
closed and re-learns, which errs on the side of accepting work.
"""

from __future__ import annotations

import time

__all__ = ["CircuitBreaker", "CircuitOpen"]


class CircuitOpen(Exception):
    """Submission rejected: the target's breaker is open."""

    def __init__(self, target: str, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker open for target {target!r}; "
            f"retry in {retry_after:.0f}s"
        )
        self.target = target
        self.retry_after = retry_after


class _TargetState:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0  # consecutive
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Consecutive-failure breaker keyed by sweep target name."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._targets: dict[str, _TargetState] = {}

    def _state(self, target: str) -> _TargetState:
        return self._targets.setdefault(target, _TargetState())

    def admit(self, target: str) -> None:
        """Gate one submission; raises :class:`CircuitOpen` when tripped.

        An open breaker past its cooldown transitions to half-open and
        admits the caller as the single probe; further submissions are
        rejected until that probe settles.
        """
        ts = self._state(target)
        if ts.state == "open":
            elapsed = self._clock() - ts.opened_at
            if elapsed < self.cooldown_s:
                raise CircuitOpen(target, self.cooldown_s - elapsed)
            ts.state = "half_open"
            ts.probing = False
        if ts.state == "half_open":
            if ts.probing:
                raise CircuitOpen(target, self.cooldown_s)
            ts.probing = True

    def record_success(self, target: str) -> None:
        ts = self._state(target)
        ts.state = "closed"
        ts.failures = 0
        ts.probing = False

    def record_failure(self, target: str) -> None:
        ts = self._state(target)
        if ts.state == "half_open":
            # The probe failed: re-open for a fresh cooldown.
            ts.state = "open"
            ts.opened_at = self._clock()
            ts.probing = False
            return
        ts.failures += 1
        if ts.failures >= self.threshold:
            ts.state = "open"
            ts.opened_at = self._clock()

    def state_of(self, target: str) -> str:
        return self._targets[target].state if target in self._targets else "closed"

    def describe(self) -> dict:
        """Non-closed targets and their state (for ``/healthz``)."""
        return {
            name: {"state": ts.state, "failures": ts.failures}
            for name, ts in sorted(self._targets.items())
            if ts.state != "closed" or ts.failures
        }

    @property
    def open_count(self) -> int:
        return sum(1 for ts in self._targets.values() if ts.state != "closed")
