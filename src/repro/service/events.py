"""Per-job event fan-out with bounded per-client buffers.

Every job owns one :class:`EventBroker`.  The sweep thread pushes
events through the event loop into each subscriber's bounded
``asyncio.Queue`` — **never** awaiting, so a slow or stalled SSE client
cannot block the worker or grow server memory:

* *droppable* events (periodic metrics snapshots, anything a client
  can cheaply live without) are simply discarded when a subscriber's
  queue is full;
* *critical* events (per-point progress, errors, the terminal status)
  evict the subscriber's oldest buffered event instead, so the
  terminal event always gets through and the buffer stays bounded.

The broker also keeps a bounded replay ``history`` of critical events:
a client that connects after the job started (or finished) first
receives everything that already happened, then the live stream — that
is what makes "submit, then open the SSE stream" race-free.  The
history is capped (``history_limit``): a very long job drops its
*oldest* replay events rather than growing server RSS without bound,
and late subscribers get a leading ``truncated`` marker frame telling
them how many events aged out (the terminal status and recent tail are
always intact).
"""

from __future__ import annotations

import asyncio
from collections import deque

__all__ = ["EventBroker", "TERMINAL_EVENTS"]

#: Event names that end an SSE stream (job reached a final state).
TERMINAL_EVENTS = ("done", "failed", "cancelled")


class EventBroker:
    """Bounded pub/sub for one job's event stream."""

    def __init__(self, buffer: int = 256, history_limit: int = 10_000) -> None:
        self.buffer = buffer
        self.history_limit = history_limit
        self.history: deque[tuple[str, dict]] = deque(maxlen=history_limit)
        self.trimmed = 0  # critical events aged out of history
        self.dropped = 0  # events a full subscriber queue lost
        self._subscribers: set[asyncio.Queue] = set()

    def publish(self, event: str, data: dict, *, droppable: bool = False) -> None:
        """Fan ``(event, data)`` out to history and every subscriber.

        Never blocks and never raises on slow consumers; see the module
        docstring for the droppable/critical distinction.
        """
        if not droppable:
            if len(self.history) == self.history_limit:
                self.trimmed += 1
            self.history.append((event, data))
        for queue in list(self._subscribers):
            try:
                queue.put_nowait((event, data))
            except asyncio.QueueFull:
                self.dropped += 1
                if droppable:
                    continue
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - full implies non-empty
                    pass
                queue.put_nowait((event, data))

    def subscribe(self) -> tuple[list[tuple[str, dict]], asyncio.Queue]:
        """Attach a new consumer.

        Returns ``(replay, queue)``: the critical events published so
        far, and the bounded live queue.  Both are taken in one event
        loop step, so no event is ever missed or delivered twice.  When
        the history cap already dropped old events, the replay leads
        with a ``truncated`` marker frame carrying the drop count, so a
        late client knows its view of the early job is incomplete.
        """
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.buffer)
        self._subscribers.add(queue)
        replay = list(self.history)
        if self.trimmed:
            replay.insert(
                0, ("truncated", {"trimmed": self.trimmed, "kept": len(replay)})
            )
        return replay, queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self._subscribers.discard(queue)

    @property
    def subscribers(self) -> int:
        return len(self._subscribers)
