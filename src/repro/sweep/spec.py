"""Sweep declarations: parameter grids, canonical configs, cache keys.

A sweep is a list of *points* (plain JSON-able config dicts) evaluated
against one named *target* (see :mod:`repro.sweep.targets`).  Two
disciplines defined here make the engine deterministic and cacheable:

* **Canonicalization** — a point's identity is the canonical JSON of
  its merged config (sorted keys, minimal separators).  Key order in
  the source dict never matters; ``{"a": 1, "b": 2}`` and
  ``{"b": 2, "a": 1}`` are the same point.
* **Seed derivation** — each point gets a child seed
  ``derive_seed(root_seed, "sweep/<target>/<canonical config>")``
  (:func:`repro.core.rng.derive_seed`), a pure function of the root
  seed and the point's content.  Worker count and scheduling order
  cannot shift any point's stream.  A config may pin ``"seed"``
  explicitly instead, which is how ablations hold the workload fixed
  while varying one knob (every bench refactored onto the engine does
  this).

The cache key (:func:`point_key`) hashes target name, canonical
config, effective seed and the package version, so a cached result is
invalidated by any change to what produced it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field

import repro

from ..core.rng import derive_seed

__all__ = ["SweepSpec", "canonical_config", "grid", "point_key"]


def canonical_config(config: dict) -> str:
    """The canonical JSON form of a point config.

    Sorted keys and minimal separators, so dict ordering and formatting
    never affect a point's identity or cache key.  Raises ``TypeError``
    for values that do not round-trip through JSON (configs must be
    plain data — they cross process boundaries and live in cache files).
    """
    try:
        return json.dumps(config, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"sweep configs must be JSON-serializable: {exc}") from exc


def point_key(target: str, config: dict, seed: int, version: str) -> str:
    """Content-addressed cache key of one evaluated point.

    A SHA-256 over the canonical JSON of everything that determines the
    result: target name, canonicalized config, the effective seed, and
    the package version (a new release invalidates old entries, since
    any model change may move the numbers).
    """
    payload = canonical_config(
        {"config": config, "seed": seed, "target": target, "version": version}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def grid(**axes) -> list[dict]:
    """The Cartesian product of named axes as a list of point configs.

    ``grid(rate=[2, 4], mode=["a", "b"])`` yields four dicts in
    row-major order of the declared axes.  A scalar axis value is
    treated as a one-element axis, so fixed keys can ride along.
    """
    names = list(axes)
    columns = [v if isinstance(v, (list, tuple)) else [v] for v in axes.values()]
    return [dict(zip(names, combo)) for combo in itertools.product(*columns)]


@dataclass(frozen=True)
class SweepSpec:
    """One declared sweep: a target plus the points to evaluate.

    Attributes:
        target: Registered target name (:mod:`repro.sweep.targets`).
        points: Point configs; each is merged over ``base``.
        base: Config shared by every point (a point key wins on clash).
        seed: Root seed; each point derives its own child seed from it
            unless the merged config pins ``"seed"`` explicitly.
        version: Package version baked into cache keys.  Defaults to
            ``repro.__version__``; overridable so tests can prove a
            version bump invalidates the cache.
        name: Optional label for reports.
    """

    target: str
    points: tuple[dict, ...] = ()
    base: dict = field(default_factory=dict)
    seed: int = 0
    version: str = repro.__version__
    name: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(dict(p) for p in self.points))
        if not self.points:
            raise ValueError("a sweep needs at least one point")

    def configs(self) -> list[dict]:
        """The merged per-point configs, in declaration order."""
        return [{**self.base, **point} for point in self.points]

    def point_seed(self, config: dict) -> int:
        """The effective seed of one merged config (see module doc)."""
        if "seed" in config:
            return int(config["seed"])
        return derive_seed(self.seed, f"sweep/{self.target}/{canonical_config(config)}")

    def key(self, config: dict) -> str:
        """The cache key of one merged config."""
        return point_key(self.target, config, self.point_seed(config), self.version)
