"""The sweep engine: cache-aware parallel fan-out over grid points.

:func:`run_sweep` evaluates every point of a :class:`SweepSpec`:

1. **Cache probe** — each point's content-addressed key is looked up
   in the :class:`SweepCache` (when one is given); hits skip
   evaluation entirely.
2. **Fan-out** — misses run through a ``ProcessPoolExecutor``
   (``fork`` start method where available, so targets registered at
   runtime are visible in workers).  Each point carries its own child
   seed derived from the root seed and the point's canonical config
   (:meth:`SweepSpec.point_seed`), so results are byte-identical
   regardless of worker count or completion order — pinned by
   ``tests/test_sweep.py``.
3. **Cache fill** — fresh results are written back atomically, so an
   interrupted sweep resumes where it stopped and a re-run after a
   config edit recomputes only the new/changed points.

Observability: one tracer span per evaluated point (wall clock,
relative to sweep start), instant events for cache hits, and
``sweep.points`` / ``sweep.evaluated`` / ``sweep.cache_hits`` counters
plus a ``sweep.progress`` gauge in the metrics registry.
:func:`print_sweep_summary` renders the per-point results through
:func:`repro.obs.summary.print_table`.

The deterministic JSON document (:meth:`SweepResult.to_json`) excludes
wall-clock timings; ``evaluated``/``cache_hits`` counts and per-point
``cached`` flags are included (they depend only on prior cache state,
never on worker count).  :meth:`SweepResult.to_report_json` is the
cache-*independent* variant — identical bytes whether the sweep ran
cold, warm, or was interrupted and resumed.

Long-lived callers (the experiment service) hook in three ways: an
``on_point`` callback pushes each settled point as it happens, an
``interrupt`` callable cancels mid-sweep (:class:`SweepInterrupted`),
and ``strict=False`` turns per-point failures into structured error
records instead of aborting the whole sweep.

Hostile points — ones that hang, kill their own worker, or fail
transiently — wedge or abort the pool paths above.  Passing
``supervise=SupervisorPolicy(...)`` routes evaluation through
:mod:`repro.sweep.supervise` instead: one forked process per attempt
with per-attempt timeouts, worker-death recovery, deterministic-backoff
retries, and poison-point quarantine.
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..obs.summary import print_table
from .cache import SweepCache
from .spec import SweepSpec, canonical_config
from .supervise import SupervisorPolicy, run_supervised
from .targets import get_target

__all__ = [
    "PointResult",
    "SweepInterrupted",
    "SweepResult",
    "print_sweep_summary",
    "run_sweep",
]


class SweepInterrupted(RuntimeError):
    """Raised when ``run_sweep``'s ``interrupt`` callable fires.

    Every point completed before the interrupt is already in the cache
    (when one is given), so re-running the same spec resumes where the
    interrupted sweep stopped.
    """

    def __init__(self, done: int, total: int) -> None:
        super().__init__(f"sweep interrupted after {done}/{total} points")
        self.done = done
        self.total = total


@dataclass(frozen=True)
class PointResult:
    """One evaluated (or cache-served) grid point.

    ``result`` is ``None`` exactly when ``error`` is set — a structured
    record of a failed evaluation (only produced under ``strict=False``;
    see :func:`run_sweep`).
    """

    index: int
    config: dict
    seed: int
    key: str
    result: dict | None
    cached: bool
    elapsed: float  # evaluation wall seconds; 0.0 for a cache hit
    error: dict | None = None


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced, in point-declaration order."""

    target: str
    seed: int
    version: str
    points: tuple[PointResult, ...]
    wall_time: float

    @property
    def evaluated(self) -> int:
        """Points actually computed this run."""
        return sum(1 for p in self.points if not p.cached)

    @property
    def cache_hits(self) -> int:
        """Points served from the cache."""
        return sum(1 for p in self.points if p.cached)

    @property
    def errors(self) -> int:
        """Points whose evaluation failed (``strict=False`` only)."""
        return sum(1 for p in self.points if p.error is not None)

    def records(self) -> list[dict | None]:
        """The per-point result dicts, in order (``None`` for failures)."""
        return [p.result for p in self.points]

    def payload(self) -> dict:
        """The deterministic document (no wall-clock fields)."""
        return {
            "target": self.target,
            "seed": self.seed,
            "version": self.version,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "points": [
                {
                    "config": p.config,
                    "seed": p.seed,
                    "key": p.key,
                    "cached": p.cached,
                    "result": p.result,
                    **({"error": p.error} if p.error is not None else {}),
                }
                for p in self.points
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON of :meth:`payload` — byte-identical for the
        same sweep at any worker count."""
        return json.dumps(self.payload(), indent=2, sort_keys=True) + "\n"

    def report_payload(self) -> dict:
        """The *cache-independent* result document.

        :meth:`payload` records how each point was obtained (``cached``
        flags, hit/evaluated counts), which depends on prior cache
        state.  This document strips that provenance, keeping only what
        the sweep computed — so an interrupted sweep resumed from the
        cache produces a report byte-identical to an uninterrupted run
        of the same spec.  The experiment service serves this as the
        job's report artifact.
        """
        return {
            "target": self.target,
            "seed": self.seed,
            "version": self.version,
            "points": [
                {
                    "config": p.config,
                    "seed": p.seed,
                    "key": p.key,
                    "result": p.result,
                    **({"error": p.error} if p.error is not None else {}),
                }
                for p in self.points
            ],
        }

    def to_report_json(self) -> str:
        """Canonical JSON of :meth:`report_payload`."""
        return json.dumps(self.report_payload(), indent=2, sort_keys=True) + "\n"


def merged_windows_section(points) -> dict | None:
    """Cross-point telemetry rollup for a sweep's ``windows`` section.

    ``points`` is a payload-style point list (dicts with a ``result``)
    — :meth:`SweepResult.payload`, :meth:`SweepResult.report_payload`
    or a parsed report artifact all qualify.  Per-point window rollups
    are combined *exactly* via :func:`repro.obs.merge_window_rollups`
    (histogram buckets add, not percentiles), then summarized.  Returns
    ``None`` when no point carried windows, so callers can keep the
    section out of default output entirely.
    """
    from ..obs import merge_window_rollups, window_summaries

    rollups = [
        p["result"]["windows"]
        for p in points
        if isinstance(p.get("result"), dict) and p["result"].get("windows")
    ]
    if not rollups:
        return None
    merged = merge_window_rollups(rollups)
    return {
        "points": len(rollups),
        "merged": merged,
        "summaries": window_summaries(merged),
    }


def _evaluate(
    target: str, config: dict, seed: int, epoch: float, capture: bool = False
) -> tuple[dict | None, dict | None, float, float]:
    """Worker entry point: run one target and time it.

    Returns ``(result, error, start_offset, elapsed)`` with the start
    offset relative to the sweep's epoch, so the parent can lay the
    point out as a span on a shared wall-clock timeline.  With
    ``capture`` (the ``strict=False`` path) an exception becomes a
    structured error record instead of propagating — the traceback is
    formatted *here*, in the failing process, so the record is
    identical whether the point ran in-process or in a forked worker.
    """
    start = time.perf_counter()
    error = None
    if capture:
        try:
            result = get_target(target)(config, seed)
        except Exception as exc:  # noqa: BLE001 - converted to a record
            result = None
            error = {
                "target": target,
                "config": canonical_config(config),
                "seed": seed,
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
            }
    else:
        result = get_target(target)(config, seed)
    end = time.perf_counter()
    return result, error, start - epoch, end - start


def _pool_context():
    """Prefer ``fork``: cheap on Linux and it inherits targets
    registered after import (custom bench/test targets)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # platform default


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    cache: SweepCache | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    progress: bool = False,
    strict: bool = True,
    on_point: Callable[[PointResult], None] | None = None,
    interrupt: Callable[[], bool] | None = None,
    supervise: SupervisorPolicy | None = None,
) -> SweepResult:
    """Evaluate every point of ``spec``; see the module docstring.

    Args:
        spec: The sweep declaration.
        workers: Process fan-out for cache misses (1 = in-process).
        cache: Result cache; ``None`` disables caching entirely.
        tracer: Optional span tracer (defaults to the null object).
        metrics: Optional registry for counters and the progress gauge.
        progress: Print ``done/total`` lines to stderr as points finish.
        strict: With the default ``True``, the first failing point
            raises immediately (the original exception, unchanged).
            With ``False``, a failure becomes a structured error record
            on its :class:`PointResult` (target, canonical config,
            seed, traceback string); the sweep keeps going and failed
            points are never cached, so a re-run retries them.
        on_point: Called once per point as it settles — cache hits
            first (in index order), then evaluations in completion
            order.  This is the push-style progress hook the experiment
            service streams SSE events from; it runs on the sweep
            thread, so callbacks must be cheap and must not raise.
        interrupt: Polled between completions; returning ``True``
            cancels the pending work and raises
            :class:`SweepInterrupted`.  Completed points are already
            cached, so the same spec resumes incrementally.
        supervise: Evaluate cache misses under a
            :class:`~repro.sweep.supervise.SupervisorPolicy` — every
            point (even at ``workers=1``) runs in its own forked
            process with per-attempt timeouts, worker-death recovery,
            deterministic-backoff retries, and quarantine after
            ``max_attempts`` failures.  With ``strict=True`` a
            quarantined point raises
            :class:`~repro.sweep.supervise.PointQuarantined`; with
            ``strict=False`` it becomes a worker-count-independent
            ``PointQuarantined`` error record (never cached).
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    tracer = NULL_TRACER if tracer is None else tracer
    configs = spec.configs()
    seeds = [spec.point_seed(c) for c in configs]
    keys = [spec.key(c) for c in configs]
    total = len(configs)

    epoch = time.perf_counter()
    results: list[dict | None] = [None] * total
    errors: list[dict | None] = [None] * total
    timings: list[tuple[float, float]] = [(0.0, 0.0)] * total
    cached = [False] * total

    def _point(i: int) -> PointResult:
        return PointResult(
            index=i,
            config=configs[i],
            seed=seeds[i],
            key=keys[i],
            result=results[i],
            cached=cached[i],
            elapsed=timings[i][1],
            error=errors[i],
        )

    if cache is not None:
        # One batched probe (per-shard membership index + scandir)
        # instead of one failed open per cold key — the difference is
        # felt by search frontiers probing thousands of points a rung.
        hits = cache.get_many(keys)
        for i, key in enumerate(keys):
            hit = hits[key]
            if hit is not None:
                results[i] = hit
                cached[i] = True
                if on_point is not None:
                    on_point(_point(i))

    missing = [i for i in range(total) if not cached[i]]
    done = total - len(missing)

    gauge = metrics.gauge("sweep.progress") if metrics is not None else None
    if gauge is not None:
        gauge.set(done / total)

    def _interrupted() -> bool:
        return interrupt is not None and interrupt()

    def _finish(
        i: int, result: dict | None, error: dict | None, started: float, elapsed: float
    ) -> None:
        nonlocal done
        results[i] = result
        errors[i] = error
        timings[i] = (started, elapsed)
        if cache is not None and error is None:
            cache.put(
                keys[i],
                target=spec.target,
                config=configs[i],
                seed=seeds[i],
                version=spec.version,
                result=result,
            )
        done += 1
        if gauge is not None:
            gauge.set(done / total)
        if progress:
            print(f"sweep: {done}/{total} points ({elapsed:.2f}s)", file=sys.stderr)
        if on_point is not None:
            on_point(_point(i))

    capture = not strict
    if _interrupted():
        raise SweepInterrupted(done, total)
    if supervise is not None and missing:
        try:
            run_supervised(
                target=spec.target,
                configs=configs,
                seeds=seeds,
                indices=missing,
                policy=supervise,
                workers=workers,
                epoch=epoch,
                strict=strict,
                finish=_finish,
                interrupted=_interrupted,
                metrics=metrics,
            )
        except InterruptedError:
            raise SweepInterrupted(done, total) from None
    elif len(missing) > 1 and workers > 1:
        ctx = _pool_context()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(missing)), mp_context=ctx
        ) as pool:
            pending = {
                pool.submit(
                    _evaluate, spec.target, configs[i], seeds[i], epoch, capture
                ): i
                for i in missing
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    i = pending.pop(future)
                    result, error, started, elapsed = future.result()
                    _finish(i, result, error, started, elapsed)
                if pending and _interrupted():
                    for future in pending:
                        future.cancel()
                    raise SweepInterrupted(done, total)
    else:
        for i in missing:
            if _interrupted():
                raise SweepInterrupted(done, total)
            result, error, started, elapsed = _evaluate(
                spec.target, configs[i], seeds[i], epoch, capture
            )
            _finish(i, result, error, started, elapsed)

    wall = time.perf_counter() - epoch
    tracer.process(0, f"sweep:{spec.name or spec.target}")
    for i in range(total):
        started, elapsed = timings[i]
        if cached[i]:
            tracer.instant(f"cache_hit[{i}]", "sweep", 0, i, 0.0, args={"key": keys[i][:12]})
        else:
            tracer.complete(
                f"point[{i}]", "sweep", 0, i, max(started, 0.0), elapsed,
                args={"key": keys[i][:12]},
            )
    if metrics is not None:
        metrics.counter("sweep.points").inc(total)
        metrics.counter("sweep.evaluated").inc(len(missing))
        metrics.counter("sweep.cache_hits").inc(total - len(missing))

    points = tuple(_point(i) for i in range(total))
    return SweepResult(
        target=spec.target,
        seed=spec.seed,
        version=spec.version,
        points=points,
        wall_time=wall,
    )


def _scalar(value: object) -> bool:
    return isinstance(value, (int, float, str, bool)) or value is None


def print_sweep_summary(result: SweepResult, columns: list[str] | None = None) -> None:
    """Per-sweep summary table: config axes, then scalar result keys.

    Config columns are the keys that *vary* across points (fixed base
    keys add noise, not information); ``columns`` restricts the result
    columns, which otherwise default to every scalar key of the first
    record.
    """
    configs = [p.config for p in result.points]
    varying = [
        k
        for k in configs[0]
        if any(p.config.get(k) != configs[0][k] for p in result.points)
    ] or list(configs[0])[:3]
    first = next((p.result for p in result.points if p.result is not None), {})
    if columns is None:
        columns = [k for k, v in first.items() if _scalar(v)]
    rows = []
    for p in result.points:
        row: list[object] = [p.index] + [p.config.get(k) for k in varying]
        record = p.result if p.result is not None else {}
        row.extend(record.get(k) for k in columns)
        if p.error is not None:
            row.append(f"ERROR {p.error['type']}")
        elif p.cached:
            row.append("cache")
        else:
            row.append(f"{p.elapsed:.2f}s")
        rows.append(row)
    print_table(
        f"sweep '{result.target}': "
        f"{len(result.points)} points, {result.evaluated} evaluated, "
        f"{result.cache_hits} cached, {result.wall_time:.2f}s",
        ["#", *varying, *columns, "time"],
        rows,
    )
