"""The sweep engine: cache-aware parallel fan-out over grid points.

:func:`run_sweep` evaluates every point of a :class:`SweepSpec`:

1. **Cache probe** — each point's content-addressed key is looked up
   in the :class:`SweepCache` (when one is given); hits skip
   evaluation entirely.
2. **Fan-out** — misses run through a ``ProcessPoolExecutor``
   (``fork`` start method where available, so targets registered at
   runtime are visible in workers).  Each point carries its own child
   seed derived from the root seed and the point's canonical config
   (:meth:`SweepSpec.point_seed`), so results are byte-identical
   regardless of worker count or completion order — pinned by
   ``tests/test_sweep.py``.
3. **Cache fill** — fresh results are written back atomically, so an
   interrupted sweep resumes where it stopped and a re-run after a
   config edit recomputes only the new/changed points.

Observability: one tracer span per evaluated point (wall clock,
relative to sweep start), instant events for cache hits, and
``sweep.points`` / ``sweep.evaluated`` / ``sweep.cache_hits`` counters
plus a ``sweep.progress`` gauge in the metrics registry.
:func:`print_sweep_summary` renders the per-point results through
:func:`repro.obs.summary.print_table`.

The deterministic JSON document (:meth:`SweepResult.to_json`) excludes
wall-clock timings; ``evaluated``/``cache_hits`` counts and per-point
``cached`` flags are included (they depend only on prior cache state,
never on worker count).
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..obs.summary import print_table
from .cache import SweepCache
from .spec import SweepSpec
from .targets import get_target

__all__ = ["PointResult", "SweepResult", "print_sweep_summary", "run_sweep"]


@dataclass(frozen=True)
class PointResult:
    """One evaluated (or cache-served) grid point."""

    index: int
    config: dict
    seed: int
    key: str
    result: dict
    cached: bool
    elapsed: float  # evaluation wall seconds; 0.0 for a cache hit


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced, in point-declaration order."""

    target: str
    seed: int
    version: str
    points: tuple[PointResult, ...]
    wall_time: float

    @property
    def evaluated(self) -> int:
        """Points actually computed this run."""
        return sum(1 for p in self.points if not p.cached)

    @property
    def cache_hits(self) -> int:
        """Points served from the cache."""
        return sum(1 for p in self.points if p.cached)

    def records(self) -> list[dict]:
        """The per-point result dicts, in order."""
        return [p.result for p in self.points]

    def payload(self) -> dict:
        """The deterministic document (no wall-clock fields)."""
        return {
            "target": self.target,
            "seed": self.seed,
            "version": self.version,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "points": [
                {
                    "config": p.config,
                    "seed": p.seed,
                    "key": p.key,
                    "cached": p.cached,
                    "result": p.result,
                }
                for p in self.points
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON of :meth:`payload` — byte-identical for the
        same sweep at any worker count."""
        return json.dumps(self.payload(), indent=2, sort_keys=True) + "\n"


def _evaluate(target: str, config: dict, seed: int, epoch: float) -> tuple[dict, float, float]:
    """Worker entry point: run one target and time it.

    Returns ``(result, start_offset, elapsed)`` with the start offset
    relative to the sweep's epoch, so the parent can lay the point out
    as a span on a shared wall-clock timeline.
    """
    start = time.perf_counter()
    result = get_target(target)(config, seed)
    end = time.perf_counter()
    return result, start - epoch, end - start


def _pool_context():
    """Prefer ``fork``: cheap on Linux and it inherits targets
    registered after import (custom bench/test targets)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # platform default


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    cache: SweepCache | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    progress: bool = False,
) -> SweepResult:
    """Evaluate every point of ``spec``; see the module docstring.

    Args:
        spec: The sweep declaration.
        workers: Process fan-out for cache misses (1 = in-process).
        cache: Result cache; ``None`` disables caching entirely.
        tracer: Optional span tracer (defaults to the null object).
        metrics: Optional registry for counters and the progress gauge.
        progress: Print ``done/total`` lines to stderr as points finish.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    tracer = NULL_TRACER if tracer is None else tracer
    configs = spec.configs()
    seeds = [spec.point_seed(c) for c in configs]
    keys = [spec.key(c) for c in configs]
    total = len(configs)

    epoch = time.perf_counter()
    results: list[dict | None] = [None] * total
    timings: list[tuple[float, float]] = [(0.0, 0.0)] * total
    cached = [False] * total
    if cache is not None:
        for i, key in enumerate(keys):
            hit = cache.get(key)
            if hit is not None:
                results[i] = hit
                cached[i] = True

    missing = [i for i in range(total) if results[i] is None]
    done = total - len(missing)

    gauge = metrics.gauge("sweep.progress") if metrics is not None else None
    if gauge is not None:
        gauge.set(done / total)

    def _finish(i: int, result: dict, started: float, elapsed: float) -> None:
        nonlocal done
        results[i] = result
        timings[i] = (started, elapsed)
        if cache is not None:
            cache.put(
                keys[i],
                target=spec.target,
                config=configs[i],
                seed=seeds[i],
                version=spec.version,
                result=result,
            )
        done += 1
        if gauge is not None:
            gauge.set(done / total)
        if progress:
            print(f"sweep: {done}/{total} points ({elapsed:.2f}s)", file=sys.stderr)

    if len(missing) > 1 and workers > 1:
        ctx = _pool_context()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(missing)), mp_context=ctx
        ) as pool:
            pending = {
                pool.submit(_evaluate, spec.target, configs[i], seeds[i], epoch): i
                for i in missing
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    i = pending.pop(future)
                    result, started, elapsed = future.result()
                    _finish(i, result, started, elapsed)
    else:
        for i in missing:
            result, started, elapsed = _evaluate(spec.target, configs[i], seeds[i], epoch)
            _finish(i, result, started, elapsed)

    wall = time.perf_counter() - epoch
    tracer.process(0, f"sweep:{spec.name or spec.target}")
    for i in range(total):
        started, elapsed = timings[i]
        if cached[i]:
            tracer.instant(f"cache_hit[{i}]", "sweep", 0, i, 0.0, args={"key": keys[i][:12]})
        else:
            tracer.complete(
                f"point[{i}]", "sweep", 0, i, max(started, 0.0), elapsed,
                args={"key": keys[i][:12]},
            )
    if metrics is not None:
        metrics.counter("sweep.points").inc(total)
        metrics.counter("sweep.evaluated").inc(len(missing))
        metrics.counter("sweep.cache_hits").inc(total - len(missing))

    points = tuple(
        PointResult(
            index=i,
            config=configs[i],
            seed=seeds[i],
            key=keys[i],
            result=results[i],
            cached=cached[i],
            elapsed=timings[i][1],
        )
        for i in range(total)
    )
    return SweepResult(
        target=spec.target,
        seed=spec.seed,
        version=spec.version,
        points=points,
        wall_time=wall,
    )


def _scalar(value: object) -> bool:
    return isinstance(value, (int, float, str, bool)) or value is None


def print_sweep_summary(result: SweepResult, columns: list[str] | None = None) -> None:
    """Per-sweep summary table: config axes, then scalar result keys.

    Config columns are the keys that *vary* across points (fixed base
    keys add noise, not information); ``columns`` restricts the result
    columns, which otherwise default to every scalar key of the first
    record.
    """
    configs = [p.config for p in result.points]
    varying = [
        k
        for k in configs[0]
        if any(p.config.get(k) != configs[0][k] for p in result.points)
    ] or list(configs[0])[:3]
    first = result.points[0].result
    if columns is None:
        columns = [k for k, v in first.items() if _scalar(v)]
    rows = []
    for p in result.points:
        row: list[object] = [p.index] + [p.config.get(k) for k in varying]
        row.extend(p.result.get(k) for k in columns)
        row.append("cache" if p.cached else f"{p.elapsed:.2f}s")
        rows.append(row)
    print_table(
        f"sweep '{result.target}': "
        f"{len(result.points)} points, {result.evaluated} evaluated, "
        f"{result.cache_hits} cached, {result.wall_time:.2f}s",
        ["#", *varying, *columns, "time"],
        rows,
    )
