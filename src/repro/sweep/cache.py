"""Content-addressed on-disk result cache for sweeps.

Each evaluated point is one JSON file named by its cache key
(:func:`repro.sweep.spec.point_key`) under a two-hex-char shard
directory, mirroring git's object store layout::

    <root>/ab/abcdef....json

An entry is self-describing — it stores the target, merged config,
effective seed and package version alongside the result — so a cache
directory can be audited with ``jq`` and an entry can be validated
against the key that addresses it.  Anything wrong with an entry
(unparsable JSON, missing fields, a key mismatch from corruption or a
truncated write) is treated as a miss and silently recomputed; writes
go through a temp file + ``os.replace`` so concurrent sweeps sharing a
cache directory never observe half-written entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["DEFAULT_CACHE_DIR", "SweepCache"]

#: Default cache root; override per-run with ``--cache-dir`` or
#: globally with the ``REPRO_SWEEP_CACHE`` environment variable.
DEFAULT_CACHE_DIR = "~/.cache/repro-sweep"


def _resolve_root(root: str | Path | None) -> Path:
    if root is None:
        root = os.environ.get("REPRO_SWEEP_CACHE") or DEFAULT_CACHE_DIR
    return Path(root).expanduser()


class SweepCache:
    """A directory of content-addressed point results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = _resolve_root(root)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored result for ``key``, or ``None`` on miss.

        A corrupted or foreign entry — unreadable, unparsable, missing
        the ``result`` field, or recorded under a different key — is a
        miss, never an error: the point is recomputed and the entry
        overwritten.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def put(
        self, key: str, *, target: str, config: dict, seed: int, version: str, result: dict
    ) -> Path:
        """Atomically record one evaluated point."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "target": target,
            "config": config,
            "seed": seed,
            "version": version,
            "result": result,
        }
        body = json.dumps(entry, indent=2, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))
