"""Content-addressed on-disk result cache for sweeps.

Each evaluated point is one JSON file named by its cache key
(:func:`repro.sweep.spec.point_key`) under a two-hex-char shard
directory, mirroring git's object store layout::

    <root>/ab/abcdef....json

An entry is self-describing — it stores the target, merged config,
effective seed and package version alongside the result — so a cache
directory can be audited with ``jq`` and an entry can be validated
against the key that addresses it.  Anything wrong with an entry
(unparsable JSON, missing fields, a key mismatch from corruption or a
truncated write) is treated as a miss and silently recomputed; writes
go through a temp file + ``os.replace`` so concurrent sweeps sharing a
cache directory never observe half-written entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["DEFAULT_CACHE_DIR", "SweepCache"]

#: Default cache root; override per-run with ``--cache-dir`` or
#: globally with the ``REPRO_SWEEP_CACHE`` environment variable.
DEFAULT_CACHE_DIR = "~/.cache/repro-sweep"


def _resolve_root(root: str | Path | None) -> Path:
    if root is None:
        root = os.environ.get("REPRO_SWEEP_CACHE") or DEFAULT_CACHE_DIR
    return Path(root).expanduser()


class SweepCache:
    """A directory of content-addressed point results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = _resolve_root(root)
        # Per-shard membership index for get_many: shard name →
        # (dir mtime_ns, {keys present}).  Process-local and advisory —
        # see _shard_keys for the staleness argument.
        self._shards: dict[str, tuple[int, set[str]]] = {}

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored result for ``key``, or ``None`` on miss.

        A corrupted or foreign entry — unreadable, unparsable, missing
        the ``result`` field, or recorded under a different key — is a
        miss, never an error: the point is recomputed and the entry
        overwritten.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def _shard_keys(self, shard: str) -> set[str]:
        """Keys present in one shard directory, via the in-memory index.

        The index entry is validated against the directory's current
        ``st_mtime_ns`` and rebuilt with a single ``os.scandir`` when
        another process has written to the shard.  Staleness is safe by
        construction: a key *in* the index is still fully validated by
        :meth:`get` (a deleted or corrupted file is a miss), and a key
        *missing* from the index merely causes a recompute — the engine
        then overwrites the entry with identical content.  Our own
        :meth:`put` updates the entry in place, so probe→evaluate→probe
        loops (search rungs) never rescan shards only we are writing.
        """
        path = self.root / shard
        try:
            mtime = path.stat().st_mtime_ns
        except OSError:
            self._shards.pop(shard, None)
            return set()
        cached = self._shards.get(shard)
        if cached is not None and cached[0] == mtime:
            return cached[1]
        keys = set()
        with os.scandir(path) as it:
            for entry in it:
                name = entry.name
                if name.endswith(".json"):
                    keys.add(name[: -len(".json")])
        self._shards[shard] = (mtime, keys)
        return keys

    def get_many(self, keys: list[str]) -> dict[str, dict | None]:
        """Probe many keys in one pass: ``{key: result-or-None}``.

        Misses are resolved from the per-shard membership index — one
        ``stat`` + (at most) one ``scandir`` per *shard* instead of one
        failed ``open`` per *key* — so a mostly-cold probe of a large
        search frontier touches the filesystem O(shards), not O(keys).
        Hits still go through :meth:`get`'s full per-entry validation.
        Warm/cold timings are recorded by ``benchmarks/bench_optimize.py``
        (``get_many`` section): ~4× fewer syscalls on an all-miss probe
        of 4k keys, identical results to per-key :meth:`get`.
        """
        out: dict[str, dict | None] = {}
        by_shard: dict[str, list[str]] = {}
        for key in keys:
            by_shard.setdefault(key[:2], []).append(key)
        for shard in sorted(by_shard):
            present = self._shard_keys(shard)
            for key in by_shard[shard]:
                out[key] = self.get(key) if key in present else None
        return out

    def put(
        self, key: str, *, target: str, config: dict, seed: int, version: str, result: dict
    ) -> Path:
        """Atomically record one evaluated point."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "target": target,
            "config": config,
            "seed": seed,
            "version": version,
            "result": result,
        }
        body = json.dumps(entry, indent=2, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # Keep the shard index warm for this process: record the key
        # under the directory's post-write mtime so the next get_many
        # neither rescans nor misses what we just wrote.
        shard = key[:2]
        cached = self._shards.get(shard)
        if cached is not None:
            keys = cached[1]
            keys.add(key)
            try:
                self._shards[shard] = (path.parent.stat().st_mtime_ns, keys)
            except OSError:
                self._shards.pop(shard, None)
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))
