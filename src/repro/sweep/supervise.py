"""Supervised sweep execution: timeouts, retries, quarantine, recovery.

The plain :func:`repro.sweep.run_sweep` fan-out trusts its workers: a
point that hangs forever wedges the sweep, and a worker that dies
(OOM-killed, segfaulted, SIGKILL'd) breaks the whole
``ProcessPoolExecutor`` and aborts the grid.  That is exactly the
failure model the paper's reliability sections (§5) argue a control
plane must survive — so this module applies the repository's own
fault-injection philosophy to the sweep engine itself.

:func:`run_supervised` replaces the shared pool with **one forked
process per attempt**, each reporting over its own pipe, so the
supervisor can observe and act on every failure mode independently:

* **timeout** — an attempt that exceeds ``timeout_s`` is SIGKILL'd and
  recorded as a structured ``PointTimeout`` failure;
* **worker death** — an attempt whose process exits without reporting
  (killed from outside, or from *inside* by the point itself) is a
  ``WorkerDied`` failure; only that point is affected, never the grid;
* **retry** — failed attempts are retried up to
  ``SupervisorPolicy.max_attempts`` with exponential backoff whose
  jitter derives from the point's content seed
  (:func:`retry_delay_s`), so retry *schedules* are deterministic and
  worker-count independent even though wall-clock is not;
* **quarantine** — a point that exhausts its attempts becomes a
  ``PointQuarantined`` error record carrying the per-attempt failure
  history.  Quarantined records are byte-identical at any worker
  count and are never written to the result cache, so a later run
  (with the poison fixed) retries them.

Every spawned process is joined (or killed and joined) before
:func:`run_supervised` returns — including on interrupt and on
exception — so a supervised sweep never leaks orphan workers.

The observable counters (``sweep.retries``, ``sweep.timeouts``,
``sweep.worker_deaths``, ``sweep.quarantined``) land in the metrics
registry passed by the caller, which is how the experiment service
exports them as ``/metrics`` families per job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Callable

from ..core.rng import derive_seed
from ..obs import MetricsRegistry
from .spec import canonical_config

__all__ = [
    "PointQuarantined",
    "SupervisorPolicy",
    "current_attempt",
    "retry_delay_s",
    "run_supervised",
]

#: Attempt number of the point evaluation running in *this* process
#: (1-based).  Set by the supervisor in the forked child before the
#: target runs; stays 1 in unsupervised / in-process evaluation.  Chaos
#: policies (:mod:`repro.chaos`) read it to sabotage only early
#: attempts.
_ATTEMPT = 1

#: Supervisor poll tick (seconds): the upper bound on how late a
#: timeout kill, retry launch, or interrupt check can fire.
_TICK_S = 0.02


def current_attempt() -> int:
    """The 1-based attempt number of the current point evaluation."""
    return _ATTEMPT


class PointQuarantined(RuntimeError):
    """A point exhausted its attempts under ``strict=True``.

    Carries the structured quarantine ``record`` (the same dict that
    ``strict=False`` would have attached to the :class:`PointResult`).
    """

    def __init__(self, record: dict) -> None:
        super().__init__(
            f"sweep point quarantined after {record['attempts']} attempts: "
            f"{record['message']}"
        )
        self.record = record


@dataclass(frozen=True)
class SupervisorPolicy:
    """How hard the supervisor defends a sweep against its own points.

    Attributes:
        timeout_s: Per-*attempt* wall-clock budget; an overdue attempt
            is killed and counted as a ``PointTimeout`` failure.
            ``None`` disables the watchdog (hangs then block forever,
            as unsupervised).
        max_attempts: Total attempts per point (first try included).
            A point still failing after the last attempt is
            quarantined.
        backoff_base_s: Backoff before attempt 2; doubles per attempt.
        backoff_cap_s: Upper bound on any single backoff delay.
    """

    timeout_s: float | None = None
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")


def retry_delay_s(policy: SupervisorPolicy, point_seed: int, attempt: int) -> float:
    """Backoff before ``attempt`` (>= 2) of the point seeded ``point_seed``.

    Exponential in the attempt number, capped, with a deterministic
    jitter factor in ``[0.5, 1.0]`` derived from the point's content
    seed — two sweeps of the same spec retry on the same schedule, and
    colliding points (many retries at once) spread out without any
    shared RNG state.
    """
    base = min(policy.backoff_cap_s, policy.backoff_base_s * 2 ** (attempt - 2))
    jitter = derive_seed(point_seed, f"sweep/backoff/{attempt}") % 2**20 / 2**20
    return base * (0.5 + 0.5 * jitter)


def _failure_record(
    kind: str, message: str, *, target: str, config: dict, seed: int, attempt: int
) -> dict:
    """One structured attempt-failure record (parent-side kinds)."""
    return {
        "target": target,
        "config": canonical_config(config),
        "seed": seed,
        "type": kind,
        "message": message,
        "attempt": attempt,
    }


def _quarantine_record(
    *, target: str, config: dict, seed: int, failures: list[dict]
) -> dict:
    """The terminal error record of a poison point.

    Everything in it is a pure function of the point and its
    deterministic failure history — no pids, no wall-clock — so
    quarantined points serialize byte-identically at any worker count.
    """
    kinds = [f["type"] for f in failures]
    return {
        "target": target,
        "config": canonical_config(config),
        "seed": seed,
        "type": "PointQuarantined",
        "message": f"quarantined after {len(failures)} failed attempts "
        f"({', '.join(kinds)})",
        "attempts": len(failures),
        "failures": [
            {"attempt": f["attempt"], "type": f["type"], "message": f["message"]}
            for f in failures
        ],
    }


def _attempt_main(conn, target: str, config: dict, seed: int, epoch: float, attempt: int):
    """Child entry point: run one attempt, report over the pipe.

    Runs with capture on — an exception becomes a structured record
    formatted here, in the failing process (identical to the
    unsupervised ``strict=False`` records, plus the attempt number).
    If the point kills its own process nothing is sent and the parent
    reads EOF, which is precisely the worker-death signal.
    """
    global _ATTEMPT
    _ATTEMPT = attempt
    from .runner import _evaluate

    try:
        result, error, started, elapsed = _evaluate(
            target, config, seed, epoch, capture=True
        )
        if error is not None:
            error["attempt"] = attempt
        conn.send((result, error, started, elapsed))
    finally:
        conn.close()


class _Running:
    """One in-flight attempt: the process, its pipe, and its deadline."""

    __slots__ = ("index", "attempt", "proc", "conn", "deadline", "started")

    def __init__(self, index, attempt, proc, conn, deadline, started):
        self.index = index
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started = started


def run_supervised(
    *,
    target: str,
    configs: list[dict],
    seeds: list[int],
    indices: list[int],
    policy: SupervisorPolicy,
    workers: int,
    epoch: float,
    strict: bool,
    finish: Callable[[int, dict | None, dict | None, float, float], None],
    interrupted: Callable[[], bool],
    metrics: MetricsRegistry | None = None,
) -> None:
    """Evaluate ``indices`` of ``configs`` under ``policy``.

    Called by :func:`repro.sweep.run_sweep` when a supervisor policy is
    given; every point — even at ``workers=1`` — runs in its own forked
    process so the parent survives anything the point does.  Settled
    points (success or terminal quarantine) are delivered through
    ``finish`` exactly as the unsupervised paths deliver theirs; with
    ``strict`` the first quarantined point raises
    :class:`PointQuarantined` instead.

    ``interrupted`` is polled every tick; when it fires, all in-flight
    attempt processes are killed and joined before the
    :class:`InterruptedError` sentinel propagates to the runner (which
    re-raises its public :class:`repro.sweep.SweepInterrupted`).
    """
    import multiprocessing

    ctx = (
        multiprocessing.get_context("fork")
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_context()
    )

    retries = metrics.counter("sweep.retries") if metrics is not None else None
    timeouts = metrics.counter("sweep.timeouts") if metrics is not None else None
    deaths = metrics.counter("sweep.worker_deaths") if metrics is not None else None
    quarantined = metrics.counter("sweep.quarantined") if metrics is not None else None

    #: (index, attempt, not_before) — attempts eligible to launch.
    pending: list[tuple[int, int, float]] = [(i, 1, 0.0) for i in indices]
    running: list[_Running] = []
    failures: dict[int, list[dict]] = {}

    def _spawn(index: int, attempt: int) -> None:
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_attempt_main,
            args=(send, target, configs[index], seeds[index], epoch, attempt),
            daemon=True,
        )
        proc.start()
        send.close()  # parent keeps only the read end: EOF == child gone
        now = time.monotonic()
        deadline = None if policy.timeout_s is None else now + policy.timeout_s
        running.append(_Running(index, attempt, proc, recv, deadline, now))

    def _reap(run: _Running) -> None:
        running.remove(run)
        run.proc.join()
        run.conn.close()

    def _fail(run: _Running, record: dict) -> None:
        history = failures.setdefault(run.index, [])
        history.append(record)
        if run.attempt < policy.max_attempts:
            if retries is not None:
                retries.inc()
            delay = retry_delay_s(policy, seeds[run.index], run.attempt + 1)
            pending.append((run.index, run.attempt + 1, time.monotonic() + delay))
            return
        terminal = _quarantine_record(
            target=target,
            config=configs[run.index],
            seed=seeds[run.index],
            failures=history,
        )
        if quarantined is not None:
            quarantined.inc()
        if strict:
            raise PointQuarantined(terminal)
        finish(run.index, None, terminal, 0.0, time.monotonic() - run.started)

    try:
        while pending or running:
            if interrupted():
                raise InterruptedError
            now = time.monotonic()
            # Launch every eligible attempt the worker budget allows.
            eligible = sorted(
                (t for t in pending if t[2] <= now), key=lambda t: (t[2], t[0])
            )
            for task in eligible[: max(0, workers - len(running))]:
                pending.remove(task)
                _spawn(task[0], task[1])

            if not running:
                time.sleep(_TICK_S)
                continue
            ready = connection.wait((r.conn for r in running), timeout=_TICK_S)
            for run in [r for r in running if r.conn in ready]:
                try:
                    result, error, started, elapsed = run.conn.recv()
                except EOFError:
                    # The process ended without reporting: it was killed
                    # (possibly by the point itself) or crashed hard.
                    _reap(run)
                    if deaths is not None:
                        deaths.inc()
                    _fail(
                        run,
                        _failure_record(
                            "WorkerDied",
                            f"worker process died without reporting "
                            f"(exitcode {run.proc.exitcode})",
                            target=target,
                            config=configs[run.index],
                            seed=seeds[run.index],
                            attempt=run.attempt,
                        ),
                    )
                    continue
                _reap(run)
                if error is None:
                    finish(run.index, result, None, started, elapsed)
                else:
                    _fail(run, error)

            now = time.monotonic()
            for run in [r for r in running if r.deadline is not None and now >= r.deadline]:
                run.proc.kill()
                _reap(run)
                if timeouts is not None:
                    timeouts.inc()
                _fail(
                    run,
                    _failure_record(
                        "PointTimeout",
                        f"attempt exceeded timeout_s={policy.timeout_s:g}",
                        target=target,
                        config=configs[run.index],
                        seed=seeds[run.index],
                        attempt=run.attempt,
                    ),
                )
    finally:
        # Whatever path exits — done, interrupt, quarantine-raise — no
        # attempt process may outlive the sweep.
        for run in running:
            run.proc.kill()
        for run in running:
            run.proc.join()
            run.conn.close()
        running.clear()
