"""Sweep targets: named, picklable entry points for the engine.

A *target* is a function ``fn(config: dict, seed: int) -> dict`` —
plain JSON-able data in, plain JSON-able data out.  That shape is what
makes the engine's three promises possible:

* **fan-out** — configs and results cross process boundaries, so they
  must pickle trivially; workers resolve the target by *name* from
  this registry, never by shipping code objects;
* **determinism** — the result must be a pure function of
  ``(config, seed)``; the engine derives ``seed`` per point, so a
  target must route every stochastic choice through it;
* **caching** — the result is stored verbatim in the content-addressed
  cache, so it must round-trip through JSON.

Built-in targets wrap the three discrete-event simulators.  Register a
custom one with :func:`register_target`; with the default ``fork``
start method, targets registered before :func:`repro.sweep.run_sweep`
is called are visible to worker processes too.

``serving`` — :class:`repro.serving.ServingSimulator`.  Flat config
keys map onto ``WorkloadSpec`` (``request_rate``, ``num_requests``,
``prompt_mean``, …), ``SchedulerConfig`` (``max_concurrent_per_gpu``,
…) and ``SimConfig`` (``mode``, ``prefill_gpus``, ``decode_gpus``,
``kv_blocks_per_gpu``, ``block_tokens``, ``context_bucket``); plus
``mtp``/``mtp_acceptance``, a ``faults`` schedule dict
(``FaultSchedule.to_json`` shape), a ``recovery`` kwargs dict, and the
telemetry pair ``window_s`` (window width) / ``slo`` (a rule list for
:func:`repro.obs.parse_slo_rules`) — when set, each point's record
gains mergeable ``windows`` and an ``alerts`` timeline.  Points run in
constant-memory streaming mode unless ``record_requests`` is true.

``flowsim`` — shifted-ring all-to-all on a two-layer fat tree through
:class:`repro.network.FlowSimulator` (``num_leaves``,
``hosts_per_leaf``, ``num_spines``, ``shifts``, ``size_bytes``,
``sim_mode``).  Deterministic: the seed is accepted but unused.

``training`` — :func:`repro.training.simulate_checkpointed_training`
(``work_s``, ``interval_s``, ``checkpoint_s``, ``restart_s``,
``mtbf_s``, optional ``faults``).
"""

from __future__ import annotations

from dataclasses import fields
from typing import Callable

__all__ = ["get_target", "register_target", "target_names"]

Target = Callable[[dict, int], dict]

_REGISTRY: dict[str, Target] = {}


def register_target(name: str, fn: Target | None = None):
    """Register ``fn`` as a sweep target (usable as a decorator)."""

    def _register(fn: Target) -> Target:
        _REGISTRY[name] = fn
        return fn

    return _register(fn) if fn is not None else _register


def get_target(name: str) -> Target:
    """Resolve a registered target by name.

    ``chaos`` and ``optimize`` resolve lazily — importing
    :mod:`repro.chaos` / :mod:`repro.optimize` registers them — so CLI
    and service jobs can name either without a prior import.
    """
    if name == "chaos" and name not in _REGISTRY:
        import repro.chaos  # noqa: F401 - registers the target
    if name == "optimize" and name not in _REGISTRY:
        import repro.optimize  # noqa: F401 - registers the target

    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown sweep target {name!r} (registered: {known})") from None


def target_names() -> list[str]:
    """Registered target names, sorted."""
    return sorted(_REGISTRY)


def _split_kwargs(cfg: dict, cls) -> dict:
    """Pop every key of ``cfg`` that is a dataclass field of ``cls``."""
    names = {f.name for f in fields(cls)}
    return {k: cfg.pop(k) for k in list(cfg) if k in names}


@register_target("serving")
def _serving_target(config: dict, seed: int) -> dict:
    from ..faults import FaultSchedule, RecoveryPolicy
    from ..serving import (
        MTPConfig,
        SchedulerConfig,
        ServingSimulator,
        SimConfig,
        StepCostModel,
        WorkloadSpec,
        compact_record,
    )

    cfg = dict(config)
    cfg.pop("seed", None)  # already folded into the point seed
    workload = WorkloadSpec(**_split_kwargs(cfg, WorkloadSpec))
    scheduler = SchedulerConfig(**_split_kwargs(cfg, SchedulerConfig))
    mtp = MTPConfig(
        enabled=bool(cfg.pop("mtp", False)),
        **({"acceptance_rate": cfg.pop("mtp_acceptance")} if "mtp_acceptance" in cfg else {}),
    )
    faults = cfg.pop("faults", None)
    recovery = cfg.pop("recovery", None)
    # Telemetry opts: a window width plus SLO monitor rules (compact
    # strings or SloRule.to_dict() shapes — both JSON-able, so they are
    # legal cache-key material like every other config key).
    window_s = cfg.pop("window_s", None)
    slo_rules = cfg.pop("slo", None)
    # Economics opt-in: a $/GPU-hour figure turns on the objective-ready
    # cost_per_token / goodput_tokens_per_s fields in the compact record
    # (repro.serving.report).  Absent, payloads are byte-identical to
    # pre-economics output.
    gpu_cost_per_hour = cfg.pop("gpu_cost_per_hour", None)
    sim = SimConfig(
        workload=workload,
        costs=StepCostModel(mtp=mtp),
        scheduler=scheduler,
        mode=cfg.pop("mode", "colocated"),
        prefill_gpus=cfg.pop("prefill_gpus", 2),
        decode_gpus=cfg.pop("decode_gpus", 6),
        kv_blocks_per_gpu=cfg.pop("kv_blocks_per_gpu", None),
        block_tokens=cfg.pop("block_tokens", 64),
        context_bucket=cfg.pop("context_bucket", 512),
        seed=seed,
        # Streaming aggregation by default — sweep points routinely run
        # large request counts, and compact_record only reads aggregate
        # fields.  record_requests=True opts back into exact per-request
        # records (identical aggregates, O(requests) memory).
        record_requests=bool(cfg.pop("record_requests", False)),
        faults=FaultSchedule.from_json(faults) if faults else None,
        **({"recovery": RecoveryPolicy(**recovery)} if recovery else {}),
        **({"window_s": window_s} if window_s is not None else {}),
        **({"slo_rules": tuple(slo_rules)} if slo_rules else {}),
    )
    if cfg:
        raise ValueError(f"unknown serving sweep keys: {sorted(cfg)}")
    economics = (
        {"gpus": sim.prefill_gpus + sim.decode_gpus, "gpu_cost_per_hour": gpu_cost_per_hour}
        if gpu_cost_per_hour is not None
        else {}
    )
    return compact_record(ServingSimulator(sim).run(), **economics)


@register_target("flowsim")
def _flowsim_target(config: dict, seed: int) -> dict:
    del seed  # the routed shifted-ring pattern is fully deterministic
    from ..network import FlowSimulator, shifted_ring_flows, two_layer_fat_tree

    cfg = dict(config)
    cfg.pop("seed", None)
    topo = two_layer_fat_tree(
        num_leaves=cfg.pop("num_leaves", 4),
        hosts_per_leaf=cfg.pop("hosts_per_leaf", 4),
        num_spines=cfg.pop("num_spines", 4),
    )
    flows = shifted_ring_flows(
        topo, range(1, 1 + cfg.pop("shifts", 3)), cfg.pop("size_bytes", 64e6)
    )
    mode = cfg.pop("sim_mode", "event")
    if cfg:
        raise ValueError(f"unknown flowsim sweep keys: {sorted(cfg)}")
    result = FlowSimulator(topo).simulate(flows, mode=mode)
    total = sum(f.size for f in flows)
    return {
        "flows": len(flows),
        "makespan_ms": result.makespan * 1e3,
        "aggregate_gbytes_per_s": total / result.makespan / 1e9 if result.makespan else 0.0,
    }


@register_target("training")
def _training_target(config: dict, seed: int) -> dict:
    from ..faults import FaultSchedule
    from ..training import simulate_checkpointed_training

    cfg = dict(config)
    cfg.pop("seed", None)
    faults = cfg.pop("faults", None)
    report = simulate_checkpointed_training(
        cfg.pop("work_s", 48 * 3600.0),
        cfg.pop("interval_s", 3600.0),
        cfg.pop("checkpoint_s", 60.0),
        cfg.pop("restart_s", 300.0),
        mtbf=cfg.pop("mtbf_s", None),
        faults=FaultSchedule.from_json(faults) if faults else None,
        seed=seed,
    )
    if cfg:
        raise ValueError(f"unknown training sweep keys: {sorted(cfg)}")
    return report.asdict()
