"""Deterministic parallel experiment engine with result caching.

Every quantitative claim this repository regenerates — the paper's
tables, the TPOT limits, the routing and serving ablations — is a
*sweep*: one model or simulator evaluated over a parameter grid.  This
package is the shared fan-out + memoization layer those sweeps run on:

* :func:`grid` / :class:`SweepSpec` — declare a Cartesian grid or an
  explicit point list over any registered target;
* :func:`run_sweep` — evaluate the points across a process pool, each
  with a child seed derived from the root seed and the point's
  canonical config, so output is byte-identical at any worker count;
* :class:`SweepCache` — a content-addressed on-disk cache keyed by
  target + canonical config + seed + package version, so an unchanged
  point is never recomputed and an edited sweep re-runs incrementally;
* :func:`register_target` — plug in any callable; the serving,
  network-flow and checkpointed-training simulators ship registered.

``repro sweep --target serving --grid request_rate=2,4,8 --workers 4``
is the CLI face; the grid-heavy benchmarks are built on the same
engine.
"""

from .cache import DEFAULT_CACHE_DIR, SweepCache
from .runner import (
    PointResult,
    SweepInterrupted,
    SweepResult,
    merged_windows_section,
    print_sweep_summary,
    run_sweep,
)
from .spec import SweepSpec, canonical_config, grid, point_key
from .supervise import (
    PointQuarantined,
    SupervisorPolicy,
    current_attempt,
    retry_delay_s,
)
from .targets import get_target, register_target, target_names

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SweepCache",
    "PointQuarantined",
    "PointResult",
    "SupervisorPolicy",
    "SweepInterrupted",
    "SweepResult",
    "current_attempt",
    "merged_windows_section",
    "print_sweep_summary",
    "retry_delay_s",
    "run_sweep",
    "SweepSpec",
    "canonical_config",
    "grid",
    "point_key",
    "get_target",
    "register_target",
    "target_names",
]
