"""Command-line interface: regenerate the paper's headline analyses.

Usage::

    python -m repro <command> [options]

Commands:

* ``summary [model]`` — architecture summary (Figure 1 as text).
* ``table1`` — KV cache comparison.
* ``table2`` — training cost comparison.
* ``table3`` — topology size/cost comparison.
* ``table5`` — link-layer latency comparison.
* ``tpot`` — §2.3.2 inference speed limits.
* ``budget [--tokens T]`` — training GPU-hour/dollar budget.
"""

from __future__ import annotations

import argparse
import sys

from .model import (
    DEEPSEEK_V2,
    DEEPSEEK_V3,
    LLAMA31_405B,
    MODEL_CATALOG,
    QWEN25_72B,
    compare_kv_cache,
    compare_training_cost,
)
from .model.summary import architecture_summary

COMPARISON_MODELS = [DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B]


def _cmd_summary(args: argparse.Namespace) -> None:
    model = MODEL_CATALOG[args.model]
    print(architecture_summary(model))


def _cmd_table1(args: argparse.Namespace) -> None:
    del args
    for row in compare_kv_cache(COMPARISON_MODELS, DEEPSEEK_V3):
        print(
            f"{row.model_name:<16} ({row.attention_kind:>3})  "
            f"{row.kb_per_token:8.3f} KB/token  {row.multiplier:5.2f}x"
        )


def _cmd_table2(args: argparse.Namespace) -> None:
    del args
    models = [DEEPSEEK_V2, DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B]
    for row in compare_training_cost(models):
        print(
            f"{row.model_name:<16} {row.kind:<6} {row.total_params / 1e9:6.0f}B  "
            f"{row.gflops_per_token:8.1f} GFLOPS/token"
        )


def _cmd_table3(args: argparse.Namespace) -> None:
    del args
    from .network import table3_rows

    for row in table3_rows():
        s = row.spec
        print(
            f"{s.name:<5} endpoints {s.endpoints:>7,}  switches {s.switches:>6,}  "
            f"links {s.links:>7,}  ${row.cost_musd:7.1f}M  "
            f"${row.cost_per_endpoint_kusd:.2f}k/EP"
        )


def _cmd_table5(args: argparse.Namespace) -> None:
    del args
    from .network import table5_rows

    for row in table5_rows():
        cross = "-" if row.cross_leaf_us is None else f"{row.cross_leaf_us:.2f} us"
        print(f"{row.link_layer:<12} same leaf {row.same_leaf_us:.2f} us  cross leaf {cross}")


def _cmd_tpot(args: argparse.Namespace) -> None:
    del args
    from .inference import compare_interconnects

    for row in compare_interconnects():
        print(
            f"{row.system:<22} stage {row.comm_stage_us:7.2f} us  "
            f"TPOT {row.tpot_ms:6.2f} ms  {row.tokens_per_second:7.0f} tok/s"
        )


def _cmd_budget(args: argparse.Namespace) -> None:
    from .parallel import (
        TrainingJobConfig,
        simulate_training_step,
        training_cost_usd,
        training_gpu_hours,
    )

    report = simulate_training_step(TrainingJobConfig())
    tokens = args.tokens * 1e12
    print(f"step {report.step_time:.2f} s, {report.tokens_per_day / 1e9:.1f} B tokens/day")
    print(f"{args.tokens:.1f}T tokens: {training_gpu_hours(report, tokens) / 1e6:.3f} M GPU-hours")
    print(f"cost @ $2/GPU-hour: ${training_cost_usd(report, tokens) / 1e6:.2f} M")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DeepSeek-V3 ISCA'25 reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="architecture summary")
    p.add_argument("model", nargs="?", default="deepseek-v3", choices=sorted(MODEL_CATALOG))
    p.set_defaults(func=_cmd_summary)

    for name, func, help_text in (
        ("table1", _cmd_table1, "KV cache per token (Table 1)"),
        ("table2", _cmd_table2, "training GFLOPS/token (Table 2)"),
        ("table3", _cmd_table3, "topology comparison (Table 3)"),
        ("table5", _cmd_table5, "link latency (Table 5)"),
        ("tpot", _cmd_tpot, "EP inference speed limits (Section 2.3.2)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(func=func)

    p = sub.add_parser("budget", help="training GPU-hours and cost")
    p.add_argument("--tokens", type=float, default=14.8, help="training tokens, in trillions")
    p.set_defaults(func=_cmd_budget)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
