"""Command-line interface: regenerate the paper's headline analyses.

Usage::

    python -m repro <command> [options]

Commands:

* ``summary [model]`` — architecture summary (Figure 1 as text).
* ``table1`` — KV cache comparison.
* ``table2`` — training cost comparison.
* ``table3`` — topology size/cost comparison.
* ``table5`` — link-layer latency comparison.
* ``tpot`` — §2.3.2 inference speed limits.
* ``budget [--tokens T]`` — training GPU-hour/dollar budget.
* ``serve-sim`` — request-level serving simulation (§2.3.1–§2.3.3);
  ``--json`` dumps the full ``SimReport`` as machine-readable JSON.
  Streams by default (constant memory — ``--requests 1000000`` is
  routine, with periodic progress on stderr for large runs);
  ``--record`` keeps exact per-request records and the per-request
  degradation breakdown.
* ``trace`` — run a simulator scenario with the observability layer
  on, write a Chrome trace-event file (chrome://tracing / Perfetto)
  and print a top-K span/metric summary.
* ``sweep`` — evaluate a parameter grid over a registered sweep
  target (``serving``, ``flowsim``, ``training``) across a process
  pool with content-addressed result caching: ``--grid k=a,b,c``
  declares an axis (repeatable, Cartesian product), ``--set k=v``
  fixes a shared key, ``--workers N`` fans out, ``--no-cache`` /
  ``--cache-dir`` control memoization and ``--json`` emits the
  deterministic result document (byte-identical at any worker count).
* ``serve`` — run the long-lived experiment service
  (:mod:`repro.service`): submit sweeps as jobs over HTTP, stream live
  progress and obs metrics over SSE, resume interrupted jobs from the
  journal + sweep cache after a restart, fetch report/trace artifacts;
  ``GET /metrics`` is the OpenMetrics exposition and ``GET /dash`` a
  self-contained live HTML dashboard.
* ``metrics`` — scrape a running service's ``/metrics`` exposition
  (``--json`` for the legacy snapshot shape).
* ``dash`` — one-shot terminal dashboard for a running service: job
  table plus server self-telemetry (sparklines for time series,
  percentiles for histograms).

``serve-sim --window SECONDS`` turns on windowed telemetry (tumbling
windows over the sim clock: per-window throughput, goodput, queue
depth, latency percentiles) and ``--slo RULE`` (repeatable) evaluates
SLO rules — ``burn>RATE[@OBJECTIVE]`` burn-rate rules or
``METRIC<OP>VALUE`` threshold rules — over those windows into a
deterministic fire/resolve alert timeline.  ``sweep --windows`` /
``--slo`` do the same per point; the ``--json`` document then gains a
cross-point ``windows`` section merged via ``Histogram.merge``.

``repro --version`` prints the package version.  An unknown subcommand
exits 2 with the usage message (pinned by ``tests/test_cli_summary.py``).

Both simulator commands accept ``--profile`` to run under cProfile and
print the hottest functions as a table (``--profile-top`` rows), and
``--faults`` to inject failures mid-run: either a schedule JSON file
(``repro.faults.FaultSchedule.to_json``) or ``mtbf:MTBF[:MTTR[:HORIZON]]``
for seeded Poisson sampling.  ``serve-sim --faults`` appends the
degradation section (goodput before/during/after each outage, retry and
lost-work totals); ``trace --scenario network --faults`` fails
inter-switch links under the flow simulation; ``trace --scenario
training --faults`` runs the checkpoint/restart goodput simulation.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import __version__
from .model import (
    DEEPSEEK_V2,
    DEEPSEEK_V3,
    LLAMA31_405B,
    MODEL_CATALOG,
    QWEN25_72B,
    compare_kv_cache,
    compare_training_cost,
)
from .model.summary import architecture_summary

COMPARISON_MODELS = [DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B]


def _cmd_summary(args: argparse.Namespace) -> None:
    model = MODEL_CATALOG[args.model]
    print(architecture_summary(model))


def _cmd_table1(args: argparse.Namespace) -> None:
    del args
    for row in compare_kv_cache(COMPARISON_MODELS, DEEPSEEK_V3):
        print(
            f"{row.model_name:<16} ({row.attention_kind:>3})  "
            f"{row.kb_per_token:8.3f} KB/token  {row.multiplier:5.2f}x"
        )


def _cmd_table2(args: argparse.Namespace) -> None:
    del args
    models = [DEEPSEEK_V2, DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B]
    for row in compare_training_cost(models):
        print(
            f"{row.model_name:<16} {row.kind:<6} {row.total_params / 1e9:6.0f}B  "
            f"{row.gflops_per_token:8.1f} GFLOPS/token"
        )


def _cmd_table3(args: argparse.Namespace) -> None:
    del args
    from .network import table3_rows

    for row in table3_rows():
        s = row.spec
        print(
            f"{s.name:<5} endpoints {s.endpoints:>7,}  switches {s.switches:>6,}  "
            f"links {s.links:>7,}  ${row.cost_musd:7.1f}M  "
            f"${row.cost_per_endpoint_kusd:.2f}k/EP"
        )


def _cmd_table5(args: argparse.Namespace) -> None:
    del args
    from .network import table5_rows

    for row in table5_rows():
        cross = "-" if row.cross_leaf_us is None else f"{row.cross_leaf_us:.2f} us"
        print(f"{row.link_layer:<12} same leaf {row.same_leaf_us:.2f} us  cross leaf {cross}")


def _cmd_tpot(args: argparse.Namespace) -> None:
    del args
    from .inference import compare_interconnects

    for row in compare_interconnects():
        print(
            f"{row.system:<22} stage {row.comm_stage_us:7.2f} us  "
            f"TPOT {row.tpot_ms:6.2f} ms  {row.tokens_per_second:7.0f} tok/s"
        )


def _cmd_budget(args: argparse.Namespace) -> None:
    from .parallel import (
        TrainingJobConfig,
        simulate_training_step,
        training_cost_usd,
        training_gpu_hours,
    )

    report = simulate_training_step(TrainingJobConfig())
    tokens = args.tokens * 1e12
    print(f"step {report.step_time:.2f} s, {report.tokens_per_day / 1e9:.1f} B tokens/day")
    print(f"{args.tokens:.1f}T tokens: {training_gpu_hours(report, tokens) / 1e6:.3f} M GPU-hours")
    print(f"cost @ $2/GPU-hour: ${training_cost_usd(report, tokens) / 1e6:.2f} M")


def _run_profiled(args: argparse.Namespace, thunk):
    """Run ``thunk``, under cProfile when ``--profile`` is set.

    The profile is rendered with the same fixed-width table formatter
    the trace summaries use, so ``--profile`` output slots into the
    existing observability report style.
    """
    if not getattr(args, "profile", False):
        return thunk()
    import cProfile
    import pstats

    from .obs.summary import print_table

    profiler = cProfile.Profile()
    result = profiler.runcall(thunk)
    stats = pstats.Stats(profiler)
    rows = []
    ordered = sorted(stats.stats.items(), key=lambda kv: kv[1][3], reverse=True)
    for (filename, lineno, name), (_cc, ncalls, tottime, cumtime, _callers) in ordered:
        if len(rows) >= args.profile_top:
            break
        where = f"{filename.rsplit('/', 1)[-1]}:{lineno}"
        rows.append([name, where, ncalls, round(tottime, 4), round(cumtime, 4)])
    print_table(
        f"profile: top {len(rows)} functions by cumulative time",
        ["function", "where", "calls", "tottime s", "cumtime s"],
        rows,
    )
    return result


def _serving_config(args: argparse.Namespace):
    """Build the ``SimConfig`` shared by ``serve-sim`` and ``trace``."""
    from .serving import MTPConfig, SimConfig, StepCostModel, WorkloadSpec

    if args.smoke:
        workload = WorkloadSpec(
            request_rate=4.0,
            num_requests=40,
            prompt_mean=256,
            prompt_cv=0.3,
            output_mean=64,
            output_cv=0.3,
            arrival=args.arrival,
        )
    else:
        workload = WorkloadSpec(
            request_rate=args.rate,
            num_requests=args.requests,
            arrival=args.arrival,
        )
    faults = None
    if getattr(args, "faults", None):
        from .faults import parse_faults_arg

        # Sampled schedules need a horizon: twice the mean arrival span
        # comfortably covers the decode tail of the workload.
        horizon = 2.0 * workload.num_requests / workload.request_rate
        targets = ("pool",) if args.mode == "colocated" else ("prefill", "decode")
        faults = parse_faults_arg(
            args.faults, horizon=horizon, seed=args.seed, kind="gpu", targets=targets
        )
    window = getattr(args, "window", None)
    slo_rules = getattr(args, "slo", None) or []
    if slo_rules and window is None:
        raise SystemExit("--slo requires --window SECONDS")
    return SimConfig(
        workload=workload,
        costs=StepCostModel(mtp=MTPConfig(enabled=args.mtp)),
        mode=args.mode,
        prefill_gpus=args.prefill_gpus,
        decode_gpus=args.decode_gpus,
        seed=args.seed,
        faults=faults,
        record_requests=bool(getattr(args, "record", False)),
        **({"window_s": window} if window is not None else {}),
        **({"slo_rules": tuple(slo_rules)} if slo_rules else {}),
    )


#: serve-sim prints periodic progress only past this size — small runs
#: finish in well under a second and the extra lines would be noise.
_PROGRESS_MIN_REQUESTS = 10_000


def _serve_sim_progress(args: argparse.Namespace):
    """Progress callback for large ``serve-sim`` runs, or ``None``.

    Bounded output: the simulator fires every 5% of retired requests
    (≤ 21 lines for any request count).  Lines go to stderr so they
    never pollute piped output, and ``--json`` silences them entirely.
    """
    if args.json or args.requests < _PROGRESS_MIN_REQUESTS:
        return None

    def on_progress(done: int, total: int, sim_time: float) -> None:
        print(
            f"  {done:>{len(str(total))}}/{total} requests "
            f"({done / total:4.0%})  sim t={sim_time:,.1f}s",
            file=sys.stderr,
            flush=True,
        )

    return on_progress


def _print_degradation(degradation) -> None:
    from .faults import NEVER

    print(
        f"faults: admitted {degradation.admitted} = finished {degradation.finished}"
        f" + dropped {degradation.dropped} + unserved {degradation.unserved}"
        f"  (identity {'holds' if degradation.accounted else 'VIOLATED'})"
    )
    print(
        f"  shed {degradation.shed}  retries {degradation.retries}  "
        f"retry-dropped {degradation.retry_dropped}  evicted {degradation.evicted}  "
        f"steps aborted {degradation.steps_aborted}  lost tokens {degradation.lost_tokens}"
    )
    for w in degradation.windows:
        end = "never" if w.end == NEVER else f"{w.end:.1f}s"
        print(
            f"  {w.kind} fault on '{w.target}' at {w.start:.1f}s (repair {end}, "
            f"-{w.gpus_lost} GPUs): goodput {w.goodput_before:.2f} -> "
            f"{w.goodput_during:.2f} -> {w.goodput_after:.2f} req/s, "
            f"SLO {w.slo_before:.0%} -> {w.slo_during:.0%} -> {w.slo_after:.0%}"
        )


def _cmd_serve_sim(args: argparse.Namespace) -> None:
    from .serving import ServingSimulator, report_asdict

    simulator = ServingSimulator(
        _serving_config(args), on_progress=_serve_sim_progress(args)
    )
    report = _run_profiled(args, simulator.run)
    if args.json:
        print(json.dumps(report_asdict(report), indent=2, sort_keys=True))
        return
    ms = 1e3
    print(
        f"mode {args.mode}  gpus {args.prefill_gpus}+{args.decode_gpus}  "
        f"mtp {'on' if args.mtp else 'off'}  seed {args.seed}"
    )
    print(
        f"completed {report.completed}  preemptions {report.preemptions}  "
        f"duration {report.duration:.2f} s"
    )
    print(
        f"TTFT  p50 {report.ttft.p50 * ms:8.1f} ms  p99 {report.ttft.p99 * ms:8.1f} ms"
    )
    print(
        f"TPOT  p50 {report.tpot.p50 * ms:8.2f} ms  p99 {report.tpot.p99 * ms:8.2f} ms"
    )
    print(
        f"E2E   p50 {report.e2e.p50:8.2f} s   p99 {report.e2e.p99:8.2f} s"
    )
    print(
        f"throughput {report.throughput_tokens_per_s:,.0f} tok/s  "
        f"goodput {report.goodput_requests_per_s:.2f} req/s  "
        f"SLO attainment {report.slo_attainment:.0%}"
    )
    print(
        f"KV occupancy mean {report.mean_kv_occupancy:.1%} peak {report.peak_kv_occupancy:.1%}  "
        f"queue depth mean {report.mean_queue_depth:.1f} max {report.max_queue_depth}"
    )
    if args.mtp:
        print(f"MTP acceptance (measured) {report.mtp_acceptance_measured:.1%}")
    if report.degradation is not None:
        _print_degradation(report.degradation)
    if report.windows is not None:
        from .obs import sparkline, window_summaries

        summaries = window_summaries(list(report.windows))
        throughput = [s["throughput_tokens_per_s"] for s in summaries]
        attainment = [
            1.0 if s["slo_attainment"] is None else s["slo_attainment"]
            for s in summaries
        ]
        print(
            f"windows ({len(summaries)} x {args.window:g}s)  "
            f"throughput {sparkline(throughput)}  attainment {sparkline(attainment)}"
        )
    if report.alerts is not None:
        if not report.alerts:
            print("slo: monitored, no alerts")
        for a in report.alerts:
            ctx = (
                f"  (during {a.get('fault_target', '?')} fault)"
                if a.get("during_fault")
                else ""
            )
            print(
                f"slo: {a['state']:<7} t={a['time']:.1f}s  {a['rule']}  "
                f"value {a['value']:.3f} limit {a['limit']:g}{ctx}"
            )


def _trace_serving(args: argparse.Namespace, tracer, metrics) -> str:
    from .serving import ServingSimulator

    report = ServingSimulator(_serving_config(args), tracer=tracer, metrics=metrics).run()
    return (
        f"serving: {report.completed} requests, {report.preemptions} preemptions, "
        f"TPOT p99 {report.tpot.p99 * 1e3:.2f} ms over {report.duration:.2f} s"
    )


def _trace_network(args: argparse.Namespace, tracer, metrics) -> str:
    from .network import FlowSimulator, two_layer_fat_tree
    from .network.routing import RoutingPolicy, route_flow

    topo = two_layer_fat_tree(num_leaves=4, hosts_per_leaf=4, num_spines=4)
    hosts = topo.hosts
    shifts = range(1, 4 if args.smoke else len(hosts))
    size = 64e6 if args.smoke else 1e9
    flows = []
    for shift in shifts:
        for i, src in enumerate(hosts):
            dst = hosts[(i + shift) % len(hosts)]
            flows.extend(
                route_flow(topo, src, dst, size, RoutingPolicy.ECMP, tag=f"shift{shift}")
            )
    sim = FlowSimulator(topo, tracer=tracer, metrics=metrics)
    faults = None
    if getattr(args, "faults", None):
        from .faults import link_target, parse_faults_arg
        from .network import INTERSWITCH_LINK

        links = tuple(
            link_target(a, b)
            for a, b, data in topo.graph.edges(data=True)
            if data["kind"] == INTERSWITCH_LINK
        )
        faults = parse_faults_arg(
            args.faults, horizon=1.0, seed=args.seed, kind="link", targets=links
        )
    result = sim.simulate(flows, faults=faults)
    headline = (
        f"network: {len(flows)} flows over {topo.name}, "
        f"makespan {result.makespan * 1e3:.2f} ms"
    )
    fault_report = getattr(sim, "fault_report", None)
    if fault_report is not None:
        headline += (
            f"; faults: {fault_report.events} events, "
            f"{len(fault_report.rerouted)} rerouted, "
            f"{len(fault_report.stalled)} stalled, "
            f"{len(fault_report.unfinished)} unfinished, "
            f"stall time {fault_report.stall_time * 1e3:.2f} ms"
        )
    return headline


def _trace_training(args: argparse.Namespace, tracer, metrics) -> str:
    from .model.config import TINY_MLA_MOE
    from .training import TrainableTransformer, markov_corpus, train

    if getattr(args, "faults", None):
        from .faults import parse_faults_arg
        from .reliability import optimal_checkpoint_interval
        from .training import simulate_checkpointed_training

        work = 4 * 3600.0 if args.smoke else 48 * 3600.0
        checkpoint_cost, restart_cost = 60.0, 300.0
        schedule = parse_faults_arg(
            args.faults, horizon=3 * work, seed=args.seed, kind="step", targets=("trainer",)
        )
        if args.faults.startswith("mtbf:"):
            mtbf = float(args.faults.split(":")[1])
            interval = optimal_checkpoint_interval(checkpoint_cost, mtbf)
        else:
            interval = work / 48
        report = simulate_checkpointed_training(
            work, interval, checkpoint_cost, restart_cost,
            faults=schedule, seed=args.seed, tracer=tracer, metrics=metrics,
        )
        return (
            f"training: checkpointed goodput sim, {report.failures} failures, "
            f"{report.checkpoints} checkpoints, goodput {report.goodput:.1%} "
            f"(work {work / 3600:.0f} h, interval {interval:.0f} s)"
        )

    steps = 5 if args.smoke else 50
    corpus = markov_corpus(TINY_MLA_MOE.vocab_size, 2_000, seed=args.seed)
    model = TrainableTransformer(TINY_MLA_MOE, seed=args.seed)
    result = train(model, corpus, steps, tracer=tracer, metrics=metrics)
    return f"training: {steps} steps, final loss {result.final_loss:.4f}"


def _sweep_value(text: str):
    """Parse one grid/set value: int, then float, bool, null, string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none"):
        return None
    return text


def _sweep_pairs(entries: list[str], what: str) -> list[tuple[str, list]]:
    pairs = []
    for entry in entries:
        key, sep, values = entry.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad {what} {entry!r}: expected K=V")
        if values.lstrip()[:1] in ("{", "["):
            # A structured value (e.g. a fault schedule dict): one JSON
            # literal, not a comma-separated list.
            try:
                pairs.append((key, [json.loads(values)]))
            except json.JSONDecodeError as exc:
                raise SystemExit(f"bad {what} {entry!r}: invalid JSON ({exc})")
            continue
        pairs.append((key, [_sweep_value(v) for v in values.split(",")]))
    return pairs


def _cmd_sweep(args: argparse.Namespace) -> None:
    from .obs import MetricsRegistry
    from .sweep import (
        SweepCache,
        SweepSpec,
        get_target,
        grid,
        print_sweep_summary,
        run_sweep,
    )

    try:
        # get_target rather than a target_names() membership test: it
        # resolves lazily-registered targets (chaos, optimize) too.
        get_target(args.target)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    axes = dict(_sweep_pairs(args.grid, "--grid"))
    base = {k: v[0] for k, v in _sweep_pairs(args.set, "--set")}
    if not axes:
        raise SystemExit("need at least one --grid K=V1,V2,... axis")
    if args.slo and args.windows is None:
        raise SystemExit("--slo requires --windows SECONDS")
    if args.windows is not None:
        base["window_s"] = args.windows
        if args.slo:
            base["slo"] = list(args.slo)
    spec = SweepSpec(target=args.target, points=grid(**axes), base=base, seed=args.seed)
    cache = None if args.no_cache else SweepCache(args.cache_dir)
    metrics = MetricsRegistry()
    supervise = None
    if args.timeout is not None or args.retries > 1:
        from .sweep import SupervisorPolicy

        supervise = SupervisorPolicy(timeout_s=args.timeout, max_attempts=args.retries)
    result = run_sweep(
        spec,
        workers=args.workers,
        cache=cache,
        metrics=metrics,
        progress=not args.json,
        strict=not args.keep_going,
        supervise=supervise,
    )
    if args.json:
        payload = result.payload()
        if args.windows is not None:
            # Opt-in only: the default document stays byte-identical to
            # a telemetry-unaware sweep of the same spec.
            from .sweep import merged_windows_section

            section = merged_windows_section(payload["points"])
            if section is not None:
                payload["windows"] = section
        sys.stdout.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    print_sweep_summary(result)
    where = "off" if cache is None else str(cache.root)
    print(
        f"\n{len(result.points)} points  evaluated {result.evaluated}  "
        f"cache hits {result.cache_hits}  wall {result.wall_time:.2f}s  cache {where}"
    )
    if args.windows is not None:
        from .obs import sparkline
        from .sweep import merged_windows_section

        section = merged_windows_section(
            [{"result": p.result} for p in result.points]
        )
        if section is not None:
            throughput = [
                s["throughput_tokens_per_s"] for s in section["summaries"]
            ]
            print(
                f"windows: {len(section['merged'])} merged across "
                f"{section['points']} points  throughput {sparkline(throughput)}"
            )
        alerts = sum(
            len((p.result or {}).get("alerts") or ()) for p in result.points
        )
        if args.slo:
            print(f"slo: {alerts} alert transitions across all points")


def _cmd_optimize(args: argparse.Namespace) -> None:
    from .obs import MetricsRegistry
    from .optimize import (
        FidelityLadder,
        SearchSpec,
        parse_objective,
        print_search_summary,
        run_search,
    )
    from .sweep import SweepCache, get_target

    try:
        get_target(args.target)  # resolves lazy targets (chaos, optimize)
    except KeyError as exc:
        raise SystemExit(str(exc))
    space = dict(_sweep_pairs(args.space, "--space"))
    if not space:
        raise SystemExit("need at least one --space K=V1,V2,... axis")
    base = {k: v[0] for k, v in _sweep_pairs(args.set, "--set")}
    ladder = None
    if args.ladder is not None:
        try:
            ladder = FidelityLadder(**json.loads(args.ladder))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise SystemExit(f"bad --ladder: {exc}")
    try:
        parse_objective(args.objective)  # fail fast on DSL errors
        spec = SearchSpec(
            target=args.target,
            objective=args.objective,
            space=space,
            base=base,
            seed=args.seed,
            eta=args.eta,
            rungs=args.rungs,
            budget_s=args.budget,
            initial=args.initial,
            ladder=ladder,
        )
        spec.resolved_ladder()  # fail fast on a missing/clashing ladder
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"bad search spec: {exc}")
    cache = None if args.no_cache else SweepCache(args.cache_dir)
    result = run_search(
        spec,
        workers=args.workers,
        cache=cache,
        metrics=MetricsRegistry(),
        progress=not args.json,
    )
    if args.json:
        sys.stdout.write(result.to_json())
        return
    print_search_summary(result)
    where = "off" if cache is None else str(cache.root)
    print(
        f"\n{len(result.trajectory)} evaluations  computed {result.evaluated}  "
        f"cache hits {result.cache_hits}  sim {result.sim_seconds:.1f}s  "
        f"grid ~{result.grid_sim_seconds:.1f}s (~{result.speedup:.1f}x)  "
        f"wall {result.wall_time:.2f}s  cache {where}"
        + ("  [budget stop]" if result.stopped_early else "")
    )


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio
    import signal

    from .service import ExperimentServer, ServiceConfig

    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        cache=not args.no_cache,
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        max_sweep_workers=args.max_sweep_workers,
        heartbeat_s=args.heartbeat,
        metrics_interval_s=args.metrics_interval,
        telemetry_interval_s=args.telemetry_interval,
        drain_grace_s=args.drain_grace,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        hung_after_s=args.hung_after,
        history_limit=args.history_limit,
    )

    async def _main() -> None:
        server = ExperimentServer(config)
        await server.start()
        cache = "off" if server.cache is None else str(server.cache.root)
        resumed = sum(1 for j in server.manager.jobs.values() if not j.terminal)
        print(
            f"repro service listening on http://{server.host}:{server.port}",
            flush=True,
        )
        print(
            f"  state {server.state.root}  cache {cache}  "
            f"workers {config.job_workers}  queue {config.queue_size}  "
            f"jobs {len(server.manager.jobs)} ({resumed} resumed)",
            flush=True,
        )
        # SIGTERM/SIGINT drain instead of dying mid-point: stop
        # accepting (503 + Retry-After), interrupt running jobs at a
        # point boundary, journal the drain, then exit — a restarted
        # server resumes the interrupted jobs from the cache.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        serving = asyncio.create_task(server.serve_forever())
        await stop.wait()
        print(
            f"repro service draining (grace {config.drain_grace_s:g}s)...",
            file=sys.stderr,
            flush=True,
        )
        settled = await server.drain()
        await server.stop()
        serving.cancel()
        try:
            await serving
        except asyncio.CancelledError:
            pass
        print(
            "repro service stopped"
            + ("" if settled else " (drain grace expired with jobs running)"),
            file=sys.stderr,
        )

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro service stopped", file=sys.stderr)


def _service_url(args: argparse.Namespace) -> str:
    """Resolve the running service's base URL: ``--url`` wins, else the
    ``server.json`` the server wrote into its state dir."""
    if args.url:
        return args.url.rstrip("/")
    from pathlib import Path

    info_path = Path(args.state_dir).expanduser() / "server.json"
    try:
        info = json.loads(info_path.read_text())
    except (OSError, ValueError):
        raise SystemExit(
            f"no running service found ({info_path} unreadable); "
            "start one with 'repro serve' or pass --url"
        ) from None
    return f"http://{info['host']}:{info['port']}"


def _service_get(url: str) -> bytes:
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.read()
    except (urllib.error.URLError, OSError) as exc:
        raise SystemExit(f"GET {url} failed: {exc}") from None


def _cmd_metrics(args: argparse.Namespace) -> None:
    url = _service_url(args) + "/metrics"
    if args.json:
        url += "?format=json"
    sys.stdout.write(_service_get(url).decode())


def _cmd_dash(args: argparse.Namespace) -> None:
    from .obs.summary import print_table, sparkline

    base = _service_url(args)
    jobs = json.loads(_service_get(base + "/jobs"))["jobs"]
    server = json.loads(_service_get(base + "/metrics?format=json"))["server"]
    print(f"service {base}  (live page: {base}/dash)")
    if jobs:
        print_table(
            "jobs",
            ["id", "name", "target", "state", "done", "hits", "errors"],
            [
                [
                    j["id"], j.get("name") or "-", j["target"], j["state"],
                    f"{j['done']}/{j['total']}", j["cache_hits"], j["errors"],
                ]
                for j in jobs
            ],
        )
    else:
        print("no jobs yet")
    rows = []
    for name, value in sorted(server.items()):
        if isinstance(value, dict):  # histogram summary
            shown = f"p50 {value['p50']:.4g}  p99 {value['p99']:.4g}  n={value['count']}"
        elif isinstance(value, list):  # time series -> recent shape
            shown = sparkline([v for _, v in value[-64:]]) or "-"
        else:
            shown = value
        rows.append([name, shown])
    if rows:
        print_table("server telemetry", ["metric", "value"], rows)


def _cmd_trace(args: argparse.Namespace) -> None:
    from .obs import MetricsRegistry, Tracer, print_trace_summary

    runners = {
        "serving": _trace_serving,
        "network": _trace_network,
        "training": _trace_training,
    }
    tracer = Tracer()
    metrics = MetricsRegistry()
    headline = _run_profiled(args, lambda: runners[args.scenario](args, tracer, metrics))
    out = args.out or f"{args.scenario}.trace.json"
    path = tracer.write(out)
    print(headline)
    print(f"trace: {len(tracer.events)} events -> {path}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    print_trace_summary(tracer, metrics, top_k=args.top)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DeepSeek-V3 ISCA'25 reproduction toolkit"
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="architecture summary")
    p.add_argument("model", nargs="?", default="deepseek-v3", choices=sorted(MODEL_CATALOG))
    p.set_defaults(func=_cmd_summary)

    for name, func, help_text in (
        ("table1", _cmd_table1, "KV cache per token (Table 1)"),
        ("table2", _cmd_table2, "training GFLOPS/token (Table 2)"),
        ("table3", _cmd_table3, "topology comparison (Table 3)"),
        ("table5", _cmd_table5, "link latency (Table 5)"),
        ("tpot", _cmd_tpot, "EP inference speed limits (Section 2.3.2)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(func=func)

    p = sub.add_parser("budget", help="training GPU-hours and cost")
    p.add_argument("--tokens", type=float, default=14.8, help="training tokens, in trillions")
    p.set_defaults(func=_cmd_budget)

    p = sub.add_parser(
        "serve-sim", help="request-level serving simulation (Sections 2.3.1-2.3.3)"
    )
    p.add_argument(
        "--mode", choices=["colocated", "disaggregated"], default="disaggregated"
    )
    p.add_argument("--requests", type=int, default=200, help="requests to simulate")
    p.add_argument("--rate", type=float, default=2.0, help="mean arrival rate, req/s")
    p.add_argument("--arrival", choices=["poisson", "bursty"], default="poisson")
    p.add_argument("--prefill-gpus", type=int, default=2)
    p.add_argument("--decode-gpus", type=int, default=6)
    p.add_argument("--mtp", action="store_true", help="enable MTP speculative decoding")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true", help="small fast workload")
    mode_group = p.add_mutually_exclusive_group()
    mode_group.add_argument(
        "--stream", action="store_true",
        help="constant-memory streaming aggregation (the default): "
        "histogram-derived percentiles, no per-request records",
    )
    mode_group.add_argument(
        "--record", action="store_true",
        help="keep exact per-request records (O(requests) memory; "
        "enables the per-request degradation breakdown)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="dump the full SimReport as machine-readable JSON",
    )
    p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject failures: schedule JSON path or mtbf:MTBF[:MTTR[:HORIZON]]",
    )
    p.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="windowed telemetry: tumbling window width on the sim clock "
        "(adds the 'windows' section to --json output)",
    )
    p.add_argument(
        "--slo", action="append", default=[], metavar="RULE",
        help="SLO monitor rule, repeatable: 'burn>RATE[@OBJECTIVE]' or "
        "'METRIC<OP>VALUE' (e.g. tpot_p99<0.05); requires --window",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest functions",
    )
    p.add_argument(
        "--profile-top", type=int, default=15, help="functions to list with --profile"
    )
    p.set_defaults(func=_cmd_serve_sim)

    p = sub.add_parser(
        "sweep",
        help="evaluate a parameter grid in parallel with result caching",
    )
    p.add_argument("--target", required=True, help="registered sweep target name")
    p.add_argument(
        "--grid", action="append", default=[], metavar="K=V1,V2,...",
        help="one grid axis (repeatable; axes form a Cartesian product)",
    )
    p.add_argument(
        "--set", action="append", default=[], metavar="K=V",
        help="fixed config key shared by every point (repeatable)",
    )
    p.add_argument("--workers", type=int, default=1, help="process fan-out")
    p.add_argument("--seed", type=int, default=0, help="root seed (per-point seeds derive from it)")
    p.add_argument("--no-cache", action="store_true", help="disable the result cache")
    p.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default ~/.cache/repro-sweep or $REPRO_SWEEP_CACHE)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the deterministic sweep document instead of the table",
    )
    p.add_argument(
        "--windows", type=float, default=None, metavar="SECONDS",
        help="per-point windowed telemetry (serving target); --json output "
        "gains a merged cross-point 'windows' section",
    )
    p.add_argument(
        "--slo", action="append", default=[], metavar="RULE",
        help="SLO monitor rule per point (repeatable); requires --windows",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="supervised execution: kill any point attempt exceeding this "
        "budget (counts as one failed attempt)",
    )
    p.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="supervised execution: attempts per point before quarantine "
        "(default 1 = no retry; >1 enables the supervisor)",
    )
    p.add_argument(
        "--keep-going", action="store_true",
        help="record per-point failures as structured error records and "
        "continue instead of aborting on the first one",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "optimize",
        help="multi-fidelity Pareto search over a sweep target's config space",
    )
    p.add_argument("--target", required=True, help="registered sweep target name")
    p.add_argument(
        "--objective", required=True,
        help="objective DSL: 'maximize goodput s.t. tpot_p99<=0.05', "
        "'pareto(cost, goodput, slo_attainment)', ...",
    )
    p.add_argument(
        "--space", action="append", default=[], metavar="K=V1,V2,...",
        help="one search axis (repeatable; neighbor expansion steps ±1 "
        "along the declared value order)",
    )
    p.add_argument(
        "--set", action="append", default=[], metavar="K=V",
        help="fixed config key shared by every point (repeatable)",
    )
    p.add_argument(
        "--eta", type=int, default=4,
        help="promotion divisor: ceil(n/eta) survive each rung (default 4)",
    )
    p.add_argument(
        "--rungs", type=int, default=None,
        help="use only the last N rungs of the target's fidelity ladder",
    )
    p.add_argument(
        "--budget", type=float, default=None, metavar="SIM_SECONDS",
        help="simulated-seconds budget; no new batch starts once spent",
    )
    p.add_argument(
        "--initial", type=int, default=None, metavar="N",
        help="seeded rung-0 subsample size (enables best-first neighbor "
        "expansion; default = the full space)",
    )
    p.add_argument(
        "--ladder", default=None, metavar="JSON",
        help='override the fidelity ladder, e.g. '
        '\'{"key": "num_requests", "rungs": [250, 1000, 4000], '
        '"cost": "duration_s"}\'',
    )
    p.add_argument("--workers", type=int, default=1, help="process fan-out per batch")
    p.add_argument("--seed", type=int, default=0, help="root seed (per-point seeds derive from it)")
    p.add_argument("--no-cache", action="store_true", help="disable the result cache")
    p.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default ~/.cache/repro-sweep or $REPRO_SWEEP_CACHE)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the deterministic search document instead of the tables",
    )
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "serve",
        help="run the long-lived async experiment service (jobs + SSE)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = ephemeral; the bound port is written to "
        "<state-dir>/server.json)",
    )
    p.add_argument(
        "--state-dir", default="~/.local/state/repro-serve",
        help="session directory: job journals, report/trace artifacts",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="sweep cache directory (default ~/.cache/repro-sweep or "
        "$REPRO_SWEEP_CACHE)",
    )
    p.add_argument("--no-cache", action="store_true", help="disable the result cache")
    p.add_argument(
        "--queue-size", type=int, default=8,
        help="jobs allowed to wait beyond the running ones (excess gets 429)",
    )
    p.add_argument("--job-workers", type=int, default=2, help="concurrent jobs")
    p.add_argument(
        "--max-sweep-workers", type=int, default=4,
        help="cap on a job's per-sweep process fan-out",
    )
    p.add_argument(
        "--heartbeat", type=float, default=10.0,
        help="SSE heartbeat interval, seconds",
    )
    p.add_argument(
        "--metrics-interval", type=float, default=1.0,
        help="SSE metrics-snapshot interval, seconds",
    )
    p.add_argument(
        "--telemetry-interval", type=float, default=0.5,
        help="server self-telemetry sampling interval, seconds",
    )
    p.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds to wait for running jobs to stop at a point "
        "boundary on SIGTERM/SIGINT before exiting",
    )
    p.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failed jobs that trip a target's circuit "
        "breaker (rejected with 503 until the cooldown)",
    )
    p.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open breaker waits before admitting one "
        "half-open probe job",
    )
    p.add_argument(
        "--hung-after", type=float, default=60.0,
        help="flag a running job as hung after this many seconds "
        "without a settled point (journal + SSE + metrics; 0 disables)",
    )
    p.add_argument(
        "--history-limit", type=int, default=10_000,
        help="SSE replay history cap per job (oldest events drop with "
        "a leading 'truncated' marker for late subscribers)",
    )
    p.set_defaults(func=_cmd_serve)

    for name, func, help_text in (
        (
            "metrics",
            _cmd_metrics,
            "print a running service's /metrics exposition (OpenMetrics text)",
        ),
        (
            "dash",
            _cmd_dash,
            "terminal snapshot of a running service: jobs + self-telemetry",
        ),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--url", default=None,
            help="service base URL (default: read <state-dir>/server.json)",
        )
        p.add_argument(
            "--state-dir", default="~/.local/state/repro-serve",
            help="state dir of the service to contact (for server.json)",
        )
        if name == "metrics":
            p.add_argument(
                "--json", action="store_true",
                help="fetch the JSON snapshot instead of OpenMetrics text",
            )
        p.set_defaults(func=func)

    p = sub.add_parser(
        "trace",
        help="run a simulator with tracing on and write Chrome trace-event JSON",
    )
    p.add_argument(
        "--scenario", choices=["serving", "network", "training"], default="serving"
    )
    p.add_argument("--smoke", action="store_true", help="small fast scenario")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="output path (default <scenario>.trace.json)")
    p.add_argument("--top", type=int, default=10, help="span kinds to list in the summary")
    p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject failures: schedule JSON path or mtbf:MTBF[:MTTR[:HORIZON]]",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run the scenario under cProfile and print the hottest functions",
    )
    p.add_argument(
        "--profile-top", type=int, default=15, help="functions to list with --profile"
    )
    # Serving-scenario knobs shared with serve-sim (fixed to its defaults).
    p.set_defaults(
        func=_cmd_trace,
        mode="disaggregated",
        rate=2.0,
        requests=200,
        arrival="poisson",
        mtp=False,
        prefill_gpus=2,
        decode_gpus=6,
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
