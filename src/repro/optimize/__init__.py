"""Multi-fidelity co-design search over the sweep engine (ROADMAP 4).

The paper's co-design questions — node-limited routing (§4.3), MPFT vs
three-layer fat-tree (§5.1), colocated vs disaggregated serving (§2.3)
— are "find the best config" problems the repo previously answered by
exhaustive grids.  This package answers them with successive halving
over a fidelity ladder plus best-first frontier expansion, reaching the
same Pareto frontier with ~10× fewer *simulated seconds* (gated by
``benchmarks/bench_optimize.py``):

* :func:`parse_objective` — the objective DSL
  (``maximize goodput/cost s.t. tpot_p99<=0.05``,
  ``pareto(cost, goodput, slo_attainment)``);
* :class:`FidelityLadder` / :func:`register_ladder` — cheap→expensive
  rungs per target (serving: ``num_requests``; flowsim: ``shifts``;
  training: ``work_s``), each with a simulated-seconds cost expression;
* :class:`SearchSpec` / :func:`run_search` / :class:`SearchResult` —
  the engine; every evaluation goes through
  :func:`repro.sweep.run_sweep`, inheriting caching, derived seeds,
  worker-count byte-identity and supervision.

``repro optimize`` is the CLI face.  The module also registers an
``optimize`` *sweep target* (resolved lazily by name, like ``chaos``),
so a whole search can be submitted to the experiment service as a
job — journaled, resumable, progress over SSE — or even swept over
(e.g. one search per objective).
"""

from __future__ import annotations

from ..sweep import SweepCache, register_target
from .ladder import FidelityLadder, get_ladder, ladder_names, register_ladder
from .objective import (
    Constraint,
    Metric,
    MissingMetric,
    Objective,
    dominates,
    pareto_front,
    parse_objective,
)
from .search import (
    SearchResult,
    SearchSpec,
    frontier_of,
    print_search_summary,
    run_search,
)

__all__ = [
    "Constraint",
    "FidelityLadder",
    "Metric",
    "MissingMetric",
    "Objective",
    "SearchResult",
    "SearchSpec",
    "dominates",
    "frontier_of",
    "get_ladder",
    "ladder_names",
    "pareto_front",
    "parse_objective",
    "print_search_summary",
    "register_ladder",
    "run_search",
]


@register_target("optimize")
def _optimize_target(config: dict, seed: int) -> dict:
    """A whole search as one sweep point (service-submittable).

    Config keys mirror :class:`SearchSpec` (``target``, ``objective``,
    ``space``, optional ``base``/``eta``/``rungs``/``budget_s``/
    ``initial``/``ladder``), plus the execution-only keys ``workers``
    (inner fan-out, default 1) and ``cache_dir``/``no_cache``.  The
    root seed is the point's derived seed, and the returned document is
    :meth:`SearchResult.report_payload` — cache-independent, so the
    entry cached for an optimize point is byte-stable however the inner
    evaluations were obtained.
    """
    cfg = dict(config)
    cfg.pop("seed", None)  # already folded into the point seed
    ladder_cfg = cfg.pop("ladder", None)
    spec = SearchSpec(
        target=cfg.pop("target"),
        objective=cfg.pop("objective"),
        space=cfg.pop("space"),
        base=cfg.pop("base", {}),
        seed=seed,
        eta=int(cfg.pop("eta", 4)),
        rungs=cfg.pop("rungs", None),
        budget_s=cfg.pop("budget_s", None),
        initial=cfg.pop("initial", None),
        ladder=FidelityLadder(**ladder_cfg) if ladder_cfg else None,
    )
    workers = int(cfg.pop("workers", 1))
    cache = None if cfg.pop("no_cache", False) else SweepCache(cfg.pop("cache_dir", None))
    if cfg:
        raise ValueError(f"unknown optimize keys: {sorted(cfg)}")
    return run_search(spec, workers=workers, cache=cache).report_payload()
