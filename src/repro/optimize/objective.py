"""The objective DSL: what "better" means, read off sweep records.

An :class:`Objective` is parsed from a one-line declaration::

    maximize goodput/cost s.t. tpot_p99<=0.05
    minimize stage_time_s s.t. score_retention>=0.995
    pareto(cost, goodput, slo_attainment)

Grammar (whitespace-insensitive)::

    objective   := scalar | pareto
    scalar      := ("maximize" | "minimize") expr [st]
    pareto      := "pareto(" metric ("," metric)* ")" [st]
    metric      := ["min:" | "max:"] expr
    st          := "s.t." constraint ("," constraint)*
    constraint  := expr ("<=" | ">=" | "<" | ">") expr

Expressions are a strict arithmetic subset of Python (names, numeric
literals, ``+ - * /``, unary minus, parentheses) evaluated by walking
the ``ast`` — never ``eval``.  Names resolve against a candidate's
*record* (the target's result dict) first, then a small alias table
(``goodput`` → ``goodput_tokens_per_s``, ``cost`` → ``cost_per_token``,
``tpot_p99`` → ``tpot_p99_ms`` rescaled to seconds, …), then the
candidate's *config* — so a constraint can reference a swept axis.  A
name that resolves nowhere, or a non-finite value, makes the candidate
**infeasible** (a deterministic verdict, not an error): a search over
heterogeneous records keeps going and simply never promotes what it
cannot score.

Directions: ``pareto()`` members take an explicit ``min:``/``max:``
prefix or fall back to a name heuristic — anything mentioning cost,
latency or time minimizes, everything else maximizes.  All comparisons
inside the engine use **minimization convention**: an objective vector
negates maximized metrics, so dominance is elementwise ``<=`` with one
strict ``<`` (:func:`dominates`, :func:`pareto_front`).
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass

__all__ = [
    "Constraint",
    "Metric",
    "MissingMetric",
    "Objective",
    "dominates",
    "pareto_front",
    "parse_objective",
]

#: Aliases: short DSL names → (record field, scale).  Scales convert
#: the record's display units back to SI so constraint literals read
#: naturally (``tpot_p99<=0.05`` means 50 ms against ``tpot_p99_ms``).
ALIASES: dict[str, tuple[str, float]] = {
    "goodput": ("goodput_tokens_per_s", 1.0),
    "cost": ("cost_per_token", 1.0),
    "throughput": ("throughput_tokens_per_s", 1.0),
    "ttft_p50": ("ttft_p50_ms", 1e-3),
    "ttft_p99": ("ttft_p99_ms", 1e-3),
    "tpot_p50": ("tpot_p50_ms", 1e-3),
    "tpot_p99": ("tpot_p99_ms", 1e-3),
    "e2e_p99": ("e2e_p99_s", 1.0),
    "makespan": ("makespan_ms", 1e-3),
}

#: Name fragments that flip the default pareto direction to minimize.
_MINIMIZE_HINTS = ("cost", "latency", "time", "ttft", "tpot", "e2e", "p99", "p50", "makespan")


class MissingMetric(KeyError):
    """A DSL name resolved against neither record, aliases nor config."""


def _check_expr(tree: ast.AST, text: str) -> None:
    allowed_ops = (ast.Add, ast.Sub, ast.Mult, ast.Div)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Expression, ast.Name, ast.Load)):
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            continue
        if isinstance(node, ast.BinOp) and isinstance(node.op, allowed_ops):
            continue
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            continue
        if isinstance(node, allowed_ops + (ast.USub, ast.UAdd)):
            continue
        raise ValueError(f"unsupported syntax in objective expression {text!r}: {ast.dump(node)}")


@dataclass(frozen=True)
class Expr:
    """One parsed arithmetic expression over record/config fields."""

    text: str

    def __post_init__(self) -> None:
        tree = ast.parse(self.text, mode="eval")
        _check_expr(tree, self.text)
        object.__setattr__(self, "_tree", tree)

    def names(self) -> tuple[str, ...]:
        return tuple(
            sorted({n.id for n in ast.walk(self._tree) if isinstance(n, ast.Name)})
        )

    def evaluate(self, record: dict, config: dict) -> float:
        """Evaluate against one candidate; raises :class:`MissingMetric`."""

        def as_float(value: object, name: str) -> float:
            # A null or non-numeric field is indistinguishable from an
            # absent one for scoring purposes: the candidate is simply
            # not scorable on this metric (e.g. cost_per_token is null
            # when a run produced zero tokens).
            if value is None or isinstance(value, bool):
                raise MissingMetric(name)
            try:
                return float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise MissingMetric(name) from None

        def resolve(name: str) -> float:
            if record.get(name) is not None:
                return as_float(record[name], name)
            if name in ALIASES:
                field, scale = ALIASES[name]
                if record.get(field) is not None:
                    return as_float(record[field], name) * scale
            if name in config:
                return as_float(config[name], name)
            raise MissingMetric(name)

        def walk(node: ast.AST) -> float:
            if isinstance(node, ast.Expression):
                return walk(node.body)
            if isinstance(node, ast.Constant):
                return float(node.value)
            if isinstance(node, ast.Name):
                return resolve(node.id)
            if isinstance(node, ast.UnaryOp):
                value = walk(node.operand)
                return -value if isinstance(node.op, ast.USub) else value
            if isinstance(node, ast.BinOp):
                left, right = walk(node.left), walk(node.right)
                if isinstance(node.op, ast.Add):
                    return left + right
                if isinstance(node.op, ast.Sub):
                    return left - right
                if isinstance(node.op, ast.Mult):
                    return left * right
                return left / right if right != 0.0 else math.inf
            raise ValueError(f"unsupported node {node!r}")  # pragma: no cover

        value = walk(self._tree)
        if value is None or not math.isfinite(value):
            raise MissingMetric(self.text)
        return value


@dataclass(frozen=True)
class Metric:
    """One objective dimension: an expression plus a direction."""

    expr: Expr
    maximize: bool

    @property
    def name(self) -> str:
        return self.expr.text


@dataclass(frozen=True)
class Constraint:
    """One feasibility predicate: ``lhs OP rhs``."""

    lhs: Expr
    op: str  # "<=", ">=", "<", ">"
    rhs: Expr

    def satisfied(self, record: dict, config: dict) -> bool:
        left = self.lhs.evaluate(record, config)
        right = self.rhs.evaluate(record, config)
        if self.op == "<=":
            return left <= right
        if self.op == ">=":
            return left >= right
        if self.op == "<":
            return left < right
        return left > right

    @property
    def text(self) -> str:
        return f"{self.lhs.text}{self.op}{self.rhs.text}"


def _default_maximize(expr_text: str) -> bool:
    lowered = expr_text.lower()
    return not any(hint in lowered for hint in _MINIMIZE_HINTS)


def _parse_metric(text: str) -> Metric:
    text = text.strip()
    if text.startswith("min:"):
        return Metric(Expr(text[4:].strip()), maximize=False)
    if text.startswith("max:"):
        return Metric(Expr(text[4:].strip()), maximize=True)
    return Metric(Expr(text), maximize=_default_maximize(text))


def _parse_constraints(text: str) -> tuple[Constraint, ...]:
    out = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        match = re.search(r"(<=|>=|<|>)", part)
        if match is None:
            raise ValueError(f"constraint {part!r} needs one of <=, >=, <, >")
        op = match.group(1)
        lhs, rhs = part.split(op, 1)
        out.append(Constraint(Expr(lhs.strip()), op, Expr(rhs.strip())))
    if not out:
        raise ValueError("empty constraint list after 's.t.'")
    return tuple(out)


@dataclass(frozen=True)
class Objective:
    """A parsed objective: metrics (with directions) plus constraints."""

    text: str
    metrics: tuple[Metric, ...]
    constraints: tuple[Constraint, ...] = ()

    @property
    def scalar(self) -> bool:
        """True for ``maximize``/``minimize`` (one metric) objectives."""
        return len(self.metrics) == 1

    def metric_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.metrics)

    def feasible(self, record: dict, config: dict) -> bool:
        """Whether every constraint holds (missing metric → infeasible)."""
        try:
            return all(c.satisfied(record, config) for c in self.constraints)
        except MissingMetric:
            return False

    def values(self, record: dict, config: dict) -> tuple[float, ...] | None:
        """Raw metric values in declaration order (``None`` if unscorable)."""
        try:
            return tuple(m.expr.evaluate(record, config) for m in self.metrics)
        except MissingMetric:
            return None

    def vector(self, record: dict, config: dict) -> tuple[float, ...] | None:
        """The minimization-convention objective vector, or ``None``.

        Maximized metrics are negated, so every comparison downstream
        is plain elementwise "smaller is better" — one convention for
        scalar and pareto objectives alike.
        """
        values = self.values(record, config)
        if values is None:
            return None
        return tuple(
            -v if m.maximize else v for m, v in zip(self.metrics, values)
        )


def parse_objective(text: str) -> Objective:
    """Parse the DSL (see module docstring); raises ``ValueError``."""
    src = text.strip()
    constraints: tuple[Constraint, ...] = ()
    if "s.t." in src:
        head, _, tail = src.partition("s.t.")
        constraints = _parse_constraints(tail)
        src = head.strip()
    lowered = src.lower()
    if lowered.startswith("pareto"):
        inner = src[len("pareto"):].strip()
        if not (inner.startswith("(") and inner.endswith(")")):
            raise ValueError(f"pareto objective must be 'pareto(a, b, ...)': {text!r}")
        members = [m for m in inner[1:-1].split(",") if m.strip()]
        if len(members) < 2:
            raise ValueError("pareto() needs at least two metrics")
        return Objective(text=text.strip(), metrics=tuple(_parse_metric(m) for m in members),
                         constraints=constraints)
    for keyword, maximize in (("maximize", True), ("minimize", False)):
        if lowered.startswith(keyword):
            expr = src[len(keyword):].strip()
            if not expr:
                raise ValueError(f"{keyword} needs an expression: {text!r}")
            return Objective(
                text=text.strip(),
                metrics=(Metric(Expr(expr), maximize=maximize),),
                constraints=constraints,
            )
    raise ValueError(
        f"objective must start with 'maximize', 'minimize' or 'pareto(': {text!r}"
    )


def dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (minimization convention)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(vectors: list[tuple[float, ...] | None]) -> list[int]:
    """Indices of non-dominated entries (``None`` vectors never make it).

    O(n²) pairwise — search frontiers are tens of points, not millions.
    Duplicate vectors are all kept (none dominates its twin), so ties
    survive to be broken deterministically by the caller.
    """
    out = []
    for i, v in enumerate(vectors):
        if v is None:
            continue
        if any(
            w is not None and j != i and dominates(w, v)
            for j, w in enumerate(vectors)
        ):
            continue
        out.append(i)
    return out
