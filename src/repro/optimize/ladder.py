"""Fidelity ladders: the cheap→expensive rungs a search climbs.

Multi-fidelity search spends most of its evaluations at a *low*
fidelity — a serving run of 250 requests instead of 8 000, a flow
simulation of 1 ring shift instead of 8 — and promotes only the
surviving fraction to the next, more expensive rung.  A
:class:`FidelityLadder` encodes how one sweep target is dialed between
cheap and expensive:

* ``key`` — the config key that controls fidelity (``num_requests``
  for serving).  It must not also be a search axis.
* ``rungs`` — ascending fidelity values; the last rung is the *full*
  fidelity, and the final Pareto frontier is read exclusively from it.
* ``cost`` — an objective-DSL expression (see
  :mod:`repro.optimize.objective`) evaluated on each point's record +
  config, yielding that evaluation's **simulated seconds**.  Budget
  accounting and the search-vs-grid ratio are sums of this expression,
  so they are pure functions of the evaluated records — identical
  whether points came from the cache or were computed fresh.

Built-in ladders cover the three shipped simulators; registering a
custom target usually pairs with :func:`register_ladder` (the bench
does this for its routing-dispatch target).  A single-rung ladder is
legal and degenerates the search into constrained best-first selection
at fixed fidelity — what closed-form targets (topology cost models)
want.
"""

from __future__ import annotations

from dataclasses import dataclass

from .objective import Expr

__all__ = ["FidelityLadder", "get_ladder", "ladder_names", "register_ladder"]


@dataclass(frozen=True)
class FidelityLadder:
    """How one target scales between cheap and full fidelity."""

    key: str
    rungs: tuple
    cost: str = "1"

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("a fidelity ladder needs at least one rung")
        object.__setattr__(self, "rungs", tuple(self.rungs))
        object.__setattr__(self, "_cost_expr", Expr(self.cost))

    def truncated(self, rungs: int | None) -> "FidelityLadder":
        """The ladder limited to its last ``rungs`` rungs (None = all).

        Keeping the *last* rungs preserves the full-fidelity top — a
        shorter search still reports its frontier at the same fidelity
        an exhaustive grid would use.
        """
        if rungs is None or rungs >= len(self.rungs):
            return self
        if rungs < 1:
            raise ValueError("rungs must be positive")
        return FidelityLadder(self.key, self.rungs[-rungs:], self.cost)

    def point_cost(self, record: dict, config: dict) -> float:
        """Simulated seconds of one evaluation (0.0 if unscorable)."""
        from .objective import MissingMetric

        try:
            return self._cost_expr.evaluate(record, config)
        except MissingMetric:
            return 0.0

    def asdict(self) -> dict:
        return {"key": self.key, "rungs": list(self.rungs), "cost": self.cost}


_LADDERS: dict[str, FidelityLadder] = {}


def register_ladder(target: str, ladder: FidelityLadder) -> FidelityLadder:
    """Associate ``ladder`` as the default for sweep target ``target``."""
    _LADDERS[target] = ladder
    return ladder


def get_ladder(target: str) -> FidelityLadder:
    """The registered default ladder of ``target``."""
    try:
        return _LADDERS[target]
    except KeyError:
        known = ", ".join(sorted(_LADDERS)) or "<none>"
        raise KeyError(
            f"no fidelity ladder registered for target {target!r} "
            f"(registered: {known}); pass an explicit ladder"
        ) from None


def ladder_names() -> list[str]:
    """Targets with a registered default ladder, sorted."""
    return sorted(_LADDERS)


# Built-in ladders for the shipped simulators.  Costs are simulated
# time read off each record: the serving sim reports its simulated
# duration directly; flowsim's makespan is milliseconds of simulated
# fabric time; the training model's wall_time_s is simulated cluster
# seconds.
register_ladder(
    "serving",
    FidelityLadder(key="num_requests", rungs=(250, 1000, 4000), cost="duration_s"),
)
register_ladder(
    "flowsim",
    FidelityLadder(key="shifts", rungs=(1, 2, 4), cost="makespan_ms/1000"),
)
register_ladder(
    "training",
    FidelityLadder(
        key="work_s",
        rungs=(6 * 3600.0, 24 * 3600.0, 96 * 3600.0),
        cost="wall_time_s",
    ),
)
