"""Multi-fidelity successive halving + best-first frontier search.

:func:`run_search` finds the Pareto frontier of a declared config space
without evaluating the full grid at full fidelity:

1. **Rung 0 (cheap, wide)** — the initial population (the whole space,
   or a seeded subsample via ``SearchSpec.initial``) is evaluated at
   the ladder's cheapest fidelity.  When ``initial`` subsamples, a
   best-first expansion loop then repeatedly evaluates the ±1
   grid-neighbors of the current non-dominated set until no new
   neighbor appears (or the budget runs out) — the frontier grows
   toward promising regions instead of covering the grid uniformly.
2. **Promotion** — candidates are ranked by non-dominated fronts
   (feasible first, each front ordered by objective vector then
   canonical config), and the top ``ceil(n/eta)`` — *always including
   the entire first front*, so the surviving frontier is never
   truncated by the promotion quota — climb to the next rung.
3. **Repeat** until the top rung; the reported frontier is read
   exclusively from evaluations at the highest rung reached.

Every evaluation is routed through :func:`repro.sweep.run_sweep`, so
the search inherits the engine's guarantees wholesale: per-point
content-derived seeds and worker-count byte-identity (the trajectory
is a pure function of root seed + spec — pinned at workers 1 vs 4 by
``tests/test_optimize.py``), content-addressed caching (a re-search is
warm; an exhaustive grid run after a search reuses its top-rung
points), and supervised execution for hostile targets.

**Accounting is simulated seconds, not wall seconds.**  Each
evaluation's cost is the ladder's cost expression over the point's
record — a pure function of the result — so budget checks, the
per-rung accounting and the search-vs-grid ratio are identical whether
points were computed or cache-served, and :meth:`SearchResult.
report_payload` is byte-identical across cold, warm and resumed runs.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass, field

import repro

from ..core.rng import derive_seed
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..obs.summary import print_table
from ..sweep import SweepCache, SweepSpec, canonical_config, grid, run_sweep
from ..sweep.supervise import SupervisorPolicy
from .ladder import FidelityLadder, get_ladder
from .objective import Objective, parse_objective, pareto_front

__all__ = [
    "SearchResult",
    "SearchSpec",
    "frontier_of",
    "print_search_summary",
    "run_search",
]


@dataclass(frozen=True)
class SearchSpec:
    """One declared search: target, objective, space, fidelity plan.

    Attributes:
        target: Registered sweep target name.
        objective: Objective DSL text (:func:`parse_objective`).
        space: Named axes (``{"request_rate": [4, 8, 16], ...}``).
            Axis *names* are canonicalized (sorted) before grid
            enumeration, so two specs with the same content produce the
            same trajectory regardless of dict insertion order.  Axis
            *values* keep their declared order — neighbor expansion
            steps ±1 along it, so order values monotonically.
        base: Config shared by every point (never varied).
        seed: Root seed; per-point seeds derive from it content-wise.
        eta: Promotion divisor — ``ceil(n/eta)`` survive each rung.
        rungs: Keep only the last N ladder rungs (None = all).
        budget_s: Simulated-seconds budget; no new batch starts once
            spent (the batch in flight always completes).
        initial: Subsample size for the rung-0 population (None = the
            full space); triggers best-first neighbor expansion.
        ladder: Explicit fidelity ladder; defaults to the registered
            ladder of ``target`` (:func:`repro.optimize.get_ladder`).
        version: Package version baked into point cache keys.
        name: Optional label for reports.
    """

    target: str
    objective: str
    space: dict
    base: dict = field(default_factory=dict)
    seed: int = 0
    eta: int = 4
    rungs: int | None = None
    budget_s: float | None = None
    initial: int | None = None
    ladder: FidelityLadder | None = None
    version: str = repro.__version__
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.space:
            raise ValueError("a search needs at least one space axis")
        axes = {
            k: list(v) if isinstance(v, (list, tuple)) else [v]
            for k in sorted(self.space)
            for v in [self.space[k]]
        }
        if any(not values for values in axes.values()):
            raise ValueError("every space axis needs at least one value")
        object.__setattr__(self, "space", axes)
        object.__setattr__(self, "base", dict(self.base))
        if self.eta < 2:
            raise ValueError("eta must be >= 2")
        if self.initial is not None and self.initial < 1:
            raise ValueError("initial must be positive")

    def resolved_ladder(self) -> FidelityLadder:
        ladder = self.ladder if self.ladder is not None else get_ladder(self.target)
        ladder = ladder.truncated(self.rungs)
        if ladder.key in self.space or ladder.key in self.base:
            raise ValueError(
                f"fidelity key {ladder.key!r} cannot also be a search axis or base key"
            )
        return ladder


@dataclass(frozen=True)
class _Candidate:
    """One point's evaluation at one rung."""

    point: dict       # space-axis values only
    config: dict      # base + point + fidelity key (the sweep config)
    ckey: str         # canonical_config(point) — rung-independent identity
    seed: int
    key: str          # cache key at this rung
    record: dict
    values: tuple[float, ...] | None
    vector: tuple[float, ...] | None
    feasible: bool
    cost_s: float


def _rank(candidates: list[_Candidate]) -> list[_Candidate]:
    """Best-first deterministic order: non-dominated fronts of the
    feasible set (each front sorted by objective vector, then canonical
    config), then unscorable/infeasible candidates by canonical config."""
    feasible = [c for c in candidates if c.feasible and c.vector is not None]
    rest = sorted(
        (c for c in candidates if not (c.feasible and c.vector is not None)),
        key=lambda c: c.ckey,
    )
    order: list[_Candidate] = []
    pool = list(feasible)
    while pool:
        front_idx = set(pareto_front([c.vector for c in pool]))
        front = [c for i, c in enumerate(pool) if i in front_idx]
        order.extend(sorted(front, key=lambda c: (c.vector, c.ckey)))
        pool = [c for i, c in enumerate(pool) if i not in front_idx]
    return order + rest


def _first_front_size(candidates: list[_Candidate]) -> int:
    feasible = [c for c in candidates if c.feasible and c.vector is not None]
    return len(pareto_front([c.vector for c in feasible]))


def frontier_of(objective: Objective, points: list[dict]) -> list[dict]:
    """The non-dominated feasible frontier of payload-style points.

    ``points`` is the ``points`` list of a sweep/search payload (dicts
    with ``config``, ``seed`` and ``result``) — so the same helper
    computes a search's frontier and the frontier of an exhaustive
    grid's :meth:`~repro.sweep.SweepResult.report_payload`, making the
    two byte-comparable.  Entries are sorted by objective vector, then
    canonical config.
    """
    scored = []
    for p in points:
        record, config = p.get("result"), p["config"]
        if not isinstance(record, dict):
            continue
        if not objective.feasible(record, config):
            continue
        vector = objective.vector(record, config)
        if vector is None:
            continue
        scored.append((vector, p, objective.values(record, config)))
    front = pareto_front([vector for vector, _, _ in scored])
    entries = []
    for i in front:
        vector, p, values = scored[i]
        entries.append(
            (
                vector,
                canonical_config(p["config"]),
                {
                    "config": p["config"],
                    "seed": p["seed"],
                    "metrics": dict(zip(objective.metric_names(), values)),
                    "record": p["result"],
                },
            )
        )
    return [entry for _, _, entry in sorted(entries, key=lambda e: (e[0], e[1]))]


@dataclass(frozen=True)
class SearchResult:
    """Everything one search produced.

    Like :class:`~repro.sweep.SweepResult`, two documents:
    :meth:`payload` records cache provenance (``evaluated`` /
    ``cache_hits``), :meth:`report_payload` strips it — frontier,
    per-rung accounting and trajectory are pure functions of
    root seed + spec, byte-identical cold or warm and at any worker
    count.
    """

    target: str
    objective: str
    seed: int
    version: str
    eta: int
    ladder: dict
    space: dict
    rungs: tuple[dict, ...]
    trajectory: tuple[dict, ...]
    frontier: tuple[dict, ...]
    sim_seconds: float
    grid_points: int
    grid_sim_seconds: float
    stopped_early: bool
    evaluated: int
    cache_hits: int
    wall_time: float

    @property
    def speedup(self) -> float:
        """Estimated exhaustive-grid sim-seconds over search sim-seconds."""
        if self.sim_seconds <= 0.0:
            return math.inf if self.grid_sim_seconds > 0 else 1.0
        return self.grid_sim_seconds / self.sim_seconds

    def report_payload(self) -> dict:
        """The cache-independent search document (see class docstring)."""
        return {
            "target": self.target,
            "objective": self.objective,
            "seed": self.seed,
            "version": self.version,
            "eta": self.eta,
            "ladder": self.ladder,
            "space": self.space,
            "rungs": list(self.rungs),
            "trajectory": list(self.trajectory),
            "frontier": list(self.frontier),
            "sim_seconds": self.sim_seconds,
            "grid_points": self.grid_points,
            "grid_sim_seconds": self.grid_sim_seconds,
            "speedup": self.speedup,
            "stopped_early": self.stopped_early,
        }

    def payload(self) -> dict:
        """:meth:`report_payload` plus cache provenance counts."""
        return {
            **self.report_payload(),
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
        }

    def to_json(self) -> str:
        return json.dumps(self.payload(), indent=2, sort_keys=True) + "\n"

    def to_report_json(self) -> str:
        return json.dumps(self.report_payload(), indent=2, sort_keys=True) + "\n"


def run_search(
    spec: SearchSpec,
    *,
    workers: int = 1,
    cache: SweepCache | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    progress: bool = False,
    supervise: SupervisorPolicy | None = None,
) -> SearchResult:
    """Run one multi-fidelity search; see the module docstring.

    All keyword arguments are forwarded to the underlying
    :func:`repro.sweep.run_sweep` calls (one per batch per rung), so
    caching, tracing, metrics, progress lines and supervised execution
    behave exactly as they do for a plain sweep.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    objective = parse_objective(spec.objective)
    ladder = spec.resolved_ladder()
    axes = spec.space  # canonicalized by SearchSpec.__post_init__
    full = grid(**axes)
    ckeys_full = [canonical_config(p) for p in full]
    position = {ck: i for i, ck in enumerate(ckeys_full)}

    if spec.initial is not None and spec.initial < len(full):
        rng = random.Random(
            derive_seed(spec.seed, f"optimize/init/{len(full)}/{spec.initial}")
        )
        population = [full[i] for i in sorted(rng.sample(range(len(full)), spec.initial))]
    else:
        population = list(full)

    epoch = time.perf_counter()
    sim_seconds = 0.0
    evaluated = 0
    cache_hits = 0
    trajectory: list[dict] = []
    rung_infos: list[dict] = []
    stopped_early = False

    def over_budget() -> bool:
        return spec.budget_s is not None and sim_seconds >= spec.budget_s

    def evaluate_batch(rung: int, points: list[dict]) -> list[_Candidate]:
        nonlocal sim_seconds, evaluated, cache_hits
        fidelity = ladder.rungs[rung]
        sweep_spec = SweepSpec(
            target=spec.target,
            points=[{**p, ladder.key: fidelity} for p in points],
            base=spec.base,
            seed=spec.seed,
            version=spec.version,
            name=f"{spec.name or spec.target}:rung{rung}",
        )
        result = run_sweep(
            sweep_spec,
            workers=workers,
            cache=cache,
            tracer=tracer,
            metrics=metrics,
            progress=progress,
            supervise=supervise,
        )
        evaluated += result.evaluated
        cache_hits += result.cache_hits
        out = []
        for point, pr in zip(points, result.points):
            record = pr.result or {}
            cost = ladder.point_cost(record, pr.config)
            sim_seconds += cost
            values = objective.values(record, pr.config)
            candidate = _Candidate(
                point=point,
                config=pr.config,
                ckey=canonical_config(point),
                seed=pr.seed,
                key=pr.key,
                record=record,
                values=values,
                vector=objective.vector(record, pr.config),
                feasible=objective.feasible(record, pr.config),
                cost_s=cost,
            )
            out.append(candidate)
            trajectory.append(
                {
                    "rung": rung,
                    "config": pr.config,
                    "seed": pr.seed,
                    "key": pr.key,
                    "feasible": candidate.feasible,
                    "values": list(values) if values is not None else None,
                    "cost_s": cost,
                }
            )
        return out

    def neighbors_of(front: list[_Candidate], seen: set[str]) -> list[dict]:
        """±1 grid steps along every axis of every frontier candidate,
        in deterministic (frontier-rank, axis, direction) order."""
        out, out_keys = [], set()
        for candidate in front:
            for axis, values in axes.items():
                at = values.index(candidate.point[axis])
                for step in (-1, 1):
                    j = at + step
                    if not 0 <= j < len(values):
                        continue
                    neighbor = {**candidate.point, axis: values[j]}
                    ck = canonical_config(neighbor)
                    if ck in seen or ck in out_keys:
                        continue
                    out_keys.add(ck)
                    out.append(neighbor)
        return out

    # ---- rung 0: wide evaluation + best-first neighbor expansion ----
    by_ckey: dict[str, _Candidate] = {}
    batch = population
    batches = 0
    rung_cost_start = sim_seconds
    while batch:
        for candidate in evaluate_batch(0, batch):
            by_ckey[candidate.ckey] = candidate
        batches += 1
        if over_budget():
            stopped_early = len(by_ckey) < len(full)
            break
        ranked = _rank(list(by_ckey.values()))
        front = ranked[: max(1, _first_front_size(ranked))]
        batch = neighbors_of(front, seen=set(by_ckey))

    candidates = sorted(by_ckey.values(), key=lambda c: position[c.ckey])
    rung_infos.append(
        {
            "rung": 0,
            "fidelity": ladder.rungs[0],
            "candidates": len(candidates),
            "batches": batches,
            "sim_seconds": sim_seconds - rung_cost_start,
        }
    )
    tracer.instant(
        "rung[0]", "optimize", 0, 0, 0.0,
        args={"fidelity": ladder.rungs[0], "candidates": len(candidates)},
    )

    # ---- successive halving up the ladder ----
    top_rung = 0
    for rung in range(1, len(ladder.rungs)):
        ranked = _rank(candidates)
        keep = max(1, math.ceil(len(ranked) / spec.eta))
        keep = max(keep, _first_front_size(ranked))  # never truncate the front
        promoted = ranked[:keep]
        rung_infos[-1]["promoted"] = len(promoted)
        if over_budget():
            stopped_early = True
            break
        rung_cost_start = sim_seconds
        candidates = evaluate_batch(rung, [c.point for c in promoted])
        top_rung = rung
        rung_infos.append(
            {
                "rung": rung,
                "fidelity": ladder.rungs[rung],
                "candidates": len(candidates),
                "batches": 1,
                "sim_seconds": sim_seconds - rung_cost_start,
            }
        )
        tracer.instant(
            f"rung[{rung}]", "optimize", 0, 0, 0.0,
            args={"fidelity": ladder.rungs[rung], "candidates": len(candidates)},
        )

    # ---- frontier at the highest rung reached ----
    frontier = frontier_of(
        objective,
        [
            {"config": c.config, "seed": c.seed, "result": c.record}
            for c in candidates
        ],
    )

    # Exhaustive-grid estimate: the full space at top *ladder* fidelity,
    # priced at the mean observed cost per point at the highest rung
    # reached, linearly rescaled to top fidelity when the search stopped
    # below it.  Pure function of evaluated records — deterministic.
    mean_cost = (
        sum(c.cost_s for c in candidates) / len(candidates) if candidates else 0.0
    )
    scale = 1.0
    try:
        top_fid = float(ladder.rungs[-1])
        reached_fid = float(ladder.rungs[top_rung])
        if reached_fid > 0:
            scale = top_fid / reached_fid
    except (TypeError, ValueError):
        pass  # non-numeric fidelity values: no rescale
    grid_sim_seconds = mean_cost * scale * len(full)

    wall = time.perf_counter() - epoch
    if metrics is not None:
        metrics.counter("optimize.evaluations").inc(len(trajectory))
        metrics.counter("optimize.sim_seconds").inc(sim_seconds)
        metrics.counter("optimize.rungs").inc(len(rung_infos))
        metrics.counter("optimize.frontier_points").inc(len(frontier))

    return SearchResult(
        target=spec.target,
        objective=spec.objective,
        seed=spec.seed,
        version=spec.version,
        eta=spec.eta,
        ladder=ladder.asdict(),
        space={k: list(v) for k, v in axes.items()},
        rungs=tuple(rung_infos),
        trajectory=tuple(trajectory),
        frontier=tuple(frontier),
        sim_seconds=sim_seconds,
        grid_points=len(full),
        grid_sim_seconds=grid_sim_seconds,
        stopped_early=stopped_early,
        evaluated=evaluated,
        cache_hits=cache_hits,
        wall_time=wall,
    )


def print_search_summary(result: SearchResult) -> None:
    """Frontier + per-rung accounting through the shared table printer."""
    metric_names = list(result.frontier[0]["metrics"]) if result.frontier else []
    axis_names = list(result.space)
    rows = []
    for i, entry in enumerate(result.frontier):
        row: list[object] = [i]
        row.extend(entry["config"].get(k) for k in axis_names)
        row.extend(entry["metrics"][m] for m in metric_names)
        rows.append(row)
    print_table(
        f"search '{result.target}' frontier: {result.objective} "
        f"({result.sim_seconds:.1f} sim-s vs grid ~{result.grid_sim_seconds:.1f}, "
        f"~{result.speedup:.1f}x)",
        ["#", *axis_names, *metric_names],
        rows,
    )
    print_table(
        "rungs",
        ["rung", "fidelity", "candidates", "batches", "promoted", "sim_s"],
        [
            [
                r["rung"],
                r["fidelity"],
                r["candidates"],
                r["batches"],
                r.get("promoted", "-"),
                f"{r['sim_seconds']:.1f}",
            ]
            for r in result.rungs
        ],
    )
