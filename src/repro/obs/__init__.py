"""Unified tracing + metrics for the simulators (observability layer).

The paper's co-design arguments are about *where time goes* — decode
steps stuck behind prefill bursts (§2.3.1), all-to-all dominating the
decode slot (§2.3.2), links saturating under routing collisions (§4.3).
This package makes those visible: every simulator accepts an optional
:class:`Tracer` (span events on the simulated clock, exported as Chrome
trace-event JSON for ``chrome://tracing``/Perfetto) and keeps its
quantitative channels in a :class:`MetricsRegistry` (counters, gauges,
time series, streaming-percentile histograms).

Instrumentation defaults to :data:`NULL_TRACER`, a null object whose
recording methods are no-ops, so an uninstrumented run pays ~nothing.
``repro trace --scenario serving|network|training`` runs a scenario
with tracing on, writes the ``.trace.json`` and prints a span/metric
summary.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    TimeSeries,
)
from .summary import print_table, print_trace_summary
from .trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "TimeSeries",
    "print_table",
    "print_trace_summary",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
]
