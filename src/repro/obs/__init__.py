"""Unified tracing + metrics for the simulators (observability layer).

The paper's co-design arguments are about *where time goes* — decode
steps stuck behind prefill bursts (§2.3.1), all-to-all dominating the
decode slot (§2.3.2), links saturating under routing collisions (§4.3).
This package makes those visible: every simulator accepts an optional
:class:`Tracer` (span events on the simulated clock, exported as Chrome
trace-event JSON for ``chrome://tracing``/Perfetto) and keeps its
quantitative channels in a :class:`MetricsRegistry` (counters, gauges,
time series, streaming-percentile histograms).

Instrumentation defaults to :data:`NULL_TRACER`, a null object whose
recording methods are no-ops, so an uninstrumented run pays ~nothing.
``repro trace --scenario serving|network|training`` runs a scenario
with tracing on, writes the ``.trace.json`` and prints a span/metric
summary.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    TimeSeries,
)
from .openmetrics import (
    metric_name,
    parse_openmetrics,
    percentile_from_buckets,
    render_openmetrics,
)
from .slo import AlertEvent, SloRule, evaluate_slo, parse_slo_rules
from .summary import print_table, print_trace_summary, sparkline
from .trace import NULL_TRACER, NullTracer, Tracer
from .windows import WindowedMetrics, merge_window_rollups, window_summaries

__all__ = [
    "AlertEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "SloRule",
    "TimeSeries",
    "WindowedMetrics",
    "evaluate_slo",
    "merge_window_rollups",
    "metric_name",
    "parse_openmetrics",
    "parse_slo_rules",
    "percentile_from_buckets",
    "print_table",
    "print_trace_summary",
    "render_openmetrics",
    "sparkline",
    "window_summaries",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
]
