"""Declarative SLO rules and a windowed burn-rate alert monitor.

The paper frames serving quality as SLO attainment (TTFT/TPOT targets,
§2.3) and its reliability story (§5.1) as *windows* of degradation —
an outage is interesting precisely because attainment collapses during
it and recovers after repair.  This module turns a window rollup
(:mod:`repro.obs.windows`) into that story: a list of
:class:`SloRule`s evaluated per window, producing a deterministic
timeline of :class:`AlertEvent`s (``fire``/``resolve``).

Two rule forms:

* **threshold** — ``metric op threshold`` must hold every window
  (e.g. ``tpot_p99 < 0.05``: p99 TPOT under 50 ms).  The metric names
  are the keys of :func:`repro.obs.windows.window_summaries` —
  ``ttft_p99``, ``goodput_requests_per_s``, ``queue_depth_max``, ….
* **burn rate** — the SRE error-budget form: with objective ``o``, a
  window burns at ``(1 - slo_attainment) / (1 - o)``; the rule
  breaches when the burn rate exceeds ``burn_rate`` (e.g. ``2.0`` =
  consuming the budget twice as fast as allowed).

``for_windows`` / ``clear_windows`` debounce: an alert fires only
after that many *consecutive* breaching windows, and resolves only
after that many consecutive healthy ones.  Windows with no data
(``None`` metric — e.g. no traffic at all) are skipped: they neither
extend a breach nor clear one.

Everything is a pure function of the rollup and the rules, so a
seeded simulation yields a byte-identical alert timeline at any sweep
worker count — pinned by ``tests/test_slo.py``.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

__all__ = ["AlertEvent", "SloRule", "evaluate_slo", "parse_slo_rules"]

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class SloRule:
    """One objective, evaluated per window (see module docstring)."""

    name: str
    metric: str = "slo_attainment"
    op: str = ">="
    threshold: float | None = None
    burn_rate: float | None = None
    objective: float = 0.99
    for_windows: int = 1
    clear_windows: int = 1

    def __post_init__(self) -> None:
        if (self.threshold is None) == (self.burn_rate is None):
            raise ValueError(
                f"rule {self.name!r}: exactly one of threshold/burn_rate required"
            )
        if self.op not in _OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r}")
        if self.burn_rate is not None and not 0.0 <= self.objective < 1.0:
            raise ValueError(f"rule {self.name!r}: objective must be in [0, 1)")
        if self.for_windows < 1 or self.clear_windows < 1:
            raise ValueError(f"rule {self.name!r}: debounce counts must be >= 1")

    def evaluate(self, summary: dict) -> tuple[bool | None, float, float]:
        """``(breached, value, limit)`` for one window summary.

        ``breached`` is ``None`` when the window has no data for this
        rule's metric.
        """
        if self.burn_rate is not None:
            attainment = summary.get("slo_attainment")
            if attainment is None:
                return None, 0.0, self.burn_rate
            burn = (1.0 - attainment) / (1.0 - self.objective)
            return burn > self.burn_rate, burn, self.burn_rate
        value = summary.get(self.metric)
        if value is None:
            return None, 0.0, self.threshold
        return not _OPS[self.op](value, self.threshold), value, self.threshold

    def to_dict(self) -> dict:
        """Canonical JSON form (only non-default debounce included), so
        sweep configs — and through them cache keys — are stable."""
        out: dict = {"name": self.name}
        if self.burn_rate is not None:
            out["burn_rate"] = self.burn_rate
            out["objective"] = self.objective
        else:
            out["metric"] = self.metric
            out["op"] = self.op
            out["threshold"] = self.threshold
        if self.for_windows != 1:
            out["for_windows"] = self.for_windows
        if self.clear_windows != 1:
            out["clear_windows"] = self.clear_windows
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SloRule":
        unknown = set(data) - {
            "name", "metric", "op", "threshold", "burn_rate", "objective",
            "for_windows", "clear_windows",
        }
        if unknown:
            raise ValueError(f"unknown SloRule keys: {sorted(unknown)}")
        kwargs = dict(data)
        if "name" not in kwargs:
            raise ValueError("SloRule needs a 'name'")
        return cls(**kwargs)


@dataclass(frozen=True)
class AlertEvent:
    """One alert transition on the simulated clock."""

    time: float  # the end of the window that tripped the transition
    rule: str
    state: str  # "fire" | "resolve"
    window: int  # index of that window
    value: float  # the metric/burn value that tripped it
    limit: float  # the rule's threshold/burn limit

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "rule": self.rule,
            "state": self.state,
            "window": self.window,
            "value": self.value,
            "limit": self.limit,
        }


def evaluate_slo(summaries: list[dict], rules) -> list[AlertEvent]:
    """Walk window summaries in order and emit the alert timeline.

    Each rule keeps independent state; an alert left firing at the end
    of the run simply never resolves (the timeline shows the open
    incident).  Events are sorted by ``(time, rule, state)``, so the
    timeline is deterministic even when rules trip in the same window.
    """
    alerts: list[AlertEvent] = []
    for rule in rules:
        active = False
        breach_streak = 0
        clear_streak = 0
        for summary in summaries:
            breached, value, limit = rule.evaluate(summary)
            if breached is None:
                continue  # no data: hold state, reset neither streak
            if breached:
                breach_streak += 1
                clear_streak = 0
                if not active and breach_streak >= rule.for_windows:
                    active = True
                    alerts.append(AlertEvent(
                        summary["end"], rule.name, "fire",
                        summary["index"], value, limit,
                    ))
            else:
                clear_streak += 1
                breach_streak = 0
                if active and clear_streak >= rule.clear_windows:
                    active = False
                    alerts.append(AlertEvent(
                        summary["end"], rule.name, "resolve",
                        summary["index"], value, limit,
                    ))
    alerts.sort(key=lambda a: (a.time, a.rule, a.state))
    return alerts


def _parse_rule_string(text: str) -> SloRule:
    """Compact CLI form.

    ``burn>RATE@OBJECTIVE`` — burn-rate rule on ``slo_attainment``
    (e.g. ``burn>2@0.9``); anything else is ``METRIC OP VALUE``
    (e.g. ``tpot_p99<0.05``, ``goodput_requests_per_s>=1.5``).  The
    rule's name is the string itself.
    """
    text = text.strip()
    if text.startswith("burn"):
        rest = text[4:].lstrip()
        if not rest.startswith(">"):
            raise ValueError(f"bad burn rule {text!r}: expected burn>RATE[@OBJECTIVE]")
        rate, _, objective = rest[1:].partition("@")
        return SloRule(
            name=text,
            burn_rate=float(rate),
            **({"objective": float(objective)} if objective else {}),
        )
    for op in ("<=", ">=", "<", ">"):  # two-char ops first
        metric, sep, value = text.partition(op)
        if sep:
            return SloRule(
                name=text, metric=metric.strip(), op=op, threshold=float(value)
            )
    raise ValueError(f"bad SLO rule {text!r}: expected METRIC<OP>VALUE or burn>RATE@OBJ")


def parse_slo_rules(spec) -> tuple[SloRule, ...]:
    """Normalize a rule list: each entry is an :class:`SloRule`, a JSON
    dict (:meth:`SloRule.from_dict`) or a compact string."""
    rules = []
    for entry in spec:
        if isinstance(entry, SloRule):
            rules.append(entry)
        elif isinstance(entry, dict):
            rules.append(SloRule.from_dict(entry))
        elif isinstance(entry, str):
            rules.append(_parse_rule_string(entry))
        else:
            raise ValueError(f"bad SLO rule entry: {entry!r}")
    return tuple(rules)
