"""Windowed aggregation over simulation time (tumbling or sliding).

Post-hoc snapshots answer "how did the run end up"; the paper's SLO
framing (§2.3, §5) asks "did TTFT/TPOT hold *continuously*" — through
a fault window, a traffic burst, a KV-pressure spike.
:class:`WindowedMetrics` answers that at O(windows) memory: events are
folded into fixed-width windows on the simulated clock as they happen
(counters, mean/max stats, geometric-bucket :class:`Histogram`s for
bounded-error percentiles), and nothing per-event is retained.

The window *rollup* (:meth:`WindowedMetrics.rollup`) is deliberately
the mergeable raw state, not a summary: histograms keep their bucket
counts, so rollups from different sweep points combine exactly via
:meth:`Histogram.merge` (:func:`merge_window_rollups`), and summaries
(:func:`window_summaries` — throughput, goodput, attainment, latency
percentiles per window) are always derived *after* any merging.

Window membership is half-open: window ``k`` covers sim-times in
``[k * slide, k * slide + width)``.  ``slide == width`` (the default)
gives tumbling windows; ``slide < width`` gives overlapping sliding
windows, where one event lands in every window containing it.
"""

from __future__ import annotations

import math

from .metrics import Histogram

__all__ = [
    "WindowedMetrics",
    "merge_window_rollups",
    "window_summaries",
]


class WindowedMetrics:
    """Fixed-width window aggregation on a simulated clock.

    Args:
        width_s: Window width in (sim) seconds.
        slide_s: Stride between window starts; defaults to ``width_s``
            (tumbling).  Must satisfy ``0 < slide_s <= width_s``.
        growth: Geometric bucket growth for per-window histograms
            (relative percentile error ``sqrt(growth) - 1``).
    """

    __slots__ = ("width", "slide", "growth", "_tumbling", "_windows")

    def __init__(
        self, width_s: float, slide_s: float | None = None, growth: float = 1.02
    ) -> None:
        if width_s <= 0:
            raise ValueError("width_s must be positive")
        slide = width_s if slide_s is None else slide_s
        if not 0 < slide <= width_s:
            raise ValueError("slide_s must be in (0, width_s]")
        self.width = float(width_s)
        self.slide = float(slide)
        self.growth = growth
        self._tumbling = self.slide == self.width
        # index -> {"counters": {name: value}, "stats": {name: [n, total, max]},
        #           "hists": {name: Histogram}}
        self._windows: dict[int, dict] = {}

    # -- recording -------------------------------------------------------

    def _indices(self, t: float) -> range:
        """Indices of every window whose ``[start, start + width)``
        interval contains ``t`` (empty for ``t < 0``)."""
        hi = math.floor(t / self.slide)
        if hi < 0:
            return range(0)
        if self._tumbling:
            # Tumbling windows (the overwhelmingly common case — every
            # serving run with --window) put each event in exactly one
            # window; skip the second floor division on the hot path.
            return range(hi, hi + 1)
        lo = max(0, math.floor((t - self.width) / self.slide) + 1)
        return range(lo, hi + 1)

    def _window(self, index: int) -> dict:
        window = self._windows.get(index)
        if window is None:
            window = {"counters": {}, "stats": {}, "hists": {}}
            self._windows[index] = window
        return window

    def count(self, name: str, t: float, amount: float = 1.0) -> None:
        """Add ``amount`` to per-window counter ``name`` at time ``t``."""
        for index in self._indices(t):
            counters = self._window(index)["counters"]
            counters[name] = counters.get(name, 0) + amount

    def sample(self, name: str, t: float, value: float) -> None:
        """Fold one gauge-style observation (kept as count/total/max)."""
        for index in self._indices(t):
            stats = self._window(index)["stats"]
            entry = stats.get(name)
            if entry is None:
                stats[name] = [1, value, value]
            else:
                entry[0] += 1
                entry[1] += value
                if value > entry[2]:
                    entry[2] = value

    def observe(self, name: str, t: float, value: float) -> None:
        """Fold one sample into per-window histogram ``name``."""
        for index in self._indices(t):
            hists = self._window(index)["hists"]
            hist = hists.get(name)
            if hist is None:
                hist = hists[name] = Histogram(name, growth=self.growth)
            hist.observe(value)

    # -- export ----------------------------------------------------------

    def rollup(self) -> list[dict]:
        """The mergeable JSON form: one dict per window, contiguous from
        window 0 through the last touched window.

        Windows nothing landed in are materialized empty — a total
        outage must *appear* in the timeline (zero finished, zero
        goodput), not vanish from it; the SLO monitor depends on that.
        """
        if not self._windows:
            return []
        out = []
        for index in range(max(self._windows) + 1):
            window = self._windows.get(index)
            entry = {
                "index": index,
                "start": index * self.slide,
                "end": index * self.slide + self.width,
                "counters": {},
                "stats": {},
                "histograms": {},
            }
            if window is not None:
                entry["counters"] = dict(sorted(window["counters"].items()))
                entry["stats"] = {
                    name: {"count": s[0], "total": s[1], "max": s[2]}
                    for name, s in sorted(window["stats"].items())
                }
                entry["histograms"] = {
                    name: hist.to_dict()
                    for name, hist in sorted(window["hists"].items())
                }
            out.append(entry)
        return out


def _copy_window(window: dict) -> dict:
    return {
        "index": window["index"],
        "start": window["start"],
        "end": window["end"],
        "counters": dict(window["counters"]),
        "stats": {name: dict(s) for name, s in window["stats"].items()},
        "histograms": {
            name: {**h, "buckets": [list(b) for b in h["buckets"]]}
            for name, h in window["histograms"].items()
        },
    }


def merge_window_rollups(rollups) -> list[dict]:
    """Combine window rollups from several runs/sweep points, exactly.

    Windows align by index (the geometry — same start/end — must match,
    or ``ValueError``); counters add, stats combine, histograms merge
    via :meth:`Histogram.merge`.  Inputs are not mutated.  The result
    is a valid rollup itself, so merging is associative: per-point →
    per-sweep → cross-sweep rollups all go through this one function.
    """
    merged: dict[int, dict] = {}
    for rollup in rollups:
        if not rollup:
            continue
        for window in rollup:
            index = window["index"]
            agg = merged.get(index)
            if agg is None:
                merged[index] = _copy_window(window)
                continue
            if (window["start"], window["end"]) != (agg["start"], agg["end"]):
                raise ValueError(
                    f"window {index} geometry mismatch: "
                    f"[{window['start']}, {window['end']}) vs "
                    f"[{agg['start']}, {agg['end']})"
                )
            counters = agg["counters"]
            for name, value in window["counters"].items():
                counters[name] = counters.get(name, 0) + value
            stats = agg["stats"]
            for name, s in window["stats"].items():
                entry = stats.get(name)
                if entry is None:
                    stats[name] = dict(s)
                else:
                    entry["count"] += s["count"]
                    entry["total"] += s["total"]
                    entry["max"] = max(entry["max"], s["max"])
            hists = agg["histograms"]
            for name, data in window["histograms"].items():
                if name in hists:
                    hists[name] = (
                        Histogram.from_dict(hists[name], name)
                        .merge(Histogram.from_dict(data, name))
                        .to_dict()
                    )
                else:
                    hists[name] = {**data, "buckets": [list(b) for b in data["buckets"]]}
    return [merged[index] for index in sorted(merged)]


def window_summaries(rollup: list[dict]) -> list[dict]:
    """Derived per-window metrics from a (possibly merged) rollup.

    Each summary carries the window geometry, the raw counters, the
    rates (``throughput_tokens_per_s``, ``goodput_requests_per_s``),
    ``slo_attainment``, per-window means/maxes of every sampled stat,
    and ``<name>_p50/_p95/_p99/_mean/_max`` for every histogram.

    ``slo_attainment`` semantics: ``slo_met / finished`` when anything
    finished; ``0.0`` when traffic arrived but nothing finished (a full
    outage *is* a 0% window — the burn-rate monitor must see it); and
    ``None`` when the window saw no traffic at all (no data, not a
    breach).
    """
    out = []
    for window in rollup:
        width = window["end"] - window["start"]
        counters = window["counters"]
        arrivals = counters.get("arrivals", 0)
        finished = counters.get("finished", 0)
        slo_met = counters.get("slo_met", 0)
        tokens = counters.get("tokens", 0)
        if finished:
            attainment = slo_met / finished
        elif arrivals:
            attainment = 0.0
        else:
            attainment = None
        summary: dict = {
            "index": window["index"],
            "start": window["start"],
            "end": window["end"],
            **counters,
            "throughput_tokens_per_s": tokens / width,
            "goodput_requests_per_s": slo_met / width,
            "slo_attainment": attainment,
        }
        for name, s in window["stats"].items():
            summary[name] = s["total"] / s["count"] if s["count"] else 0.0
            summary[f"{name}_max"] = s["max"] if s["count"] else 0.0
        for name, data in window["histograms"].items():
            hist = Histogram.from_dict(data, name)
            hs = hist.summary()
            summary[f"{name}_count"] = hs.count
            summary[f"{name}_mean"] = hs.mean
            summary[f"{name}_p50"] = hs.p50
            summary[f"{name}_p95"] = hs.p95
            summary[f"{name}_p99"] = hs.p99
            summary[f"{name}_max"] = hs.max
        out.append(summary)
    return out
