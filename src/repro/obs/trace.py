"""Span tracer exporting Chrome trace-event JSON.

Events are recorded on the *simulated* clock (seconds) and exported in
the Trace Event Format understood by ``chrome://tracing`` and Perfetto:
a JSON array of ``{name, cat, ph, ts, pid, tid, ...}`` dicts with
timestamps in microseconds.  The convention used across this repo:

* **processes (pid)** are pools / fabrics / trainers — one lane group
  per hardware entity (named via :meth:`Tracer.process`);
* **tracks (tid)** are requests / flows / step streams inside it;
* ``ph="X"`` complete events are spans (queued, prefill, decode,
  kv_transfer, flow, step), ``ph="C"`` counter events are sampled
  gauges (queue depth, KV occupancy, link utilization), ``ph="i"``
  instants mark point events (preemptions, drops).

Everything is appended in simulation order and serialized with sorted
keys, so a seeded simulation produces a byte-identical trace file —
pinned by ``tests/test_obs.py``.

:class:`NullTracer` is the null object: the same surface compiled down
to ``pass``, so instrumentation left in hot paths costs one attribute
lookup and a no-op call when tracing is off.  Code should accept an
optional tracer and default to :data:`NULL_TRACER`.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Simulated seconds -> trace microseconds (the Chrome ts unit).
_US = 1e6


class Tracer:
    """Collects trace events; the enabled half of the null-object pair."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []

    # -- metadata --------------------------------------------------------

    def process(self, pid: int, name: str) -> None:
        """Name a process lane (a pool, the fabric, a trainer)."""
        self.events.append(
            {"name": "process_name", "ph": "M", "ts": 0.0, "pid": pid, "tid": 0,
             "args": {"name": name}}
        )

    def thread(self, pid: int, tid: int, name: str) -> None:
        """Name a track inside a process (a request, a flow)."""
        self.events.append(
            {"name": "thread_name", "ph": "M", "ts": 0.0, "pid": pid, "tid": tid,
             "args": {"name": name}}
        )

    # -- events ----------------------------------------------------------

    def complete(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        start: float,
        duration: float,
        args: dict | None = None,
    ) -> None:
        """A span: ``start``/``duration`` in simulated seconds."""
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": start * _US, "dur": duration * _US,
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self, name: str, cat: str, pid: int, tid: int, ts: float,
        args: dict | None = None,
    ) -> None:
        """A point event (thread-scoped)."""
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": ts * _US, "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, pid: int, ts: float, values: dict[str, float]) -> None:
        """A sampled gauge; ``values`` maps series label -> value."""
        self.events.append(
            {"name": name, "ph": "C", "ts": ts * _US, "pid": pid, "tid": 0,
             "args": dict(values)}
        )

    # -- export ----------------------------------------------------------

    def export(self) -> list[dict]:
        """The Chrome trace-event list (JSON-array flavor)."""
        return list(self.events)

    def to_json(self) -> str:
        """Deterministic serialization: sorted keys, compact separators."""
        return json.dumps(self.events, sort_keys=True, separators=(",", ":")) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the trace; load the file in chrome://tracing or Perfetto."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    def span_rows(self, top_k: int = 10) -> list[list[object]]:
        """Top-``top_k`` span kinds by total duration (table rows:
        name, count, total s, mean s, max s)."""
        agg: dict[str, list[float]] = {}
        for event in self.events:
            if event.get("ph") != "X":
                continue
            dur = event.get("dur", 0.0) / _US
            entry = agg.setdefault(event["name"], [0.0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += dur
            entry[2] = max(entry[2], dur)
        ranked = sorted(agg.items(), key=lambda kv: (-kv[1][1], kv[0]))[:top_k]
        return [
            [name, int(count), total, total / count, peak]
            for name, (count, total, peak) in ranked
        ]


class NullTracer(Tracer):
    """No-op tracer: every recording method is a single ``pass``.

    Shares the :class:`Tracer` surface so instrumented code never
    branches on whether tracing is on; ``enabled`` is the one switch
    for callers that must avoid *computing* expensive event arguments.
    """

    enabled = False

    def __init__(self) -> None:
        self.events = []

    def process(self, pid, name):
        pass

    def thread(self, pid, tid, name):
        pass

    def complete(self, name, cat, pid, tid, start, duration, args=None):
        pass

    def instant(self, name, cat, pid, tid, ts, args=None):
        pass

    def counter(self, name, pid, ts, values):
        pass


#: Shared default instance — stateless, safe to reuse everywhere.
NULL_TRACER = NullTracer()
