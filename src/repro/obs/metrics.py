"""Counters, gauges, time series and streaming histograms.

The simulators in this repository produce *distributions* (tail
latency is the whole point of §2.3.1's disaggregation argument), but
storing every sample does not scale to long runs.  :class:`Histogram`
keeps geometric buckets — ``growth`` controls the relative resolution —
so p50/p95/p99 come out within a known relative error bound of the
exact percentiles at O(buckets) memory, independent of sample count.

Everything lives in a :class:`MetricsRegistry`: a flat, lazily-created
namespace of instruments.  Instruments are plain Python objects with
O(1) updates, cheap enough to leave permanently wired into simulator
hot paths; :meth:`MetricsRegistry.snapshot` renders the whole registry
as a JSON-friendly dict for reports and baselines.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass


class Counter:
    """Monotonically increasing count (events, tokens, preemptions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value of an instantaneous quantity."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class TimeSeries:
    """Recorded ``(time, value)`` samples of one channel.

    This is the generic replacement for the simulator's original
    hard-coded ``queue_depth_trace``/``kv_occupancy_trace`` lists: any
    subsystem can open a channel by name and sample it on its own
    clock.

    By default every sample is kept (exact mode — reports and goldens
    depend on it).  Long-lived processes (the experiment service's
    self-telemetry) pass ``max_points`` to bound memory, with two
    policies:

    * ``mode="ring"`` — keep only the newest ``max_points`` samples
      (a recent-history window);
    * ``mode="decimate"`` — keep the whole time span at decaying
      resolution: whenever the buffer fills, every other sample is
      discarded and the keep-stride doubles, so the first sample is
      always retained and memory never exceeds ``max_points``.
    """

    __slots__ = ("name", "samples", "max_points", "mode", "_stride", "_seen")

    def __init__(
        self,
        name: str,
        max_points: int | None = None,
        mode: str = "ring",
    ) -> None:
        if max_points is not None and max_points < 2:
            raise ValueError("max_points must be >= 2")
        if mode not in ("ring", "decimate"):
            raise ValueError(f"unknown TimeSeries mode {mode!r}")
        self.name = name
        self.max_points = max_points
        self.mode = mode
        self._stride = 1
        self._seen = 0
        if max_points is not None and mode == "ring":
            self.samples: list[tuple[float, float]] = deque(maxlen=max_points)  # type: ignore[assignment]
        else:
            self.samples = []

    def record(self, time: float, value: float) -> None:
        if self.max_points is None or self.mode == "ring":
            self.samples.append((time, value))  # deque maxlen evicts oldest
            return
        self._seen += 1
        if (self._seen - 1) % self._stride:
            return
        self.samples.append((time, value))
        if len(self.samples) >= self.max_points:
            del self.samples[1::2]  # halve resolution, keep the first sample
            self._stride *= 2

    @property
    def values(self) -> list[float]:
        return [v for _, v in self.samples]


@dataclass(frozen=True)
class HistogramSummary:
    """Percentile summary of a histogram (same shape as LatencyStats)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def asdict(self) -> dict:
        """JSON form; :meth:`from_dict` round-trips it *exactly* —
        every field is a float or int, both of which survive
        ``json.dumps``/``loads`` bit-for-bit."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSummary":
        return cls(
            count=int(data["count"]),
            mean=float(data["mean"]),
            p50=float(data["p50"]),
            p95=float(data["p95"]),
            p99=float(data["p99"]),
            max=float(data["max"]),
        )


class Histogram:
    """Streaming histogram with geometric buckets.

    Positive samples land in bucket ``floor(log(v) / log(growth))``;
    a percentile estimate returns the geometric midpoint of the bucket
    holding that rank, so its relative error is bounded by
    ``sqrt(growth) - 1`` (≈1% at the default ``growth=1.02``) — without
    retaining any samples.  Non-positive samples are counted in a
    dedicated underflow bucket reported as 0.0 (latencies and sizes are
    non-negative; an exact zero is meaningful, e.g. zero queueing).
    """

    __slots__ = ("name", "growth", "_log_growth", "_buckets", "_zero", "count", "total", "_min", "_max")

    def __init__(self, name: str, growth: float = 1.02) -> None:
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        # Branches instead of min()/max() builtins: observe() runs once
        # per retired request on the streaming hot path, and the bounds
        # move only O(log n) times over n samples.
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zero += 1
            return
        index = math.floor(math.log(value) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Uses the nearest-rank definition over bucket counts; a bucket's
        estimate is its geometric midpoint clamped to the observed
        ``[min, max]``, so the estimate never leaves the sample range.

        Edge semantics (pinned by ``tests/test_obs.py``):

        * empty histogram — every percentile is ``0.0``;
        * ``q == 0`` / ``q == 100`` — the exact observed min / max;
        * single sample (or all samples in one bucket spanning
          ``min == max``) — the clamp collapses the midpoint to the
          exact value, so every percentile is exact.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        if q == 0:
            return self.min
        if q == 100:
            return self.max
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # Geometric midpoint of [growth^i, growth^(i+1)).
                mid = self.growth ** (index + 0.5)
                return min(max(mid, self._min), self._max)
        return self._max

    def summary(self) -> HistogramSummary:
        return HistogramSummary(
            count=self.count,
            mean=self.mean,
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
            max=self.max,
        )

    # -- merge / serialization (windowed + cross-point rollups) ----------

    @property
    def zero_count(self) -> int:
        """Samples that landed in the non-positive underflow bucket."""
        return self._zero

    def bucket_counts(self) -> list[tuple[int, int]]:
        """``(bucket_index, count)`` pairs, sorted by index.  Bucket
        ``i`` covers values in ``[growth**i, growth**(i+1))``."""
        return sorted(self._buckets.items())

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram, exactly.

        Geometric buckets of equal ``growth`` are alignment-free: the
        merged histogram is bit-identical to one that observed both
        sample streams directly, which is what makes per-window and
        per-sweep-point histograms roll up without re-observing.
        Returns ``self`` for chaining.
        """
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with growth {other.growth} into {self.growth}"
            )
        self.count += other.count
        self.total += other.total
        self._zero += other._zero
        if other.count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        return self

    def to_dict(self) -> dict:
        """Full mergeable state as JSON-able data.

        Unlike :meth:`summary` this keeps the raw bucket counts, so
        :meth:`from_dict` reconstructs a histogram that merges and
        estimates percentiles identically to the original.  ``min`` /
        ``max`` are present only when the histogram is non-empty
        (their empty-state sentinels are infinities, which JSON lacks).
        """
        out: dict = {
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "zero": self._zero,
            "buckets": [[index, count] for index, count in self.bucket_counts()],
        }
        if self.count:
            out["min"] = self._min
            out["max"] = self._max
        return out

    @classmethod
    def from_dict(cls, data: dict, name: str = "") -> "Histogram":
        hist = cls(name or str(data.get("name", "")), growth=float(data["growth"]))
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist._zero = int(data["zero"])
        hist._buckets = {int(index): int(count) for index, count in data["buckets"]}
        if hist.count:
            hist._min = float(data["min"])
            hist._max = float(data["max"])
        return hist


class MetricsRegistry:
    """Flat namespace of instruments, created on first use.

    A name is bound to exactly one instrument kind for the lifetime of
    the registry — asking for ``counter("x")`` after ``gauge("x")`` is
    a bug and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, factory, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"{name!r} is already a {type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def series(
        self, name: str, *, max_points: int | None = None, mode: str = "ring"
    ) -> TimeSeries:
        """A time series channel.  ``max_points``/``mode`` apply only on
        first creation (they size the channel's buffer); later lookups
        return the existing instrument unchanged."""
        return self._get(
            name, lambda n: TimeSeries(n, max_points=max_points, mode=mode), TimeSeries
        )

    def histogram(self, name: str, growth: float = 1.02) -> Histogram:
        return self._get(name, lambda n: Histogram(n, growth=growth), Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self):
        return iter(sorted(self._instruments.items()))

    def kinds(self) -> dict[str, str]:
        """Instrument kind (``counter``/``gauge``/``series``/``histogram``)
        by name, sorted."""
        kind_names = {
            Counter: "counter",
            Gauge: "gauge",
            TimeSeries: "series",
            Histogram: "histogram",
        }
        return {name: kind_names[type(instrument)] for name, instrument in self}

    def snapshot(self) -> dict[str, object]:
        """JSON-serializable dump of every instrument, sorted by name.

        Counters and gauges render as their value, time series as
        ``[[t, v], ...]`` sample pairs, histograms as a percentile
        summary dict.  This is the one export everything downstream
        consumes: :meth:`rows` (and through it the ``repro trace``
        summary tables) and the experiment service's SSE ``metrics``
        frames.  On a seeded run the snapshot is deterministic —
        ``tests/test_obs.py`` pins it.
        """
        out: dict[str, object] = {}
        for name, instrument in self:
            if isinstance(instrument, (Counter, Gauge)):
                out[name] = instrument.value
            elif isinstance(instrument, TimeSeries):
                out[name] = [[t, v] for t, v in instrument.samples]
            elif isinstance(instrument, Histogram):
                out[name] = instrument.summary().asdict()
        return out

    def rows(self) -> list[list[object]]:
        """Table rows (name, kind, value summary) for human output,
        derived from :meth:`snapshot` so tables and machine exports can
        never disagree."""
        snap = self.snapshot()
        rows: list[list[object]] = []
        for name, kind in self.kinds().items():
            value = snap[name]
            if kind in ("counter", "gauge"):
                rows.append([name, kind, value])
            elif kind == "series":
                rows.append([name, kind, f"{len(value)} samples"])
            else:
                rows.append(
                    [
                        name,
                        kind,
                        f"n={value['count']} p50={value['p50']:.4g} p99={value['p99']:.4g}",
                    ]
                )
        return rows
