"""Counters, gauges, time series and streaming histograms.

The simulators in this repository produce *distributions* (tail
latency is the whole point of §2.3.1's disaggregation argument), but
storing every sample does not scale to long runs.  :class:`Histogram`
keeps geometric buckets — ``growth`` controls the relative resolution —
so p50/p95/p99 come out within a known relative error bound of the
exact percentiles at O(buckets) memory, independent of sample count.

Everything lives in a :class:`MetricsRegistry`: a flat, lazily-created
namespace of instruments.  Instruments are plain Python objects with
O(1) updates, cheap enough to leave permanently wired into simulator
hot paths; :meth:`MetricsRegistry.snapshot` renders the whole registry
as a JSON-friendly dict for reports and baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class Counter:
    """Monotonically increasing count (events, tokens, preemptions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value of an instantaneous quantity."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class TimeSeries:
    """Recorded ``(time, value)`` samples of one channel.

    This is the generic replacement for the simulator's original
    hard-coded ``queue_depth_trace``/``kv_occupancy_trace`` lists: any
    subsystem can open a channel by name and sample it on its own
    clock.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    @property
    def values(self) -> list[float]:
        return [v for _, v in self.samples]


@dataclass(frozen=True)
class HistogramSummary:
    """Percentile summary of a histogram (same shape as LatencyStats)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float


class Histogram:
    """Streaming histogram with geometric buckets.

    Positive samples land in bucket ``floor(log(v) / log(growth))``;
    a percentile estimate returns the geometric midpoint of the bucket
    holding that rank, so its relative error is bounded by
    ``sqrt(growth) - 1`` (≈1% at the default ``growth=1.02``) — without
    retaining any samples.  Non-positive samples are counted in a
    dedicated underflow bucket reported as 0.0 (latencies and sizes are
    non-negative; an exact zero is meaningful, e.g. zero queueing).
    """

    __slots__ = ("name", "growth", "_log_growth", "_buckets", "_zero", "count", "total", "_min", "_max")

    def __init__(self, name: str, growth: float = 1.02) -> None:
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value <= 0.0:
            self._zero += 1
            return
        index = math.floor(math.log(value) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Uses the nearest-rank definition over bucket counts; the exact
        observed min/max are returned at the extremes so the estimate
        never leaves the sample range.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # Geometric midpoint of [growth^i, growth^(i+1)).
                mid = self.growth ** (index + 0.5)
                return min(max(mid, self._min), self._max)
        return self._max

    def summary(self) -> HistogramSummary:
        return HistogramSummary(
            count=self.count,
            mean=self.mean,
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
            max=self.max,
        )


class MetricsRegistry:
    """Flat namespace of instruments, created on first use.

    A name is bound to exactly one instrument kind for the lifetime of
    the registry — asking for ``counter("x")`` after ``gauge("x")`` is
    a bug and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, factory, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"{name!r} is already a {type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def series(self, name: str) -> TimeSeries:
        return self._get(name, TimeSeries, TimeSeries)

    def histogram(self, name: str, growth: float = 1.02) -> Histogram:
        return self._get(name, lambda n: Histogram(n, growth=growth), Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self):
        return iter(sorted(self._instruments.items()))

    def kinds(self) -> dict[str, str]:
        """Instrument kind (``counter``/``gauge``/``series``/``histogram``)
        by name, sorted."""
        kind_names = {
            Counter: "counter",
            Gauge: "gauge",
            TimeSeries: "series",
            Histogram: "histogram",
        }
        return {name: kind_names[type(instrument)] for name, instrument in self}

    def snapshot(self) -> dict[str, object]:
        """JSON-serializable dump of every instrument, sorted by name.

        Counters and gauges render as their value, time series as
        ``[[t, v], ...]`` sample pairs, histograms as a percentile
        summary dict.  This is the one export everything downstream
        consumes: :meth:`rows` (and through it the ``repro trace``
        summary tables) and the experiment service's SSE ``metrics``
        frames.  On a seeded run the snapshot is deterministic —
        ``tests/test_obs.py`` pins it.
        """
        out: dict[str, object] = {}
        for name, instrument in self:
            if isinstance(instrument, (Counter, Gauge)):
                out[name] = instrument.value
            elif isinstance(instrument, TimeSeries):
                out[name] = [[t, v] for t, v in instrument.samples]
            elif isinstance(instrument, Histogram):
                s = instrument.summary()
                out[name] = {
                    "count": s.count,
                    "mean": s.mean,
                    "p50": s.p50,
                    "p95": s.p95,
                    "p99": s.p99,
                    "max": s.max,
                }
        return out

    def rows(self) -> list[list[object]]:
        """Table rows (name, kind, value summary) for human output,
        derived from :meth:`snapshot` so tables and machine exports can
        never disagree."""
        snap = self.snapshot()
        rows: list[list[object]] = []
        for name, kind in self.kinds().items():
            value = snap[name]
            if kind in ("counter", "gauge"):
                rows.append([name, kind, value])
            elif kind == "series":
                rows.append([name, kind, f"{len(value)} samples"])
            else:
                rows.append(
                    [
                        name,
                        kind,
                        f"n={value['count']} p50={value['p50']:.4g} p99={value['p99']:.4g}",
                    ]
                )
        return rows
