"""OpenMetrics / Prometheus text exposition for metric registries.

Renders any :class:`repro.obs.MetricsRegistry` — or several, each with
its own constant label set (the experiment server scrapes itself plus
one registry per job, labeled ``{job="j0001"}``) — as the OpenMetrics
text format, so a running ``repro serve`` plugs straight into a
Prometheus scraper with nothing but ``GET /metrics``.

Conventions (pinned by the golden test in
``tests/test_openmetrics.py``):

* metric names are sanitized (``.`` → ``_``; the dotted original is
  kept as the ``# HELP`` text) and families are emitted in sorted
  order;
* counters get the mandatory ``_total`` sample suffix;
* histograms expose cumulative ``_bucket{le="..."}`` samples at the
  geometric bucket upper bounds (plus ``le="0"`` for the non-positive
  underflow bucket and the mandatory ``le="+Inf"``), then ``_sum`` and
  ``_count``;
* time series render as a gauge of their last sample (the full series
  stays available via the JSON snapshot);
* label values are escaped per the spec; the output ends with
  ``# EOF``.

:func:`parse_openmetrics` reads the text back — enough of the format
to round-trip what this module emits (the parse-back test re-derives
``snapshot()`` from the exposition, with histogram percentiles
re-estimated from buckets via :func:`percentile_from_buckets`).
"""

from __future__ import annotations

import math
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries

__all__ = [
    "metric_name",
    "parse_openmetrics",
    "percentile_from_buckets",
    "render_openmetrics",
]

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: OpenMetrics content type, for HTTP responses.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def metric_name(name: str) -> str:
    """Sanitize a registry name into a legal metric name."""
    sanitized = _INVALID_NAME_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _fmt(value: float) -> str:
    """Render a sample value: integral floats as integers (counter and
    bucket counts read naturally), others via ``repr`` (shortest text
    that round-trips the exact float)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape(str(value))}"' for key, value in items)
    return "{" + body + "}"


_KINDS = {Counter: "counter", Gauge: "gauge", TimeSeries: "gauge", Histogram: "histogram"}


def render_openmetrics(registries) -> str:
    """Render one registry — or ``[(registry, labels), ...]`` — as
    OpenMetrics text.

    With several registries, instruments sharing a (sanitized) name
    must share a kind; their samples land in one family distinguished
    by the per-registry labels.  Empty time series are skipped (a
    last-value gauge of nothing has no meaningful sample).
    """
    if isinstance(registries, MetricsRegistry):
        registries = [(registries, None)]
    families: dict[str, tuple[str, str, list]] = {}
    for registry, labels in registries:
        labels = labels or {}
        for name, instrument in registry:  # sorted within each registry
            family = metric_name(name)
            kind = _KINDS[type(instrument)]
            known = families.get(family)
            if known is None:
                families[family] = (kind, name, [(labels, instrument)])
            elif known[0] != kind:
                raise ValueError(
                    f"metric {family!r} is both a {known[0]} and a {kind}"
                )
            else:
                known[2].append((labels, instrument))
    lines: list[str] = []
    for family in sorted(families):
        kind, original, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        lines.append(f"# HELP {family} {_escape(original)}")
        for labels, instrument in samples:
            if isinstance(instrument, Counter):
                lines.append(f"{family}_total{_labels(labels)} {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"{family}{_labels(labels)} {_fmt(instrument.value)}")
            elif isinstance(instrument, TimeSeries):
                if instrument.samples:
                    _, last = list(instrument.samples)[-1]
                    lines.append(f"{family}{_labels(labels)} {_fmt(last)}")
            else:  # Histogram
                cumulative = 0
                if instrument.zero_count:
                    cumulative = instrument.zero_count
                    lines.append(
                        f"{family}_bucket{_labels(labels, ('le', '0'))} {cumulative}"
                    )
                for index, count in instrument.bucket_counts():
                    cumulative += count
                    bound = _fmt(instrument.growth ** (index + 1))
                    lines.append(
                        f"{family}_bucket{_labels(labels, ('le', bound))} {cumulative}"
                    )
                lines.append(
                    f"{family}_bucket{_labels(labels, ('le', '+Inf'))} {instrument.count}"
                )
                lines.append(f"{family}_sum{_labels(labels)} {_fmt(instrument.total)}")
                lines.append(f"{family}_count{_labels(labels)} {instrument.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse exposition text (as produced by :func:`render_openmetrics`)
    back into families.

    Returns ``{family: {"type": kind, "help": str, "samples": [...]}}``
    where each sample is ``{"suffix": ""|"_total"|"_bucket"|"_sum"|
    "_count", "labels": {...}, "value": float}`` in document order.
    """
    families: dict[str, dict] = {}

    def family_for(sample_name: str) -> tuple[str, str]:
        """Resolve a sample to its declared family + suffix."""
        for suffix in ("_total", "_bucket", "_sum", "_count", ""):
            base = sample_name[: len(sample_name) - len(suffix)] if suffix else sample_name
            if sample_name.endswith(suffix) and base in families:
                return base, suffix
        raise ValueError(f"sample {sample_name!r} precedes its # TYPE line")

    for line in text.splitlines():
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            families[family] = {"type": kind, "help": "", "samples": []}
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            family, _, help_text = rest.partition(" ")
            if family in families:
                families[family]["help"] = _unescape(help_text)
            continue
        if line.startswith("#"):
            continue
        name_and_labels, _, value = line.rpartition(" ")
        sample_name, brace, label_body = name_and_labels.partition("{")
        labels: dict[str, str] = {}
        if brace:
            labels = {
                key: _unescape(raw) for key, raw in _LABEL.findall(label_body)
            }
        family, suffix = family_for(sample_name)
        families[family]["samples"].append(
            {"suffix": suffix, "labels": labels, "value": _parse_value(value)}
        )
    return families


def percentile_from_buckets(
    samples: list[dict], q: float, growth: float = 1.02
) -> float:
    """Nearest-rank percentile estimate from parsed ``_bucket`` samples.

    ``samples`` is one family's sample list (as returned by
    :func:`parse_openmetrics`); the bucket upper bounds are the
    renderer's ``growth**(i+1)``, so dividing by ``sqrt(growth)``
    recovers the geometric midpoint the histogram itself would report
    (modulo its min/max clamp at the extremes).
    """
    buckets = sorted(
        (
            (_parse_value(s["labels"]["le"]), s["value"])
            for s in samples
            if s["suffix"] == "_bucket"
        ),
        key=lambda b: b[0],
    )
    if not buckets:
        return 0.0
    count = buckets[-1][1]  # the +Inf bucket is cumulative over everything
    if count == 0:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * count))
    previous_bound = None
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if bound == 0.0:
                return 0.0  # the non-positive underflow bucket
            if math.isinf(bound):
                break  # only +Inf reached: fall through to the last finite bound
            return bound / math.sqrt(growth)
        previous_bound = bound
    return previous_bound if previous_bound is not None else 0.0
