"""Human-readable rendering of traces and metrics.

:func:`print_table` is the canonical fixed-width table printer — the
benchmark harness (``benchmarks/_report.py``) re-exports it so bench
output and ``repro trace`` summaries share one formatter.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import Tracer


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a fixed-width table."""
    widths = [len(h) for h in headers]
    cells = [[_fmt(v) for v in row] for row in rows]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in cells:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 32) -> str:
    """Render a value sequence as a unicode sparkline.

    Longer sequences are downsampled to ``width`` cells by averaging
    equal chunks; the vertical scale spans the observed min..max (a
    constant series renders as a flat low bar).  Used by the ``repro
    dash`` terminal dashboard; the HTML dashboard draws the same shape
    as SVG.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        chunk = len(values) / width
        values = [
            sum(vs) / len(vs)
            for vs in (
                values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))]
                for i in range(width)
            )
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(_SPARK_BLOCKS[round((v - lo) / span * top)] for v in values)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.4g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def print_trace_summary(tracer: Tracer, metrics: MetricsRegistry, top_k: int = 10) -> None:
    """Print the top-``top_k`` span kinds and every registry metric."""
    span_rows = tracer.span_rows(top_k)
    if span_rows:
        print_table(
            f"top {len(span_rows)} span kinds by total time",
            ["span", "count", "total s", "mean s", "max s"],
            span_rows,
        )
    metric_rows = metrics.rows()
    if metric_rows:
        print_table("metrics", ["metric", "kind", "value"], metric_rows)
