"""Deterministic self-chaos: hostile sweep points that prove the platform.

The repository simulates the paper's failure modes (§5) with
:mod:`repro.faults`; this module turns the same philosophy on the
platform itself.  A *chaos point* wraps any registered sweep target and
sabotages its own evaluation — killing the worker process, hanging past
the supervisor timeout, raising, or just running slow — on the first
``chaos_attempts`` attempts, then computes the real inner result.  Run
under :class:`repro.sweep.SupervisorPolicy`, a chaos grid therefore
*converges*: every sabotaged point is retried into a clean result, and
the headline invariant holds:

    the chaos run's per-point results are byte-identical to a
    chaos-free run of the same inner grid, at any worker count.

Determinism discipline — everything is seeded, nothing is sampled at
run time:

* **Assignment** is a pure function of the chaos seed and each inner
  point's canonical config (:func:`chaos_points`): the same grid always
  sabotages the same points the same way.
* **Inner seeds** are pre-derived exactly as the chaos-free reference
  spec would derive them (:meth:`repro.sweep.SweepSpec.point_seed`) and
  embedded in the chaos config, so the wrapped evaluation cannot tell
  it is running under chaos.
* **Sabotage** consults :func:`repro.sweep.current_attempt` — set by
  the supervisor in the forked attempt process — so chaos points are
  idempotent poison: hostile on early attempts, honest afterwards.

Typical drill (also in ``EXPERIMENTS.md`` and the CI chaos-smoke job)::

    spec = chaos_spec("serving", configs, seed=7, policy=ChaosPolicy())
    result = run_sweep(spec, workers=4, strict=False,
                       supervise=SupervisorPolicy(timeout_s=5.0))
    reference = run_sweep(reference_spec(spec), workers=4)
    assert_chaos_invariant(result, reference)
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

from .core.rng import derive_seed
from .sweep import SweepResult, SweepSpec, canonical_config, register_target
from .sweep.supervise import current_attempt

__all__ = [
    "CHAOS_MODES",
    "ChaosError",
    "ChaosPolicy",
    "assert_chaos_invariant",
    "chaos_points",
    "chaos_spec",
    "reference_spec",
]

#: Every sabotage mode the chaos target understands.  ``none`` points
#: ride along unsabotaged so a chaos grid always mixes hostile and
#: honest points.
CHAOS_MODES = ("kill", "hang", "raise", "slow", "none")


class ChaosError(RuntimeError):
    """The injected failure of a ``raise``-mode chaos point."""


@dataclass(frozen=True)
class ChaosPolicy:
    """What fraction of a grid turns hostile, and how.

    Attributes:
        modes: Sabotage modes assigned (seeded, uniform) to sabotaged
            points.  Subset of :data:`CHAOS_MODES` minus ``none``.
        rate: Fraction of points sabotaged (the rest become ``none``).
        attempts: Sabotage the first N attempts of each hostile point;
            attempt N+1 runs honestly.  Must stay below the
            supervisor's ``max_attempts`` for the grid to converge.
        hang_s: Sleep of a ``hang`` point — far beyond any sane
            ``timeout_s``, so only the supervisor's kill ends it.
        slow_s: Sleep of a ``slow`` point *before* computing honestly —
            keep it under ``timeout_s`` to exercise the
            slow-but-fine path, or above it to exercise timeout+retry.
    """

    modes: tuple[str, ...] = ("kill", "hang", "raise", "slow")
    rate: float = 0.5
    attempts: int = 1
    hang_s: float = 3600.0
    slow_s: float = 0.2

    def __post_init__(self) -> None:
        bad = set(self.modes) - (set(CHAOS_MODES) - {"none"})
        if bad or not self.modes:
            raise ValueError(f"invalid chaos modes: {sorted(bad) or 'empty'}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


def chaos_points(
    inner_target: str,
    configs: list[dict],
    *,
    seed: int,
    policy: ChaosPolicy,
) -> list[dict]:
    """Wrap ``configs`` (already merged) into chaos point configs.

    Assignment is seeded per point: a draw derived from ``seed`` and the
    inner config's canonical JSON decides whether the point is
    sabotaged (``policy.rate``) and, independently, which mode it gets.
    The inner seed is pre-derived exactly as
    ``SweepSpec(target=inner_target, points=configs, seed=seed)``
    would, so the wrapped target sees identical ``(config, seed)``
    inputs either way.
    """
    points = []
    for config in configs:
        content = canonical_config(config)
        draw = derive_seed(seed, f"chaos/assign/{content}")
        sabotage = (draw % 2**20) / 2**20 < policy.rate
        mode = policy.modes[
            derive_seed(seed, f"chaos/mode/{content}") % len(policy.modes)
        ] if sabotage else "none"
        inner_seed = (
            int(config["seed"])
            if "seed" in config
            else derive_seed(seed, f"sweep/{inner_target}/{content}")
        )
        points.append(
            {
                "chaos_mode": mode,
                "chaos_attempts": policy.attempts,
                "chaos_hang_s": policy.hang_s,
                "chaos_slow_s": policy.slow_s,
                "inner_target": inner_target,
                "inner": config,
                "inner_seed": inner_seed,
            }
        )
    return points


def chaos_spec(
    inner_target: str,
    configs: list[dict],
    *,
    seed: int,
    policy: ChaosPolicy,
    base: dict | None = None,
    name: str | None = None,
) -> SweepSpec:
    """A ready-to-run chaos sweep over ``inner_target``'s grid.

    ``base`` is merged into each inner config *before* wrapping (so
    sabotage assignment and inner seeds see the full merged config,
    matching what :func:`reference_spec` will run).
    """
    merged = [{**(base or {}), **c} for c in configs]
    return SweepSpec(
        target="chaos",
        points=chaos_points(inner_target, merged, seed=seed, policy=policy),
        seed=seed,
        name=name or f"chaos:{inner_target}",
    )


def reference_spec(spec: SweepSpec) -> SweepSpec:
    """The chaos-free run the invariant compares against.

    Unwraps a :func:`chaos_spec` back to the inner grid under the same
    root seed — by construction every point evaluates with the exact
    ``(config, seed)`` pair its chaos twin used.
    """
    if spec.target != "chaos":
        raise ValueError(f"not a chaos spec (target={spec.target!r})")
    configs = spec.configs()
    inner_targets = {c["inner_target"] for c in configs}
    if len(inner_targets) != 1:
        raise ValueError(f"mixed inner targets: {sorted(inner_targets)}")
    return SweepSpec(
        target=inner_targets.pop(),
        points=[c["inner"] for c in configs],
        seed=spec.seed,
        name=(spec.name or "chaos") + ":reference",
    )


def assert_chaos_invariant(chaos: SweepResult, reference: SweepResult) -> None:
    """The headline check: chaos converged to the chaos-free truth.

    Every non-quarantined chaos point must carry a result byte-identical
    (canonical JSON) to the reference point of the same index; the
    reference run must be error-free.  Raises ``AssertionError`` with
    the first diverging point otherwise.
    """
    if len(chaos.points) != len(reference.points):
        raise AssertionError(
            f"point count mismatch: chaos {len(chaos.points)} "
            f"vs reference {len(reference.points)}"
        )
    for cp, rp in zip(chaos.points, reference.points):
        if rp.error is not None:
            raise AssertionError(
                f"reference point {rp.index} failed: {rp.error['type']}"
            )
        if cp.error is not None:
            if cp.error["type"] == "PointQuarantined":
                continue  # legitimately poisoned out of the run
            raise AssertionError(
                f"chaos point {cp.index} ended with non-quarantine error "
                f"{cp.error['type']}: {cp.error['message']}"
            )
        mine = json.dumps(cp.result, sort_keys=True, separators=(",", ":"))
        truth = json.dumps(rp.result, sort_keys=True, separators=(",", ":"))
        if mine != truth:
            raise AssertionError(
                f"chaos point {cp.index} "
                f"({cp.config['chaos_mode']}) diverged from reference"
            )


@register_target("chaos")
def _chaos_target(config: dict, seed: int) -> dict:
    """Sabotage early attempts, then evaluate the wrapped target.

    ``seed`` (the chaos point's own derived seed) is deliberately
    unused: the inner evaluation runs on the pre-derived
    ``inner_seed`` so its result matches the chaos-free reference.
    """
    del seed
    from .sweep import get_target

    mode = config["chaos_mode"]
    if mode != "none" and current_attempt() <= config["chaos_attempts"]:
        if mode == "raise":
            raise ChaosError(
                f"injected failure (attempt {current_attempt()})"
            )
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(config["chaos_hang_s"])
        if mode == "slow":
            time.sleep(config["chaos_slow_s"])
    return get_target(config["inner_target"])(dict(config["inner"]), config["inner_seed"])
