"""Model FLOPs Utilization accounting (Table 4's TFLOPS/MFU rows).

The paper computes MFU against BF16 peak, in two conventions:

* **causal** — only the lower triangle of the attention matrix counts
  (FlashAttention convention),
* **non-causal** — the full attention matrix counts (Megatron
  convention).

Both use the same measured step time, so non-causal MFU is higher by
exactly the extra attention FLOPs it credits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hardware import GpuSpec, H800
from ..model.config import ModelConfig
from ..model.flops import training_flops_per_token


@dataclass(frozen=True)
class MfuReport:
    """Throughput accounting of one measured training step."""

    tokens_per_step: float
    step_time: float
    num_gpus: int
    flops_per_token_causal: float
    flops_per_token_noncausal: float
    peak_flops: float

    def achieved_flops_per_gpu(self, causal: bool = True) -> float:
        """Achieved FLOP/s per GPU under the chosen convention."""
        per_token = self.flops_per_token_causal if causal else self.flops_per_token_noncausal
        return per_token * self.tokens_per_step / (self.step_time * self.num_gpus)

    def tflops(self, causal: bool = True) -> float:
        """Achieved TFLOPS per GPU (Table 4's TFLOPS rows)."""
        return self.achieved_flops_per_gpu(causal) / 1e12

    def mfu(self, causal: bool = True) -> float:
        """Model FLOPs utilization against BF16 peak."""
        return self.achieved_flops_per_gpu(causal) / self.peak_flops


def mfu_report(
    model: ModelConfig,
    tokens_per_step: float,
    step_time: float,
    num_gpus: int,
    seq_len: int = 4096,
    gpu: GpuSpec = H800,
) -> MfuReport:
    """Build the MFU accounting for one training step measurement."""
    if step_time <= 0 or num_gpus <= 0 or tokens_per_step <= 0:
        raise ValueError("tokens, step time and GPU count must be positive")
    return MfuReport(
        tokens_per_step=tokens_per_step,
        step_time=step_time,
        num_gpus=num_gpus,
        flops_per_token_causal=training_flops_per_token(model, seq_len, causal=True),
        flops_per_token_noncausal=training_flops_per_token(model, seq_len, causal=False),
        peak_flops=gpu.bf16_flops,
    )
