"""Per-GPU training memory model (Section 4.2's DualPipe memory claim).

DeepSeek-V3 trains 671B parameters on 80 GB GPUs by composing:

* **EP sharding of the routed experts** — each GPU stores only its
  slice of the experts of its own pipeline layers;
* **PP sharding of the trunk** — each DualPipe rank holds two model
  chunks (one per direction), ~2/P of the layers;
* **FP8 weights with sharded FP32 master copies + Adam moments**;
* **activation memory bounded by the schedule** — with activation
  checkpointing, what persists per in-flight micro-batch is a few
  boundary tensors per layer.  1F1B buffers P micro-batches on the
  first rank but only 1 on the last; DualPipe's bidirectional feed
  gives every rank the same peak — the paper's "balances memory usage
  across GPUs".

The numbers are a capacity model, not a byte-exact allocator: the
tests check the V3 configuration fits comfortably in 80 GB and that
the schedule-imbalance claim holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.config import ModelConfig
from ..model.params import count_params

BYTES_FP8 = 1
BYTES_BF16 = 2
BYTES_FP32 = 4


@dataclass(frozen=True)
class ShardingPlan:
    """How the model is partitioned across the cluster.

    Attributes:
        pipeline_parallel: PP degree (DualPipe: 2 chunks per rank).
        expert_parallel: Ways each layer's routed experts are sharded.
        optimizer_shards: Ranks sharing the FP32 master/moment shards
            (ZeRO-1 style over the replicated dimension).
        microbatch_tokens: Tokens per pipeline micro-batch.
        checkpoint_tensors_per_layer: Width-h tensors retained per
            layer per token under activation recomputation.
    """

    pipeline_parallel: int = 16
    expert_parallel: int = 64
    optimizer_shards: int = 16
    microbatch_tokens: int = 4096
    checkpoint_tensors_per_layer: int = 2

    def __post_init__(self) -> None:
        if min(
            self.pipeline_parallel,
            self.expert_parallel,
            self.optimizer_shards,
            self.microbatch_tokens,
            self.checkpoint_tensors_per_layer,
        ) < 1:
            raise ValueError("all plan parameters must be positive")


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU memory (bytes)."""

    weights: float
    gradients: float
    master_and_optimizer: float
    activations: float

    @property
    def total(self) -> float:
        """Total per-GPU footprint."""
        return self.weights + self.gradients + self.master_and_optimizer + self.activations


def params_per_gpu(model: ModelConfig, plan: ShardingPlan) -> float:
    """Parameters resident on one GPU under the sharding plan.

    The trunk (attention, dense FFNs, gates, embeddings/head and MTP,
    amortized across ranks) takes a 2/P share; routed experts take a
    further 1/EP of that share.
    """
    p = count_params(model)
    trunk = p.attention + p.dense_ffn + p.gates + p.embedding + p.output_head + p.mtp_total
    pp_share = min(1.0, 2.0 / plan.pipeline_parallel)
    return trunk * pp_share + p.moe_total * pp_share / plan.expert_parallel


def inflight_microbatches(schedule: str, pipeline_parallel: int, rank: int) -> int:
    """Peak in-flight micro-batches on ``rank`` under a schedule.

    * ``"1f1b"`` — rank r buffers ``P - r`` micro-batches (rank 0
      holds P, the last rank holds 1: imbalanced).
    * ``"dualpipe"`` — the two directions overlap symmetrically; every
      rank peaks at ``P + 1`` (balanced).
    """
    if not 0 <= rank < pipeline_parallel:
        raise ValueError("rank out of range")
    if schedule == "1f1b":
        return pipeline_parallel - rank
    if schedule == "dualpipe":
        return pipeline_parallel + 1
    raise ValueError(f"unknown schedule {schedule!r}")


def activation_imbalance(schedule: str, pipeline_parallel: int) -> float:
    """Max-over-min peak activation count across ranks (1.0 = balanced)."""
    counts = [
        inflight_microbatches(schedule, pipeline_parallel, r)
        for r in range(pipeline_parallel)
    ]
    return max(counts) / min(counts)


def activation_bytes_per_microbatch(model: ModelConfig, plan: ShardingPlan) -> float:
    """Persistent activation bytes of one in-flight micro-batch.

    With recomputation, each of the rank's ~2L/P layers retains
    ``checkpoint_tensors_per_layer`` width-h BF16 tensors per token.
    """
    layers_per_rank = max(1.0, 2.0 * model.num_layers / plan.pipeline_parallel)
    per_token = plan.checkpoint_tensors_per_layer * model.hidden_size * BYTES_BF16
    return plan.microbatch_tokens * layers_per_rank * per_token


def training_memory_per_gpu(
    model: ModelConfig,
    plan: ShardingPlan,
    schedule: str = "dualpipe",
    rank: int = 0,
    weight_bytes: int = BYTES_FP8,
) -> MemoryBreakdown:
    """Per-GPU training memory breakdown.

    Weights at ``weight_bytes`` (FP8 in V3), gradients at BF16, FP32
    master weights plus two Adam moments sharded ``optimizer_shards``
    ways, activations from the schedule's peak in-flight count.
    """
    resident = params_per_gpu(model, plan)
    inflight = inflight_microbatches(schedule, plan.pipeline_parallel, rank)
    return MemoryBreakdown(
        weights=resident * weight_bytes,
        gradients=resident * BYTES_BF16,
        master_and_optimizer=resident * 3 * BYTES_FP32 / plan.optimizer_shards,
        activations=inflight * activation_bytes_per_microbatch(model, plan),
    )


def fits(model: ModelConfig, plan: ShardingPlan, hbm_bytes: float, **kwargs) -> bool:
    """Whether the plan fits a GPU's memory with ~10% headroom."""
    return training_memory_per_gpu(model, plan, **kwargs).total <= 0.9 * hbm_bytes
