"""Parallelism substrate: pipeline schedules, MFU, cluster throughput."""

from .memory import (
    MemoryBreakdown,
    ShardingPlan,
    activation_bytes_per_microbatch,
    activation_imbalance,
    fits,
    inflight_microbatches,
    params_per_gpu,
    training_memory_per_gpu,
)
from .mfu import MfuReport, mfu_report
from .schedule import (
    ChunkCosts,
    ScheduleResult,
    TaskRecord,
    analytic_1f1b_bubble,
    analytic_dualpipe_bubble,
    analytic_zb1p_bubble,
    simulate_pipeline,
)
from .throughput import (
    StepReport,
    TrainingJobConfig,
    simulate_training_step,
    tokens_per_day,
    training_cost_usd,
    training_gpu_hours,
)

__all__ = [
    "MemoryBreakdown",
    "ShardingPlan",
    "activation_bytes_per_microbatch",
    "activation_imbalance",
    "fits",
    "inflight_microbatches",
    "params_per_gpu",
    "training_memory_per_gpu",
    "MfuReport",
    "mfu_report",
    "ChunkCosts",
    "ScheduleResult",
    "TaskRecord",
    "analytic_1f1b_bubble",
    "analytic_dualpipe_bubble",
    "analytic_zb1p_bubble",
    "simulate_pipeline",
    "StepReport",
    "TrainingJobConfig",
    "simulate_training_step",
    "tokens_per_day",
    "training_cost_usd",
    "training_gpu_hours",
]
