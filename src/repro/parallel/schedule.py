"""Pipeline-parallel schedule simulation: 1F1B and DualPipe.

DualPipe (Section 4.2) is DeepSeek-V3's bidirectional pipeline: each
rank holds two model chunks (stage ``r`` of the forward direction and
stage ``P-1-r`` of the reverse direction), micro-batches are fed from
both ends, and the weight-gradient work (W) is decoupled from the
input-gradient work (B) so it can fill would-be bubbles — the
zero-bubble family of schedules.

The simulator here is event-level: every chunk execution
(F / B / W, per direction, per micro-batch, per stage) is a task with
dependencies; each rank greedily runs ready tasks under a
1F1B-alternating policy with W as filler.  From the resulting timeline
we measure exactly the quantities Table 4 reports: per-phase times,
bubble, and total step time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ChunkCosts:
    """Durations of one micro-batch chunk on one pipeline stage.

    Attributes:
        forward: Forward (F) time.
        backward_input: Input-gradient backward (B) time.
        backward_weight: Weight-gradient backward (W) time.
    """

    forward: float
    backward_input: float
    backward_weight: float

    def __post_init__(self) -> None:
        if min(self.forward, self.backward_input, self.backward_weight) < 0:
            raise ValueError("chunk costs must be non-negative")

    @property
    def total(self) -> float:
        """F + B + W."""
        return self.forward + self.backward_input + self.backward_weight


@dataclass(frozen=True)
class TaskRecord:
    """One executed chunk in the timeline."""

    rank: int
    kind: str  # "F", "B" or "W"
    direction: int  # 0 = left-to-right, 1 = right-to-left
    microbatch: int
    stage: int
    start: float
    end: float


@dataclass
class ScheduleResult:
    """A simulated pipeline schedule.

    Attributes:
        num_ranks: Pipeline ranks.
        tasks: Executed chunks, in completion order.
        total_time: Makespan of the step (excluding optimizer).
    """

    num_ranks: int
    tasks: list[TaskRecord]
    total_time: float

    def rank_tasks(self, rank: int) -> list[TaskRecord]:
        """Tasks of one rank, sorted by start time."""
        return sorted((t for t in self.tasks if t.rank == rank), key=lambda t: t.start)

    def busy_time(self, rank: int) -> float:
        """Total execution time on one rank."""
        return sum(t.end - t.start for t in self.tasks if t.rank == rank)

    def bubble_time(self, rank: int) -> float:
        """Idle time on one rank within the step."""
        return self.total_time - self.busy_time(rank)

    @property
    def mean_bubble(self) -> float:
        """Average idle time across ranks."""
        return sum(self.bubble_time(r) for r in range(self.num_ranks)) / self.num_ranks

    @property
    def bubble_fraction(self) -> float:
        """Mean idle fraction of the step."""
        if self.total_time == 0:
            return 0.0
        return self.mean_bubble / self.total_time

    def kind_time(self, rank: int, kind: str) -> float:
        """Total time rank spends on one chunk kind."""
        return sum(t.end - t.start for t in self.tasks if t.rank == rank and t.kind == kind)

    def validate(self) -> None:
        """Check schedule sanity: no overlap, dependencies respected."""
        for rank in range(self.num_ranks):
            tasks = self.rank_tasks(rank)
            for a, b in zip(tasks, tasks[1:]):
                if b.start < a.end - 1e-9:
                    raise AssertionError(f"rank {rank}: overlapping tasks {a} / {b}")
        done: dict[tuple, float] = {}
        for t in sorted(self.tasks, key=lambda t: t.end):
            done[(t.kind, t.direction, t.microbatch, t.stage)] = t.end
        for t in self.tasks:
            for dep in _dependencies(t.kind, t.direction, t.microbatch, t.stage, self._num_stages()):
                if dep not in done:
                    raise AssertionError(f"missing dependency {dep} of {t}")
                if done[dep] > t.start + 1e-9:
                    raise AssertionError(f"{t} started before dependency {dep} finished")

    def _num_stages(self) -> int:
        return max(t.stage for t in self.tasks) + 1

    def render(self, width: int = 100) -> str:
        """ASCII timeline of the schedule (one row per rank).

        Mirrors the DualPipe repository's schedule charts: ``F``/``B``/
        ``W`` cells for the two directions (lowercase = reverse
        direction), ``.`` for idle.  Useful for eyeballing bubbles.
        """
        if width < 10:
            raise ValueError("width must be at least 10")
        scale = self.total_time / width
        rows = []
        for rank in range(self.num_ranks):
            cells = ["."] * width
            for t in self.rank_tasks(rank):
                lo = min(width - 1, int(t.start / scale))
                hi = min(width, max(lo + 1, int(t.end / scale)))
                symbol = t.kind if t.direction == 0 else t.kind.lower()
                for i in range(lo, hi):
                    cells[i] = symbol
            rows.append(f"rank {rank:>2} |" + "".join(cells) + "|")
        return "\n".join(rows)


def _dependencies(
    kind: str, direction: int, mb: int, stage: int, num_stages: int
) -> list[tuple]:
    deps = []
    if kind == "F":
        if stage > 0:
            deps.append(("F", direction, mb, stage - 1))
    elif kind == "B":
        deps.append(("F", direction, mb, stage))
        if stage < num_stages - 1:
            deps.append(("B", direction, mb, stage + 1))
    else:  # W
        deps.append(("B", direction, mb, stage))
    return deps


def _rank_of(stage: int, direction: int, num_ranks: int) -> int:
    return stage if direction == 0 else num_ranks - 1 - stage


def simulate_pipeline(
    num_ranks: int,
    microbatches_per_direction: int,
    costs: ChunkCosts,
    bidirectional: bool = True,
    comm_latency: float = 0.0,
) -> ScheduleResult:
    """Simulate a zero-bubble pipeline schedule.

    Args:
        num_ranks: Pipeline stages P.
        microbatches_per_direction: Micro-batches fed from each end
            (DualPipe) or in total (unidirectional mode).
        costs: Per-chunk F/B/W durations (identical across stages).
        bidirectional: True = DualPipe-style two-direction schedule;
            False = single-direction 1F1B with split W.
        comm_latency: Stage-to-stage activation transfer latency added
            to each cross-stage dependency (DualPipe overlaps most of
            it; keep 0 for the overlapped regime).

    Returns:
        The executed schedule.
    """
    if num_ranks < 1 or microbatches_per_direction < 1:
        raise ValueError("num_ranks and microbatches must be positive")
    directions = (0, 1) if bidirectional else (0,)
    duration = {"F": costs.forward, "B": costs.backward_input, "W": costs.backward_weight}

    # Build dependency graph.
    all_tasks: list[tuple] = []
    for d in directions:
        for mb in range(microbatches_per_direction):
            for s in range(num_ranks):
                for kind in ("F", "B", "W"):
                    all_tasks.append((kind, d, mb, s))
    indeg: dict[tuple, int] = {}
    dependents: dict[tuple, list[tuple]] = {}
    for task in all_tasks:
        deps = _dependencies(*task, num_ranks)
        indeg[task] = len(deps)
        for dep in deps:
            dependents.setdefault(dep, []).append(task)

    ready: dict[int, list[tuple]] = {r: [] for r in range(num_ranks)}
    release_time: dict[tuple, float] = {t: 0.0 for t in all_tasks}
    for task in all_tasks:
        if indeg[task] == 0:
            kind, d, mb, s = task
            ready[_rank_of(s, d, num_ranks)].append(task)

    rank_free = [0.0] * num_ranks
    last_kind = [""] * num_ranks
    records: list[TaskRecord] = []
    # Priority: alternate F/B (prefer the one not run last); W only when
    # no F/B is runnable now or W is all that remains.
    heap: list[tuple[float, int, int]] = [(0.0, r, 0) for r in range(num_ranks)]
    seq = num_ranks
    pending = len(all_tasks)

    def pick(rank: int, now: float) -> tuple | None:
        runnable = [t for t in ready[rank] if release_time[t] <= now + 1e-15]
        if not runnable:
            return None
        fb = [t for t in runnable if t[0] != "W"]
        if fb:
            preferred = "B" if last_kind[rank] == "F" else "F"
            best = [t for t in fb if t[0] == preferred]
            pool = best or fb
            # Oldest micro-batch first keeps the pipe draining.
            return min(pool, key=lambda t: (t[2], t[0]))
        return min(runnable, key=lambda t: t[2])

    while pending:
        now, rank, _ = heapq.heappop(heap)
        if rank_free[rank] > now + 1e-15:
            continue
        task = pick(rank, now)
        if task is None:
            # Wake when the next dependency might release.
            future = [release_time[t] for t in ready[rank] if release_time[t] > now]
            wake = min(future) if future else None
            if wake is None:
                continue  # nothing queued; rank will be re-woken on release
            seq += 1
            heapq.heappush(heap, (wake, rank, seq))
            continue
        kind, d, mb, s = task
        ready[rank].remove(task)
        start = max(now, rank_free[rank])
        end = start + duration[kind]
        rank_free[rank] = end
        last_kind[rank] = kind
        records.append(TaskRecord(rank, kind, d, mb, s, start, end))
        pending -= 1
        for dep_task in dependents.get(task, []):
            indeg[dep_task] -= 1
            if indeg[dep_task] == 0:
                k2, d2, mb2, s2 = dep_task
                r2 = _rank_of(s2, d2, num_ranks)
                cross_stage = s2 != s or d2 != d
                release_time[dep_task] = end + (comm_latency if cross_stage else 0.0)
                ready[r2].append(dep_task)
                seq += 1
                heapq.heappush(heap, (release_time[dep_task], r2, seq))
        seq += 1
        heapq.heappush(heap, (end, rank, seq))

    total = max(r.end for r in records)
    return ScheduleResult(num_ranks=num_ranks, tasks=records, total_time=total)


def analytic_1f1b_bubble(num_ranks: int, costs: ChunkCosts) -> float:
    """Classic 1F1B bubble: (P-1)(F + B + W) with W on the critical path."""
    return (num_ranks - 1) * costs.total


def analytic_zb1p_bubble(num_ranks: int, costs: ChunkCosts) -> float:
    """ZB1P bubble: (P-1)(F + B - 2W) — split-W zero-bubble schedule.

    The intermediate point between classic 1F1B and DualPipe in the
    DualPipe repository's comparison table.
    """
    return (num_ranks - 1) * max(
        0.0, costs.forward + costs.backward_input - 2 * costs.backward_weight
    )


def analytic_dualpipe_bubble(num_ranks: int, costs: ChunkCosts) -> float:
    """DualPipe bubble: (P/2 - 1)(F&B + B - 3W) (DualPipe repo formula).

    F&B is the mutually overlapped forward+backward chunk; with no
    overlap benefit it is F + B.
    """
    fb = costs.forward + costs.backward_input
    return (num_ranks / 2 - 1) * max(
        0.0, fb + costs.backward_input - 3 * costs.backward_weight
    )
