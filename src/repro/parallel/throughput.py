"""Cluster training-step model: the Table 4 reproduction.

Combines the DualPipe schedule simulator with FLOPs-derived chunk
costs to predict the full training-step decomposition the paper
reports for DeepSeek-V3 on 2,048 H800s: per-phase times (1F / 1B / 1W
/ bubble / 1F1B / opt), time per step, tokens per day, and MFU.

Calibration: one scalar — ``kernel_efficiency``, the fraction of BF16
peak the compute kernels achieve during non-idle time (~0.47 on H800,
consistent with Table 4's 38.9% causal MFU once bubbles and the
optimizer step are added back).  The B:F and W:F ratios default to the
measured decomposition (backward-input is more expensive than 2/3 of
the backward because attention recomputation lands there).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hardware import GpuSpec, H800
from ..core.units import SECONDS_PER_DAY
from ..model.config import DEEPSEEK_V3, ModelConfig
from ..model.flops import forward_flops_per_token
from .mfu import MfuReport, mfu_report
from .schedule import (
    ChunkCosts,
    ScheduleResult,
    analytic_dualpipe_bubble,
    simulate_pipeline,
)


@dataclass(frozen=True)
class TrainingJobConfig:
    """A data/pipeline/expert-parallel training job.

    Attributes:
        model: Model being trained.
        num_gpus: Total accelerators.
        pipeline_parallel: PP degree (DualPipe requires even).
        global_batch_sequences: Sequences per optimizer step.
        seq_len: Tokens per sequence.
        microbatch_sequences: Sequences per pipeline micro-batch.
        kernel_efficiency: Achieved fraction of BF16 peak in busy time.
        backward_input_ratio: B time as a multiple of F time.
        backward_weight_ratio: W time as a multiple of F time.
        optimizer_time: Per-step optimizer/update wall time (seconds).
        gpu: Accelerator model.
    """

    model: ModelConfig = DEEPSEEK_V3
    num_gpus: int = 2048
    pipeline_parallel: int = 16
    global_batch_sequences: int = 15360
    seq_len: int = 4096
    microbatch_sequences: int = 1
    kernel_efficiency: float = 0.45
    backward_input_ratio: float = 1.76
    backward_weight_ratio: float = 0.42
    optimizer_time: float = 0.30
    gpu: GpuSpec = H800

    def __post_init__(self) -> None:
        if self.num_gpus % self.pipeline_parallel:
            raise ValueError("num_gpus must divide by pipeline_parallel")
        if self.pipeline_parallel % 2:
            raise ValueError("DualPipe needs an even pipeline_parallel")
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")

    @property
    def data_parallel(self) -> int:
        """DP (x EP) replica count."""
        return self.num_gpus // self.pipeline_parallel

    @property
    def tokens_per_step(self) -> int:
        """Tokens consumed per optimizer step."""
        return self.global_batch_sequences * self.seq_len

    @property
    def microbatches_per_rank(self) -> int:
        """Micro-batches each pipeline flows per step."""
        per_replica = self.global_batch_sequences // self.data_parallel
        if per_replica % self.microbatch_sequences:
            raise ValueError("global batch does not divide into micro-batches")
        return per_replica // self.microbatch_sequences

    def chunk_costs(self) -> ChunkCosts:
        """F/B/W durations of one micro-batch on one pipeline stage."""
        tokens = self.microbatch_sequences * self.seq_len
        fwd_flops = (
            tokens
            * forward_flops_per_token(self.model, self.seq_len, causal=True)
            / self.pipeline_parallel
        )
        f = fwd_flops / (self.gpu.bf16_flops * self.kernel_efficiency)
        return ChunkCosts(
            forward=f,
            backward_input=f * self.backward_input_ratio,
            backward_weight=f * self.backward_weight_ratio,
        )


@dataclass(frozen=True)
class StepReport:
    """Simulated training-step decomposition (the Table 4 rows)."""

    config: TrainingJobConfig
    schedule: ScheduleResult | None
    busy: float
    warmup_forward: float  # "1F": P forward chunks filling the pipe
    warmup_backward: float  # "1B"
    weight_grad: float  # "1W"
    steady_phase: float  # "1F1B"
    bubble: float
    optimizer: float

    @property
    def step_time(self) -> float:
        """Wall time per optimizer step."""
        return self.busy + self.bubble + self.optimizer

    @property
    def tokens_per_day(self) -> float:
        """Training throughput in tokens/day."""
        return self.config.tokens_per_step * SECONDS_PER_DAY / self.step_time

    @property
    def mfu(self) -> MfuReport:
        """MFU accounting at this step time."""
        return mfu_report(
            self.config.model,
            self.config.tokens_per_step,
            self.step_time,
            self.config.num_gpus,
            self.config.seq_len,
            self.config.gpu,
        )


def simulate_training_step(
    config: TrainingJobConfig,
    comm_latency: float = 0.0,
    bubble_model: str = "analytic",
) -> StepReport:
    """Simulate one DualPipe training step and decompose it.

    Args:
        config: Job description.
        comm_latency: *Non-overlapped* stage-to-stage communication
            latency per chunk; DualPipe's compute/communication overlap
            makes it ~0 on both MPFT and MRFT fabrics (which is why
            Table 4 shows identical throughput for the two networks).
        bubble_model: "analytic" uses the DualPipe paper's bubble
            formula (the production schedule); "event" measures the
            bubble of the event-level greedy zero-bubble schedule,
            which is an optimistic lower bound.

    Returns:
        The step decomposition.
    """
    costs = config.chunk_costs()
    mb_per_direction = config.microbatches_per_rank // 2
    if mb_per_direction < 1:
        raise ValueError("need at least two micro-batches for DualPipe")
    busy = config.microbatches_per_rank * costs.total
    if bubble_model == "analytic":
        schedule = None
        bubble = analytic_dualpipe_bubble(config.pipeline_parallel, costs)
        bubble += 2 * comm_latency * config.pipeline_parallel
    elif bubble_model == "event":
        schedule = simulate_pipeline(
            config.pipeline_parallel,
            mb_per_direction,
            costs,
            bidirectional=True,
            comm_latency=comm_latency,
        )
        busy = schedule.busy_time(0)
        bubble = schedule.mean_bubble
    else:
        raise ValueError(f"unknown bubble_model {bubble_model!r}")
    p = config.pipeline_parallel
    warm_f = p * costs.forward
    warm_b = p * costs.backward_input
    warm_w = p * costs.backward_weight
    return StepReport(
        config=config,
        schedule=schedule,
        busy=busy,
        warmup_forward=warm_f,
        warmup_backward=warm_b,
        weight_grad=warm_w,
        steady_phase=busy - warm_f - warm_b - warm_w,
        bubble=bubble,
        optimizer=config.optimizer_time,
    )


def tokens_per_day(tokens_per_step: float, step_time: float) -> float:
    """Throughput helper: tokens trained per day."""
    if step_time <= 0:
        raise ValueError("step_time must be positive")
    return tokens_per_step * SECONDS_PER_DAY / step_time


def training_gpu_hours(report: StepReport, total_tokens: float) -> float:
    """GPU-hours to train ``total_tokens`` at the simulated throughput.

    The V3 technical report the paper builds on quotes 2.664M H800
    GPU-hours for the 14.8T-token pre-training run; this derives the
    same quantity from the simulated step time.
    """
    if total_tokens <= 0:
        raise ValueError("total_tokens must be positive")
    days = total_tokens / report.tokens_per_day
    return days * 24.0 * report.config.num_gpus


def training_cost_usd(
    report: StepReport, total_tokens: float, gpu_hour_rate: float = 2.0
) -> float:
    """Dollar cost of the run at a GPU-hour rental rate.

    The V3 report uses $2/H800-hour, giving the widely quoted ~$5.3M
    pre-training figure.
    """
    if gpu_hour_rate <= 0:
        raise ValueError("gpu_hour_rate must be positive")
    return training_gpu_hours(report, total_tokens) * gpu_hour_rate
