"""repro: reproduction of the DeepSeek-V3 ISCA'25 co-design paper.

Subpackages:

* :mod:`repro.core` - units, hardware catalog, roofline machinery.
* :mod:`repro.model` - MLA/GQA attention, DeepSeekMoE, MTP, analytics.
* :mod:`repro.precision` - FP8/LogFMT formats, quantization, GEMM emulation.
* :mod:`repro.autograd` - minimal reverse-mode autograd used for training.
* :mod:`repro.training` - tiny trainable MLA+MoE model and FP8 validation.
* :mod:`repro.network` - topologies, cost/latency models, flow simulator.
* :mod:`repro.comm` - EP dispatch/combine, overlap, IBGDA, contention.
* :mod:`repro.parallel` - DualPipe schedules, MFU, cluster throughput.
* :mod:`repro.inference` - decode rooflines, TPOT limits, speculative decoding.
* :mod:`repro.serving` - request-level discrete-event serving simulator.
* :mod:`repro.reliability` - failure injection, SDC detection, checkpointing.
* :mod:`repro.obs` - unified tracing (Chrome trace-event export) and
  metrics (counters, gauges, streaming histograms) for the simulators.
* :mod:`repro.faults` - seeded fault schedules, injection and recovery
  for the serving, network-flow and training simulators.
* :mod:`repro.sweep` - deterministic parallel experiment engine with a
  content-addressed result cache and supervised execution (per-point
  timeouts, retries, poison-point quarantine) over registered targets.
* :mod:`repro.service` - long-lived asyncio experiment server (``repro
  serve``) with a bounded job queue, SSE live streaming, resumable
  journaled sessions, graceful drain, per-job deadlines and a
  per-target circuit breaker over the sweep engine.
* :mod:`repro.chaos` - seeded chaos harness: wraps any sweep target in
  process-level sabotage (kill/hang/raise/slow) to prove the platform
  recovers with byte-identical reports.
"""

__version__ = "1.10.0"
