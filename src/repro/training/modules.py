"""Trainable model components built on the autograd engine.

These mirror the inference-path numpy model in :mod:`repro.model` but
are differentiable, and every linear layer can run under a
:class:`PrecisionPolicy` that fake-quantizes its inputs — BF16 for the
baseline, fine-grained FP8 (1x128 activation tiles, 128x128 weight
blocks) for the Section 3.1 training simulation.  Gradients use the
straight-through estimator, and accumulation is FP32, which
:mod:`repro.precision.gemm` shows is equivalent to DeepGEMM's promoted
accumulation.
"""

from __future__ import annotations

import numpy as np

from ..autograd.functional import (
    apply_rope,
    causal_mask_scores,
    fake_quant_blocks,
    fake_quant_tiles,
    rms_norm,
    softmax,
)
from ..autograd.tensor import Tensor, embedding_lookup
from ..model.config import AttentionConfig, AttentionKind, ModelConfig, MoEConfig
from ..model.routing import node_limited_topk, topk_routing
from ..precision.formats import BF16, E4M3, FloatFormat


class PrecisionPolicy:
    """How linear-layer inputs are quantized during training.

    Attributes:
        name: Display name.
        act_fmt: Activation format (None = full precision).
        weight_fmt: Weight format (None = full precision).
        act_tile: Activation tile width (1xN scaling groups).
        weight_block: Weight block edge (NxN scaling groups).
    """

    def __init__(
        self,
        name: str,
        act_fmt: FloatFormat | None,
        weight_fmt: FloatFormat | None,
        act_tile: int = 128,
        weight_block: int = 128,
    ) -> None:
        self.name = name
        self.act_fmt = act_fmt
        self.weight_fmt = weight_fmt
        self.act_tile = act_tile
        self.weight_block = weight_block

    def __repr__(self) -> str:
        return f"PrecisionPolicy({self.name})"


FP32_POLICY = PrecisionPolicy("fp32", None, None)
BF16_POLICY = PrecisionPolicy("bf16", BF16, BF16)
FP8_POLICY = PrecisionPolicy("fp8-fine-grained", E4M3, E4M3)


class Module:
    """Base class with recursive parameter collection."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors reachable from this module."""
        params: list[Tensor] = []
        seen: set[int] = set()
        stack: list[object] = [self]
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            if isinstance(obj, Tensor):
                if obj.requires_grad:
                    params.append(obj)
                continue
            if isinstance(obj, Module):
                stack.extend(vars(obj).values())
            elif isinstance(obj, (list, tuple)):
                stack.extend(obj)
        return params

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.data.size for p in self.parameters())


class Linear(Module):
    """Bias-free linear layer with optional fake-quantized inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        policy: PrecisionPolicy = FP32_POLICY,
    ) -> None:
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor.param(
            rng.normal(0.0, scale, size=(in_features, out_features)).astype(np.float32)
        )
        self.policy = policy

    def __call__(self, x: Tensor) -> Tensor:
        """Apply ``x @ W`` with the policy's quantization."""
        w = self.weight
        if self.policy.weight_fmt is not None:
            w = fake_quant_blocks(w, self.policy.weight_fmt, self.policy.weight_block)
        if self.policy.act_fmt is not None:
            x = fake_quant_tiles(x, self.policy.act_fmt, self.policy.act_tile)
        return x @ w


class RMSNorm(Module):
    """RMS norm with learned gain (always full precision, as in V3)."""

    def __init__(self, dim: int) -> None:
        self.weight = Tensor.param(np.ones(dim, dtype=np.float32))

    def __call__(self, x: Tensor) -> Tensor:
        return rms_norm(x, self.weight)


class TrainableAttention(Module):
    """Differentiable attention: MLA or MHA/GQA/MQA, full-sequence."""

    def __init__(
        self,
        config: AttentionConfig,
        hidden_size: int,
        rng: np.random.Generator,
        policy: PrecisionPolicy = FP32_POLICY,
    ) -> None:
        self.config = config
        self.hidden_size = hidden_size
        heads = config.num_heads
        if config.kind is AttentionKind.MLA:
            nope, rope = config.qk_head_dim, config.qk_rope_head_dim
            q_in = config.q_lora_rank or hidden_size
            self.w_dq = (
                Linear(hidden_size, config.q_lora_rank, rng, policy)
                if config.q_lora_rank
                else None
            )
            self.w_uq = Linear(q_in, heads * (nope + rope), rng, policy)
            self.w_dkv = Linear(hidden_size, config.kv_lora_rank, rng, policy)
            self.w_kr = Linear(hidden_size, rope, rng, policy)
            self.w_uk = Linear(config.kv_lora_rank, heads * nope, rng, policy)
            self.w_uv = Linear(config.kv_lora_rank, heads * config.v_head_dim, rng, policy)
        else:
            self.w_q = Linear(hidden_size, heads * config.qk_head_dim, rng, policy)
            self.w_k = Linear(hidden_size, config.num_kv_heads * config.qk_head_dim, rng, policy)
            self.w_v = Linear(hidden_size, config.num_kv_heads * config.v_head_dim, rng, policy)
        self.w_o = Linear(heads * config.v_head_dim, hidden_size, rng, policy)

    def _split_heads(self, x: Tensor, heads: int, dim: int) -> Tensor:
        b, t = x.shape[0], x.shape[1]
        return x.reshape(b, t, heads, dim).transpose(0, 2, 1, 3)

    def __call__(self, x: Tensor) -> Tensor:
        """Causal self-attention over ``x`` [batch, t, hidden]."""
        cfg = self.config
        b, t = x.shape[0], x.shape[1]
        positions = np.arange(t)
        if cfg.kind is AttentionKind.MLA:
            out = self._mla(x, positions)
        else:
            out = self._mha(x, positions)
        merged = out.transpose(0, 2, 1, 3).reshape(b, t, cfg.num_heads * cfg.v_head_dim)
        return self.w_o(merged)

    def _mha(self, x: Tensor, positions: np.ndarray) -> Tensor:
        cfg = self.config
        q = self._split_heads(self.w_q(x), cfg.num_heads, cfg.qk_head_dim)
        k = self._split_heads(self.w_k(x), cfg.num_kv_heads, cfg.qk_head_dim)
        v = self._split_heads(self.w_v(x), cfg.num_kv_heads, cfg.v_head_dim)
        q = apply_rope(q, positions)
        k = apply_rope(k, positions)
        group = cfg.num_heads // cfg.num_kv_heads
        if group > 1:
            idx = np.repeat(np.arange(cfg.num_kv_heads), group)
            k = k[:, idx]
            v = v[:, idx]
        scale = 1.0 / np.sqrt(cfg.qk_head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        weights = softmax(causal_mask_scores(scores))
        return weights @ v

    def _mla(self, x: Tensor, positions: np.ndarray) -> Tensor:
        cfg = self.config
        b, t = x.shape[0], x.shape[1]
        heads, nope, rope = cfg.num_heads, cfg.qk_head_dim, cfg.qk_rope_head_dim
        q_hidden = self.w_dq(x) if self.w_dq is not None else x
        q = self._split_heads(self.w_uq(q_hidden), heads, nope + rope)
        q_nope = q[..., :nope]
        q_rope = apply_rope(q[..., nope:], positions)
        latent = self.w_dkv(x)
        k_rope = apply_rope(self.w_kr(x), positions)  # [b, t, rope], shared head
        k_nope = self._split_heads(self.w_uk(latent), heads, nope)
        v = self._split_heads(self.w_uv(latent), heads, cfg.v_head_dim)
        scale = 1.0 / np.sqrt(nope + rope)
        scores = q_nope @ k_nope.transpose(0, 1, 3, 2)
        # Shared rope key: broadcast over heads via reshape to [b,1,t,rope].
        k_rope_b = k_rope.reshape(b, 1, t, rope)
        scores = scores + q_rope @ k_rope_b.transpose(0, 1, 3, 2)
        weights = softmax(causal_mask_scores(scores * scale))
        return weights @ v


class TrainableDenseFfn(Module):
    """SwiGLU FFN."""

    def __init__(
        self,
        hidden_size: int,
        intermediate_size: int,
        rng: np.random.Generator,
        policy: PrecisionPolicy = FP32_POLICY,
    ) -> None:
        self.w_gate = Linear(hidden_size, intermediate_size, rng, policy)
        self.w_up = Linear(hidden_size, intermediate_size, rng, policy)
        self.w_down = Linear(intermediate_size, hidden_size, rng, policy)

    def __call__(self, x: Tensor) -> Tensor:
        return self.w_down(self.w_gate(x).silu() * self.w_up(x))


class TrainableMoELayer(Module):
    """DeepSeekMoE layer with differentiable gate weighting.

    Expert selection (top-k / node-limited top-k) is discrete and uses
    detached affinities; the *mixing weights* are differentiable, so
    the gate learns through them (as in the real model).
    """

    def __init__(
        self,
        moe: MoEConfig,
        hidden_size: int,
        rng: np.random.Generator,
        policy: PrecisionPolicy = FP32_POLICY,
    ) -> None:
        self.moe = moe
        self.hidden_size = hidden_size
        self.gate = Linear(hidden_size, moe.num_routed_experts, rng, FP32_POLICY)
        self.experts = [
            TrainableDenseFfn(hidden_size, moe.intermediate_size, rng, policy)
            for _ in range(moe.num_routed_experts)
        ]
        self.shared_experts = [
            TrainableDenseFfn(hidden_size, moe.intermediate_size, rng, policy)
            for _ in range(moe.num_shared_experts)
        ]

    def __call__(self, x: Tensor) -> Tensor:
        """Apply MoE to ``x`` [batch, t, hidden]."""
        b, t = x.shape[0], x.shape[1]
        flat = x.reshape(b * t, self.hidden_size)
        affinity = self.gate(flat).sigmoid()
        scores = affinity.data
        if self.moe.num_expert_groups > 1 and self.moe.max_groups_per_token:
            decision = node_limited_topk(
                scores,
                self.moe.experts_per_token,
                self.moe.num_expert_groups,
                self.moe.max_groups_per_token,
            )
        else:
            decision = topk_routing(scores, self.moe.experts_per_token)

        rows = np.arange(flat.shape[0])
        selected = affinity[rows[:, None], decision.expert_ids]  # [n, k]
        norm = selected.sum(axis=1, keepdims=True) ** -1.0
        weights = selected * norm

        out = None
        for slot in range(self.moe.experts_per_token):
            ids = decision.expert_ids[:, slot]
            slot_weight = weights[:, slot : slot + 1]
            for expert_id in np.unique(ids):
                members = np.nonzero(ids == expert_id)[0]
                expert_out = self.experts[int(expert_id)](flat[members])
                contribution = expert_out * slot_weight[members]
                scattered = _scatter_rows(contribution, members, flat.shape[0])
                out = scattered if out is None else out + scattered
        for shared in self.shared_experts:
            shared_out = shared(flat)
            out = shared_out if out is None else out + shared_out
        return out.reshape(b, t, self.hidden_size)


def _scatter_rows(values: Tensor, rows: np.ndarray, total: int) -> Tensor:
    """Place ``values`` [m, d] at ``rows`` of a zero [total, d] tensor."""
    data = np.zeros((total, values.shape[1]), dtype=np.float32)
    data[rows] = values.data

    def backward(grad):
        if values.requires_grad:
            values._accumulate(grad[rows])

    return Tensor._make(data, (values,), backward)


class TrainableLayer(Module):
    """Pre-norm transformer block (attention + dense-or-MoE FFN)."""

    def __init__(
        self,
        model: ModelConfig,
        use_moe: bool,
        rng: np.random.Generator,
        policy: PrecisionPolicy = FP32_POLICY,
    ) -> None:
        h = model.hidden_size
        self.attn_norm = RMSNorm(h)
        self.attention = TrainableAttention(model.attention, h, rng, policy)
        self.ffn_norm = RMSNorm(h)
        if use_moe:
            if model.moe is None:
                raise ValueError("use_moe requires a MoE config")
            self.ffn: Module = TrainableMoELayer(model.moe, h, rng, policy)
        else:
            self.ffn = TrainableDenseFfn(h, model.ffn_intermediate_size, rng, policy)

    def __call__(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.attn_norm(x))
        return x + self.ffn(self.ffn_norm(x))
