"""Trainable tiny DeepSeek-style model and the §2.4 validation pipeline."""

from .data import SyntheticCorpus, batch_iterator, markov_corpus
from .model import LossBreakdown, MTPModule, TrainableTransformer
from .modules import (
    BF16_POLICY,
    FP32_POLICY,
    FP8_POLICY,
    Linear,
    Module,
    PrecisionPolicy,
    RMSNorm,
    TrainableAttention,
    TrainableDenseFfn,
    TrainableLayer,
    TrainableMoELayer,
)
from .mtp_eval import AcceptanceReport, measure_mtp_acceptance, sample_windows
from .trainer import (
    GoodputReport,
    TrainResult,
    ValidationReport,
    simulate_checkpointed_training,
    train,
    validate_precision,
)

__all__ = [
    "SyntheticCorpus",
    "batch_iterator",
    "markov_corpus",
    "LossBreakdown",
    "MTPModule",
    "TrainableTransformer",
    "BF16_POLICY",
    "FP32_POLICY",
    "FP8_POLICY",
    "Linear",
    "Module",
    "PrecisionPolicy",
    "RMSNorm",
    "TrainableAttention",
    "TrainableDenseFfn",
    "TrainableLayer",
    "TrainableMoELayer",
    "AcceptanceReport",
    "measure_mtp_acceptance",
    "sample_windows",
    "GoodputReport",
    "TrainResult",
    "ValidationReport",
    "simulate_checkpointed_training",
    "train",
    "validate_precision",
]
