"""The trainable language model: MLA + DeepSeekMoE + MTP (Figure 1).

A faithful-in-miniature DeepSeek-V3: token embedding, dense-then-MoE
pre-norm layers with MLA attention, a shared output head, and one or
more Multi-Token Prediction modules that each predict one token deeper
using a single extra layer fed by the trunk's hidden states fused with
the next token's embedding.  The training loss is the main next-token
cross-entropy plus ``mtp_loss_weight`` times each MTP module's loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd.functional import cross_entropy
from ..autograd.tensor import Tensor, embedding_lookup
from ..model.config import ModelConfig
from .modules import (
    FP32_POLICY,
    Linear,
    Module,
    PrecisionPolicy,
    RMSNorm,
    TrainableLayer,
)


class MTPModule(Module):
    """One Multi-Token Prediction module (Section 2.3.3)."""

    def __init__(
        self, model: ModelConfig, rng: np.random.Generator, policy: PrecisionPolicy
    ) -> None:
        h = model.hidden_size
        self.hidden_norm = RMSNorm(h)
        self.embed_norm = RMSNorm(h)
        # Fusion of [hidden ; embedding] as two half projections.
        self.proj_hidden = Linear(h, h, rng, policy)
        self.proj_embed = Linear(h, h, rng, policy)
        self.layer = TrainableLayer(model, use_moe=model.is_moe, rng=rng, policy=policy)

    def __call__(self, hidden: Tensor, token_embedding: Tensor) -> Tensor:
        fused = self.proj_hidden(self.hidden_norm(hidden)) + self.proj_embed(
            self.embed_norm(token_embedding)
        )
        return self.layer(fused)


@dataclass
class LossBreakdown:
    """Training loss components."""

    total: Tensor
    main: float
    mtp: list[float]


class TrainableTransformer(Module):
    """The end-to-end trainable model."""

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        policy: PrecisionPolicy = FP32_POLICY,
    ) -> None:
        self.config = config
        self.policy = policy
        rng = np.random.default_rng(seed)
        h = config.hidden_size
        self.embedding = Tensor.param(
            rng.normal(0.0, 0.02, size=(config.vocab_size, h)).astype(np.float32)
        )
        self.layers = [
            TrainableLayer(
                config,
                use_moe=config.is_moe and i >= config.num_dense_layers,
                rng=rng,
                policy=policy,
            )
            for i in range(config.num_layers)
        ]
        self.final_norm = RMSNorm(h)
        self.lm_head = Linear(h, config.vocab_size, rng, policy)
        self.mtp_modules = [
            MTPModule(config, rng, policy) for _ in range(config.num_mtp_modules)
        ]
        self.mtp_loss_weight = 0.3

    def trunk_hidden(self, tokens: np.ndarray) -> Tensor:
        """Hidden states [b, t, h] after the final norm."""
        x = embedding_lookup(self.embedding, tokens)
        for layer in self.layers:
            x = layer(x)
        return self.final_norm(x)

    def logits(self, tokens: np.ndarray) -> Tensor:
        """Next-token logits [b, t, vocab]."""
        return self.lm_head(self.trunk_hidden(tokens))

    def loss(self, tokens: np.ndarray) -> LossBreakdown:
        """Training loss on a token batch [b, t].

        Position ``i`` predicts token ``i+1`` (main) and, through MTP
        module ``d``, token ``i+2+d``.
        """
        tokens = np.asarray(tokens)
        b, t = tokens.shape
        if t < 3 + len(self.mtp_modules):
            raise ValueError("sequence too short for MTP depth")
        hidden = self.trunk_hidden(tokens)
        vocab = self.config.vocab_size

        main_logits = self.lm_head(hidden[:, :-1])
        main_targets = tokens[:, 1:]
        main_loss = cross_entropy(
            main_logits.reshape(b * (t - 1), vocab), main_targets.reshape(-1)
        )

        total = main_loss
        mtp_losses: list[float] = []
        mtp_hidden = hidden
        for depth, module in enumerate(self.mtp_modules, start=1):
            # Module d consumes hidden state at position i and the
            # embedding of token i+d, predicting token i+d+1.
            usable = t - depth - 1
            emb = embedding_lookup(self.embedding, tokens[:, depth : depth + usable])
            mtp_hidden = module(mtp_hidden[:, :usable], emb)
            logits = self.lm_head(self.final_norm(mtp_hidden))
            targets = tokens[:, depth + 1 : depth + 1 + usable]
            mtp_loss = cross_entropy(
                logits.reshape(b * usable, vocab), targets.reshape(-1)
            )
            total = total + self.mtp_loss_weight * mtp_loss
            mtp_losses.append(float(mtp_loss.data))
        return LossBreakdown(total=total, main=float(main_loss.data), mtp=mtp_losses)

    def greedy_next(self, tokens: np.ndarray) -> np.ndarray:
        """Greedy next-token prediction for each sequence in [b, t]."""
        logits = self.logits(np.asarray(tokens))
        return np.argmax(logits.data[:, -1], axis=-1)
