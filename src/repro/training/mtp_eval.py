"""MTP acceptance measurement (Section 2.3.3).

The paper reports that the production MTP module predicts the second
subsequent token with 80-90% acceptance, yielding ~1.8x generation
speed.  Acceptance is a property of a *trained* model: this module
measures it directly — at every position, does the MTP module's
prediction of token t+2 match what the main model itself will greedily
predict once it has seen token t+1?  That is precisely the
verification condition of lossless speculative decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd.tensor import embedding_lookup
from .data import SyntheticCorpus
from .model import TrainableTransformer


@dataclass(frozen=True)
class AcceptanceReport:
    """Measured MTP acceptance statistics."""

    accepted: int
    attempted: int

    @property
    def acceptance_rate(self) -> float:
        """Fraction of positions where the draft would be accepted."""
        if self.attempted == 0:
            return 0.0
        return self.accepted / self.attempted


def measure_mtp_acceptance(
    model: TrainableTransformer,
    tokens: np.ndarray,
    module_index: int = 0,
) -> AcceptanceReport:
    """Measure acceptance of one MTP module on token windows.

    Args:
        model: A (typically trained) model with MTP modules.
        tokens: Evaluation windows, [batch, t] with t >= 4.
        module_index: Which MTP module to evaluate (depth 1 = first).

    Returns:
        Acceptance statistics over all usable positions.
    """
    if not model.mtp_modules:
        raise ValueError("model has no MTP modules")
    tokens = np.asarray(tokens)
    if tokens.ndim != 2 or tokens.shape[1] < 4:
        raise ValueError("need [batch, t>=4] evaluation windows")
    hidden = model.trunk_hidden(tokens)
    main_pred = model.lm_head(hidden).data.argmax(-1)  # pos i -> token i+1

    mtp_hidden = hidden
    for depth in range(1, module_index + 2):
        usable = tokens.shape[1] - depth
        # Module at depth d fuses position i's hidden state with the
        # embedding of token i+d (the same pairing the training loss uses).
        emb = embedding_lookup(model.embedding, tokens[:, depth : depth + usable])
        mtp_hidden = model.mtp_modules[depth - 1](mtp_hidden[:, :usable], emb)
    mtp_pred = model.lm_head(model.final_norm(mtp_hidden)).data.argmax(-1)

    # MTP at position i predicts token i+2+module_index; the main model
    # predicts the same token at position i+1+module_index.
    offset = 1 + module_index
    draft = mtp_pred[:, :-1]
    verify = main_pred[:, offset:-1]
    usable_cols = min(draft.shape[1], verify.shape[1])
    agree = draft[:, :usable_cols] == verify[:, :usable_cols]
    return AcceptanceReport(accepted=int(agree.sum()), attempted=int(agree.size))


def sample_windows(
    corpus: SyntheticCorpus, num_windows: int, seq_len: int, seed: int = 0
) -> np.ndarray:
    """Random evaluation windows from a corpus, [num_windows, seq_len]."""
    if seq_len >= corpus.tokens.shape[0]:
        raise ValueError("seq_len must be shorter than the corpus")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, corpus.tokens.shape[0] - seq_len, size=num_windows)
    return np.stack([corpus.tokens[s : s + seq_len] for s in starts])
