"""Synthetic corpora for the tiny training pipeline.

The §2.4 validation experiments need a *learnable* language so that
loss differences between precision policies are meaningful.  A random
Markov chain with controllable entropy provides exactly that: the
model's achievable loss is the chain's conditional entropy, and any
precision-induced degradation shows up as a gap above it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import seeded_generator


@dataclass(frozen=True)
class SyntheticCorpus:
    """A sampled token stream plus its generator's statistics."""

    tokens: np.ndarray
    vocab_size: int
    transition: np.ndarray

    @property
    def conditional_entropy(self) -> float:
        """Entropy (nats) of the next token given the current one —
        the Bayes-optimal cross-entropy for an order-1 model."""
        p_next = self.transition
        stationary = _stationary_distribution(p_next)
        with np.errstate(divide="ignore", invalid="ignore"):
            logp = np.where(p_next > 0, np.log(p_next), 0.0)
        return float(-(stationary[:, None] * p_next * logp).sum())


def _stationary_distribution(transition: np.ndarray) -> np.ndarray:
    values, vectors = np.linalg.eig(transition.T)
    idx = np.argmin(np.abs(values - 1.0))
    pi = np.real(vectors[:, idx])
    pi = np.abs(pi)
    return pi / pi.sum()


def markov_corpus(
    vocab_size: int,
    length: int,
    seed: int = 0,
    concentration: float = 0.5,
    order: int = 1,
) -> SyntheticCorpus:
    """Sample a corpus from a random order-``k`` Markov chain.

    Args:
        vocab_size: Token alphabet size.
        length: Tokens to sample.
        seed: RNG seed (generates both the chain and the sample).
        concentration: Dirichlet concentration of each row; smaller
            values make the chain more deterministic (lower entropy,
            easier to learn).
        order: Markov order.  Order >= 2 gives the MTP module genuine
            two-step structure to learn (the next-next token depends on
            more than the next token alone).  The reported
            ``transition`` marginalizes the chain to order 1 for the
            entropy bound.

    Returns:
        The corpus with its (order-1 marginal) transition matrix.
    """
    if vocab_size < 2 or length < 2:
        raise ValueError("need vocab_size >= 2 and length >= 2")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    if order < 1:
        raise ValueError("order must be at least 1")
    rng = seeded_generator(seed)
    num_states = vocab_size**order
    transition_full = rng.dirichlet([concentration] * vocab_size, size=num_states)
    tokens = np.empty(length, dtype=np.int64)
    tokens[: min(order, length)] = rng.integers(vocab_size, size=min(order, length))
    state = 0
    for i in range(order):
        if i < length:
            state = state * vocab_size + int(tokens[i])
    for i in range(order, length):
        tokens[i] = rng.choice(vocab_size, p=transition_full[state])
        state = (state * vocab_size + int(tokens[i])) % num_states
    if order == 1:
        transition = transition_full
    else:
        # Order-1 marginal: empirical next-token distribution.
        counts = np.full((vocab_size, vocab_size), 1e-9)
        for a, b in zip(tokens[:-1], tokens[1:]):
            counts[a, b] += 1
        transition = counts / counts.sum(axis=1, keepdims=True)
    return SyntheticCorpus(tokens=tokens, vocab_size=vocab_size, transition=transition)


def batch_iterator(
    corpus: SyntheticCorpus,
    batch_size: int,
    seq_len: int,
    num_batches: int,
    seed: int = 0,
):
    """Yield ``num_batches`` random [batch, seq_len] windows."""
    if seq_len >= corpus.tokens.shape[0]:
        raise ValueError("seq_len must be shorter than the corpus")
    rng = seeded_generator(seed, "batches")
    max_start = corpus.tokens.shape[0] - seq_len
    for _ in range(num_batches):
        starts = rng.integers(0, max_start, size=batch_size)
        yield np.stack([corpus.tokens[s : s + seq_len] for s in starts])
