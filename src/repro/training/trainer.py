"""Training loop and the Section 2.4 precision-validation pipeline.

§2.4 describes a hierarchical methodology: validate each acceleration
technique on small models before committing the full run, measuring
the relative accuracy loss of FP8 fine-grained training against the
BF16 baseline (<0.25% on the paper's 16B/230B ablations).  The
pipeline here does exactly that at laptop scale: identical
initialization, identical data order, only the precision policy
differs; the deliverable is the relative loss gap.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..autograd.optim import AdamW
from ..core.rng import seeded_generator
from ..faults.schedule import FaultSchedule
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..model.config import ModelConfig, TINY_MLA_MOE
from .data import SyntheticCorpus, batch_iterator, markov_corpus
from .model import TrainableTransformer
from .modules import BF16_POLICY, FP8_POLICY, PrecisionPolicy


@dataclass
class TrainResult:
    """Outcome of one training run."""

    policy_name: str
    losses: list[float] = field(default_factory=list)
    metrics: MetricsRegistry | None = field(default=None, repr=False, compare=False)

    @property
    def final_loss(self) -> float:
        """Mean loss over the last 10% of steps (noise-robust)."""
        if not self.losses:
            raise ValueError("no steps recorded")
        tail = max(1, len(self.losses) // 10)
        return float(np.mean(self.losses[-tail:]))


def train(
    model: TrainableTransformer,
    corpus: SyntheticCorpus,
    steps: int,
    batch_size: int = 8,
    seq_len: int = 32,
    lr: float = 3e-3,
    data_seed: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> TrainResult:
    """Train ``model`` on ``corpus`` and record the loss curve.

    With a tracer attached, each optimizer step becomes a span in a
    "trainer" trace process on the *step-index* clock (1 simulated
    second per step — deterministic, unlike wall time) with the loss as
    a counter track.  The registry records per-step wall-clock timing
    (``train.step_seconds`` histogram), the loss curve as a series and
    token/step counters.
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    tracer = NULL_TRACER if tracer is None else tracer
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer.process(1, f"trainer:{model.policy.name}")
    step_counter = metrics.counter("train.steps")
    token_counter = metrics.counter("train.tokens")
    step_seconds = metrics.histogram("train.step_seconds")
    loss_series = metrics.series("train.loss")
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=0.01)
    result = TrainResult(policy_name=model.policy.name)
    result.metrics = metrics
    for step, batch in enumerate(
        batch_iterator(corpus, batch_size, seq_len, steps, seed=data_seed)
    ):
        wall_start = time.perf_counter()
        breakdown = model.loss(batch)
        optimizer.zero_grad()
        breakdown.total.backward()
        optimizer.step()
        loss = float(breakdown.total.data)
        result.losses.append(loss)
        step_counter.inc()
        token_counter.inc(batch_size * seq_len)
        step_seconds.observe(time.perf_counter() - wall_start)
        loss_series.record(float(step), loss)
        if tracer.enabled:
            tracer.complete(
                "step", "train", 1, 0, float(step), 1.0,
                args={"loss": loss, "step": step},
            )
            tracer.counter("loss", 1, float(step), {"loss": loss})
    return result


@dataclass(frozen=True)
class ValidationReport:
    """FP8-vs-baseline comparison (the §2.4 deliverable)."""

    baseline: TrainResult
    candidate: TrainResult

    @property
    def relative_loss_gap(self) -> float:
        """(candidate - baseline) / baseline final loss."""
        base = self.baseline.final_loss
        return (self.candidate.final_loss - base) / base


def validate_precision(
    config: ModelConfig = TINY_MLA_MOE,
    baseline_policy: PrecisionPolicy = BF16_POLICY,
    candidate_policy: PrecisionPolicy = FP8_POLICY,
    steps: int = 200,
    batch_size: int = 8,
    seq_len: int = 32,
    seed: int = 0,
    corpus: SyntheticCorpus | None = None,
) -> ValidationReport:
    """Run the paired-precision experiment of Section 2.4.

    Both runs share the model seed (identical initialization) and the
    data seed (identical batch order); only the precision policy of
    the linear layers differs.
    """
    corpus = corpus or markov_corpus(config.vocab_size, 20_000, seed=seed)
    runs = []
    for policy in (baseline_policy, candidate_policy):
        model = TrainableTransformer(config, seed=seed, policy=policy)
        runs.append(
            train(
                model,
                corpus,
                steps,
                batch_size=batch_size,
                seq_len=seq_len,
                data_seed=seed,
            )
        )
    return ValidationReport(baseline=runs[0], candidate=runs[1])


# -- checkpoint/restart goodput simulation (repro.faults) ----------------


@dataclass(frozen=True)
class GoodputReport:
    """Wall-clock accounting of a simulated checkpointed training run.

    The identity ``wall_time = work_target + checkpoint_time +
    restart_time + lost_time`` holds exactly: every simulated second is
    either committed work, a completed checkpoint, a completed restart,
    or waste discarded by a failure (lost work, partial checkpoints,
    partial restarts).
    """

    work_target: float
    wall_time: float
    checkpoint_time: float
    restart_time: float
    lost_time: float
    failures: int
    checkpoints: int

    @property
    def goodput(self) -> float:
        """Fraction of wall time spent on committed useful work — the
        simulated counterpart of
        :func:`repro.reliability.goodput_fraction`."""
        return self.work_target / self.wall_time if self.wall_time > 0 else 0.0

    def asdict(self) -> dict:
        """JSON-able record including the derived ``goodput`` (which
        ``dataclasses.asdict`` would drop — it is a property)."""
        return {
            "work_target_s": self.work_target,
            "wall_time_s": self.wall_time,
            "checkpoint_time_s": self.checkpoint_time,
            "restart_time_s": self.restart_time,
            "lost_time_s": self.lost_time,
            "failures": self.failures,
            "checkpoints": self.checkpoints,
            "goodput": self.goodput,
        }


def simulate_checkpointed_training(
    work_target: float,
    interval: float,
    checkpoint_cost: float,
    restart_cost: float,
    *,
    mtbf: float | None = None,
    faults: FaultSchedule | None = None,
    seed: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> GoodputReport:
    """Simulate a training job surviving failures via checkpoint/restart.

    The job needs ``work_target`` seconds of useful compute, pays
    ``checkpoint_cost`` after every ``interval`` seconds of progress,
    and on each failure discards everything since the last completed
    checkpoint and pays ``restart_cost`` before resuming.  Failures
    during a checkpoint lose the preceding interval too; failures
    during a restart restart the restart.  This is the §6.1 scenario
    the Young-Daly closed form (:func:`repro.reliability.goodput_fraction`)
    analyzes in expectation — the simulation reproduces it event by
    event, and the test suite pins the two against each other at the
    optimal interval.

    Failure instants come from ``faults`` (the ``step`` events of a
    :class:`repro.faults.FaultSchedule`, exhausted in order) or are
    sampled lazily at exponential ``mtbf`` gaps from
    ``seeded_generator(seed, "train.faults")``; with neither the run is
    failure-free.  Wholly deterministic for a given seed.
    """
    if work_target <= 0 or interval <= 0:
        raise ValueError("work_target and interval must be positive")
    if checkpoint_cost < 0 or restart_cost < 0:
        raise ValueError("checkpoint and restart costs must be non-negative")
    tracer = NULL_TRACER if tracer is None else tracer
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer.process(1, "trainer:checkpointed")

    if faults is not None:
        fail_iter = iter(faults.times(("step",)))

        def next_failure() -> float:
            return next(fail_iter, math.inf)

    elif mtbf is not None:
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        rng = seeded_generator(seed, "train.faults")
        clock = 0.0

        def next_failure() -> float:
            nonlocal clock
            clock += float(rng.exponential(mtbf))
            return clock

    else:

        def next_failure() -> float:
            return math.inf

    t = 0.0
    done = 0.0
    checkpoint_time = restart_time = lost_time = 0.0
    failures = 0
    checkpoints = 0
    next_fail = next_failure()

    def span(name: str, start: float, end: float) -> None:
        if tracer.enabled:
            tracer.complete(name, "train", 1, 0, start, end - start)

    def fail_and_restart(at: float) -> float:
        """Record the failure instant, then complete a restart (which a
        further failure can interrupt)."""
        nonlocal next_fail, failures, restart_time, lost_time
        failures += 1
        if tracer.enabled:
            tracer.instant("failure", "fault", 1, 0, at)
        next_fail = next_failure()
        clock = at
        while next_fail <= clock + restart_cost:
            lost_time += next_fail - clock
            clock = next_fail
            failures += 1
            if tracer.enabled:
                tracer.instant("failure", "fault", 1, 0, clock)
            next_fail = next_failure()
        span("restart", clock, clock + restart_cost)
        restart_time += restart_cost
        return clock + restart_cost

    while done < work_target:
        segment = min(interval, work_target - done)
        if next_fail <= t + segment:
            # Work since the last checkpoint dies with the failure.
            lost_time += next_fail - t
            span("work", t, next_fail)
            t = fail_and_restart(next_fail)
            continue
        span("work", t, t + segment)
        t += segment
        if done + segment >= work_target:
            done = work_target  # final chunk: job completes, no checkpoint
            break
        if next_fail <= t + checkpoint_cost:
            # A failed checkpoint loses its interval and its own progress.
            lost_time += segment + (next_fail - t)
            t = fail_and_restart(next_fail)
            continue
        span("checkpoint", t, t + checkpoint_cost)
        t += checkpoint_cost
        checkpoint_time += checkpoint_cost
        checkpoints += 1
        done += segment

    report = GoodputReport(
        work_target=work_target,
        wall_time=t,
        checkpoint_time=checkpoint_time,
        restart_time=restart_time,
        lost_time=lost_time,
        failures=failures,
        checkpoints=checkpoints,
    )
    metrics.counter("train.sim_failures").inc(failures)
    metrics.counter("train.sim_checkpoints").inc(checkpoints)
    metrics.gauge("train.sim_goodput").set(report.goodput)
    return report
