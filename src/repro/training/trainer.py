"""Training loop and the Section 2.4 precision-validation pipeline.

§2.4 describes a hierarchical methodology: validate each acceleration
technique on small models before committing the full run, measuring
the relative accuracy loss of FP8 fine-grained training against the
BF16 baseline (<0.25% on the paper's 16B/230B ablations).  The
pipeline here does exactly that at laptop scale: identical
initialization, identical data order, only the precision policy
differs; the deliverable is the relative loss gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..autograd.optim import AdamW
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..model.config import ModelConfig, TINY_MLA_MOE
from .data import SyntheticCorpus, batch_iterator, markov_corpus
from .model import TrainableTransformer
from .modules import BF16_POLICY, FP8_POLICY, PrecisionPolicy


@dataclass
class TrainResult:
    """Outcome of one training run."""

    policy_name: str
    losses: list[float] = field(default_factory=list)
    metrics: MetricsRegistry | None = field(default=None, repr=False, compare=False)

    @property
    def final_loss(self) -> float:
        """Mean loss over the last 10% of steps (noise-robust)."""
        if not self.losses:
            raise ValueError("no steps recorded")
        tail = max(1, len(self.losses) // 10)
        return float(np.mean(self.losses[-tail:]))


def train(
    model: TrainableTransformer,
    corpus: SyntheticCorpus,
    steps: int,
    batch_size: int = 8,
    seq_len: int = 32,
    lr: float = 3e-3,
    data_seed: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> TrainResult:
    """Train ``model`` on ``corpus`` and record the loss curve.

    With a tracer attached, each optimizer step becomes a span in a
    "trainer" trace process on the *step-index* clock (1 simulated
    second per step — deterministic, unlike wall time) with the loss as
    a counter track.  The registry records per-step wall-clock timing
    (``train.step_seconds`` histogram), the loss curve as a series and
    token/step counters.
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    tracer = NULL_TRACER if tracer is None else tracer
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer.process(1, f"trainer:{model.policy.name}")
    step_counter = metrics.counter("train.steps")
    token_counter = metrics.counter("train.tokens")
    step_seconds = metrics.histogram("train.step_seconds")
    loss_series = metrics.series("train.loss")
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=0.01)
    result = TrainResult(policy_name=model.policy.name)
    result.metrics = metrics
    for step, batch in enumerate(
        batch_iterator(corpus, batch_size, seq_len, steps, seed=data_seed)
    ):
        wall_start = time.perf_counter()
        breakdown = model.loss(batch)
        optimizer.zero_grad()
        breakdown.total.backward()
        optimizer.step()
        loss = float(breakdown.total.data)
        result.losses.append(loss)
        step_counter.inc()
        token_counter.inc(batch_size * seq_len)
        step_seconds.observe(time.perf_counter() - wall_start)
        loss_series.record(float(step), loss)
        if tracer.enabled:
            tracer.complete(
                "step", "train", 1, 0, float(step), 1.0,
                args={"loss": loss, "step": step},
            )
            tracer.counter("loss", 1, float(step), {"loss": loss})
    return result


@dataclass(frozen=True)
class ValidationReport:
    """FP8-vs-baseline comparison (the §2.4 deliverable)."""

    baseline: TrainResult
    candidate: TrainResult

    @property
    def relative_loss_gap(self) -> float:
        """(candidate - baseline) / baseline final loss."""
        base = self.baseline.final_loss
        return (self.candidate.final_loss - base) / base


def validate_precision(
    config: ModelConfig = TINY_MLA_MOE,
    baseline_policy: PrecisionPolicy = BF16_POLICY,
    candidate_policy: PrecisionPolicy = FP8_POLICY,
    steps: int = 200,
    batch_size: int = 8,
    seq_len: int = 32,
    seed: int = 0,
    corpus: SyntheticCorpus | None = None,
) -> ValidationReport:
    """Run the paired-precision experiment of Section 2.4.

    Both runs share the model seed (identical initialization) and the
    data seed (identical batch order); only the precision policy of
    the linear layers differs.
    """
    corpus = corpus or markov_corpus(config.vocab_size, 20_000, seed=seed)
    runs = []
    for policy in (baseline_policy, candidate_policy):
        model = TrainableTransformer(config, seed=seed, policy=policy)
        runs.append(
            train(
                model,
                corpus,
                steps,
                batch_size=batch_size,
                seq_len=seq_len,
                data_seed=seed,
            )
        )
    return ValidationReport(baseline=runs[0], candidate=runs[1])
