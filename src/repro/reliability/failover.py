"""Network fault isolation and failover (Sections 5.1.1 and 6.1).

The multi-plane topology's robustness claims: traffic in one plane is
isolated from failures in another, and (with multi-port NICs, Figure
4) single-port failures leave connectivity intact.  These helpers
inject link/switch failures into a topology and evaluate what survives.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from ..network.multiplane import ClusterNetwork
from ..network.topology import SWITCH, Topology


def fail_link(topology: Topology, a: str, b: str) -> dict:
    """Remove a link (cable failure).

    Returns the removed edge's attributes so :func:`restore_link` can
    reinstall it exactly (repair after MTTR, or scoped injection via
    :func:`failed`).
    """
    if not topology.graph.has_edge(a, b):
        raise KeyError(f"no link {a} -- {b}")
    attrs = dict(topology.graph.edges[a, b])
    topology.graph.remove_edge(a, b)
    return attrs


def restore_link(topology: Topology, a: str, b: str, attrs: dict) -> None:
    """Reinstall a failed link with its original attributes."""
    if topology.graph.has_edge(a, b):
        raise KeyError(f"link {a} -- {b} is already up")
    topology.graph.add_edge(a, b, **attrs)


def fail_switch(topology: Topology, switch: str) -> tuple[dict, list[tuple[str, dict]]]:
    """Remove a switch and all of its links.

    Returns ``(node_attrs, [(neighbor, edge_attrs), ...])`` — the state
    :func:`restore_switch` needs to undo the failure.
    """
    if switch not in topology.graph or topology.graph.nodes[switch]["kind"] != SWITCH:
        raise KeyError(f"{switch} is not a switch")
    node_attrs = dict(topology.graph.nodes[switch])
    links = [
        (neighbor, dict(data))
        for neighbor, data in topology.graph.adj[switch].items()
    ]
    topology.graph.remove_node(switch)
    return node_attrs, links


def restore_switch(
    topology: Topology,
    switch: str,
    node_attrs: dict,
    links: list[tuple[str, dict]],
) -> None:
    """Reinstall a failed switch and the links it carried."""
    if switch in topology.graph:
        raise KeyError(f"switch {switch} is already up")
    topology.graph.add_node(switch, **node_attrs)
    for neighbor, attrs in links:
        topology.graph.add_edge(switch, neighbor, **attrs)


@contextmanager
def failed(
    topology: Topology,
    links: tuple[tuple[str, str], ...] = (),
    switches: tuple[str, ...] = (),
) -> Iterator[Topology]:
    """Scoped damage: fail the given links and switches, heal on exit.

    The topology is mutated in place (the yielded value is the same
    object, for convenience) and restored even when the body raises, so
    tests and the fault engine can probe a damaged fabric without
    rebuilding the cluster.
    """
    failed_links = [(a, b, fail_link(topology, a, b)) for a, b in links]
    failed_switches = []
    try:
        for switch in switches:
            failed_switches.append((switch, *fail_switch(topology, switch)))
        yield topology
    finally:
        for switch, node_attrs, switch_links in reversed(failed_switches):
            restore_switch(topology, switch, node_attrs, switch_links)
        for a, b, attrs in reversed(failed_links):
            restore_link(topology, a, b, attrs)


def hosts_reachable(topology: Topology, src: str, dst: str) -> bool:
    """Whether two hosts can still communicate."""
    return nx.has_path(topology.graph, src, dst)


@dataclass(frozen=True)
class FailureImpact:
    """Effect of an injected failure on a cluster."""

    disconnected_pairs: int
    total_pairs: int
    affected_planes: set[int]

    @property
    def connectivity(self) -> float:
        """Fraction of GPU pairs still connected."""
        if self.total_pairs == 0:
            return 1.0
        return 1.0 - self.disconnected_pairs / self.total_pairs


def assess_impact(cluster: ClusterNetwork, sample_pairs: int | None = None) -> FailureImpact:
    """Measure pairwise connectivity of a (possibly damaged) cluster."""
    gpus = cluster.gpus()
    graph = cluster.topology.graph
    components = list(nx.connected_components(graph))
    comp_of: dict[str, int] = {}
    for ci, comp in enumerate(components):
        for node in comp:
            if node in comp_of or node not in graph:
                continue
            comp_of[node] = ci
    disconnected = 0
    total = 0
    affected: set[int] = set()
    for i, a in enumerate(gpus):
        for b in gpus[i + 1 :]:
            total += 1
            if comp_of.get(a) != comp_of.get(b):
                disconnected += 1
                affected.add(cluster.plane_of[a])
                affected.add(cluster.plane_of[b])
    return FailureImpact(
        disconnected_pairs=disconnected, total_pairs=total, affected_planes=affected
    )


def plane_switches(cluster: ClusterNetwork, plane: int) -> list[str]:
    """Network switches belonging to one plane (MPFT only)."""
    return [
        s
        for s in cluster.topology.switches
        if cluster.topology.graph.nodes[s].get("plane") == plane
    ]


def fail_entire_plane(cluster: ClusterNetwork, plane: int) -> None:
    """Take down every switch of one MPFT plane."""
    for s in plane_switches(cluster, plane):
        fail_switch(cluster.topology, s)
