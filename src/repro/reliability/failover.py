"""Network fault isolation and failover (Sections 5.1.1 and 6.1).

The multi-plane topology's robustness claims: traffic in one plane is
isolated from failures in another, and (with multi-port NICs, Figure
4) single-port failures leave connectivity intact.  These helpers
inject link/switch failures into a topology and evaluate what survives.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..network.multiplane import ClusterNetwork
from ..network.topology import SWITCH, Topology


def fail_link(topology: Topology, a: str, b: str) -> None:
    """Remove a link (cable failure)."""
    if not topology.graph.has_edge(a, b):
        raise KeyError(f"no link {a} -- {b}")
    topology.graph.remove_edge(a, b)


def fail_switch(topology: Topology, switch: str) -> None:
    """Remove a switch and all of its links."""
    if switch not in topology.graph or topology.graph.nodes[switch]["kind"] != SWITCH:
        raise KeyError(f"{switch} is not a switch")
    topology.graph.remove_node(switch)


def hosts_reachable(topology: Topology, src: str, dst: str) -> bool:
    """Whether two hosts can still communicate."""
    return nx.has_path(topology.graph, src, dst)


@dataclass(frozen=True)
class FailureImpact:
    """Effect of an injected failure on a cluster."""

    disconnected_pairs: int
    total_pairs: int
    affected_planes: set[int]

    @property
    def connectivity(self) -> float:
        """Fraction of GPU pairs still connected."""
        if self.total_pairs == 0:
            return 1.0
        return 1.0 - self.disconnected_pairs / self.total_pairs


def assess_impact(cluster: ClusterNetwork, sample_pairs: int | None = None) -> FailureImpact:
    """Measure pairwise connectivity of a (possibly damaged) cluster."""
    gpus = cluster.gpus()
    graph = cluster.topology.graph
    components = list(nx.connected_components(graph))
    comp_of: dict[str, int] = {}
    for ci, comp in enumerate(components):
        for node in comp:
            if node in comp_of or node not in graph:
                continue
            comp_of[node] = ci
    disconnected = 0
    total = 0
    affected: set[int] = set()
    for i, a in enumerate(gpus):
        for b in gpus[i + 1 :]:
            total += 1
            if comp_of.get(a) != comp_of.get(b):
                disconnected += 1
                affected.add(cluster.plane_of[a])
                affected.add(cluster.plane_of[b])
    return FailureImpact(
        disconnected_pairs=disconnected, total_pairs=total, affected_planes=affected
    )


def plane_switches(cluster: ClusterNetwork, plane: int) -> list[str]:
    """Network switches belonging to one plane (MPFT only)."""
    return [
        s
        for s in cluster.topology.switches
        if cluster.topology.graph.nodes[s].get("plane") == plane
    ]


def fail_entire_plane(cluster: ClusterNetwork, plane: int) -> None:
    """Take down every switch of one MPFT plane."""
    for s in plane_switches(cluster, plane):
        fail_switch(cluster.topology, s)
