"""Failure statistics and checkpoint/restart economics (Section 6.1).

"The impact of such failures escalates in large-scale deployments,
where the probability of a single-point failure increases
proportionally with system size."  This module quantifies that:
cluster MTBF shrinks as 1/N, and the checkpoint interval / goodput
trade-off follows the Young-Daly analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

HOURS = 3600.0


@dataclass(frozen=True)
class ComponentReliability:
    """Per-component mean time between failures (seconds)."""

    gpu_mtbf: float = 50_000 * HOURS
    nic_mtbf: float = 100_000 * HOURS
    link_mtbf: float = 40_000 * HOURS
    node_mtbf: float = 30_000 * HOURS  # host, PSU, ECC-fatal...

    def node_failure_rate(self, gpus_per_node: int = 8, nics_per_node: int = 8) -> float:
        """Aggregate failure rate of one node (failures/second)."""
        return (
            gpus_per_node / self.gpu_mtbf
            + nics_per_node / self.nic_mtbf
            + nics_per_node / self.link_mtbf
            + 1.0 / self.node_mtbf
        )


def cluster_mtbf(
    num_nodes: int,
    reliability: ComponentReliability | None = None,
    gpus_per_node: int = 8,
) -> float:
    """Mean time between job-interrupting failures for the cluster.

    Any single component failure interrupts a synchronous training
    job, so rates add across the fleet: MTBF scales as 1/N — the
    §6.1.1 scaling argument.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    reliability = reliability or ComponentReliability()
    rate = num_nodes * reliability.node_failure_rate(gpus_per_node, gpus_per_node)
    return 1.0 / rate


#: Per-node storage-plane bandwidth: the paper's nodes carry one 400G
#: RoCE NIC to the 3FS distributed file system (Section 5.1).
STORAGE_NIC_BANDWIDTH = 50e9


def checkpoint_state_bytes(
    total_params: float,
    weight_bytes: float = 2.0,
    optimizer_bytes: float = 12.0,
) -> float:
    """Checkpoint size: weights plus FP32 master + Adam moments."""
    if total_params <= 0:
        raise ValueError("total_params must be positive")
    return total_params * (weight_bytes + optimizer_bytes)


def checkpoint_write_time(
    state_bytes: float,
    num_nodes: int,
    per_node_bandwidth: float = STORAGE_NIC_BANDWIDTH,
    efficiency: float = 0.8,
) -> float:
    """Time to write a sharded checkpoint over the storage plane.

    Every node streams its shard through its own storage NIC (the 3FS
    design), so write time shrinks linearly with node count.
    """
    if num_nodes < 1 or per_node_bandwidth <= 0 or not 0 < efficiency <= 1:
        raise ValueError("invalid node count, bandwidth or efficiency")
    return state_bytes / (num_nodes * per_node_bandwidth * efficiency)


def optimal_checkpoint_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young-Daly optimal interval: sqrt(2 x C x MTBF)."""
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise ValueError("checkpoint cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def goodput_fraction(
    checkpoint_cost: float,
    restart_cost: float,
    mtbf: float,
    interval: float | None = None,
) -> float:
    """Fraction of wall time doing useful training work.

    Overheads: one checkpoint per interval, plus on each failure
    (Poisson with the given MTBF) a restart and on average half an
    interval of lost work.
    """
    if restart_cost < 0:
        raise ValueError("restart cost must be non-negative")
    interval = interval or optimal_checkpoint_interval(checkpoint_cost, mtbf)
    if interval <= checkpoint_cost:
        raise ValueError("interval must exceed the checkpoint cost")
    checkpoint_overhead = checkpoint_cost / interval
    failure_overhead = (restart_cost + interval / 2.0) / mtbf
    return max(0.0, 1.0 - checkpoint_overhead - failure_overhead)


@dataclass(frozen=True)
class GoodputRow:
    """Goodput at one cluster scale."""

    num_nodes: int
    mtbf_hours: float
    interval_hours: float
    goodput: float


def goodput_vs_scale(
    node_counts: list[int],
    checkpoint_cost: float = 300.0,
    restart_cost: float = 900.0,
    reliability: ComponentReliability | None = None,
) -> list[GoodputRow]:
    """Goodput erosion as the cluster grows (the §6.1 motivation)."""
    rows = []
    for n in node_counts:
        mtbf = cluster_mtbf(n, reliability)
        interval = optimal_checkpoint_interval(checkpoint_cost, mtbf)
        rows.append(
            GoodputRow(
                num_nodes=n,
                mtbf_hours=mtbf / HOURS,
                interval_hours=interval / HOURS,
                goodput=goodput_fraction(checkpoint_cost, restart_cost, mtbf, interval),
            )
        )
    return rows
