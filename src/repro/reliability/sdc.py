"""Silent data corruption: injection and detection (Section 6.1).

Errors that slip past ECC — multi-bit flips, compute faults — corrupt
training silently.  §6.1.2 asks for checksum-based validation and
hardware-accelerated redundancy checks; this module implements both
detection families and the bit-flip injector used to evaluate them:

* block checksums over tensors (detects storage/transport corruption),
* Freivalds' randomized verification of a matmul result (detects
  compute corruption with cost O(n^2) instead of a recompute's O(n^3)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def flip_bits(array: np.ndarray, flips: list[tuple[int, int]]) -> np.ndarray:
    """Return a copy of ``array`` with (flat_index, bit) flips applied.

    Bits index the IEEE-754 float32 pattern (0 = LSB of the mantissa,
    31 = sign).
    """
    out = np.array(array, dtype=np.float32, copy=True)
    view = out.reshape(-1).view(np.uint32)
    for index, bit in flips:
        if not 0 <= bit < 32:
            raise ValueError(f"bit must be in [0, 32), got {bit}")
        view[index] ^= np.uint32(1) << np.uint32(bit)
    return out


def random_bit_flips(
    array: np.ndarray, num_flips: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Inject ``num_flips`` uniformly random bit flips."""
    flips = [
        (int(rng.integers(array.size)), int(rng.integers(32))) for _ in range(num_flips)
    ]
    return flip_bits(array, flips), flips


@dataclass(frozen=True)
class BlockChecksum:
    """Per-block bitwise XOR checksums of a tensor."""

    block_size: int
    digests: np.ndarray

    def verify(self, array: np.ndarray) -> np.ndarray:
        """Boolean per-block: True where the block is intact."""
        return compute_checksum(array, self.block_size).digests == self.digests


def compute_checksum(array: np.ndarray, block_size: int = 4096) -> BlockChecksum:
    """XOR-fold the float32 bit patterns of each block."""
    if block_size < 1:
        raise ValueError("block_size must be positive")
    flat = np.ascontiguousarray(array, dtype=np.float32).reshape(-1).view(np.uint32)
    pad = (-flat.size) % block_size
    padded = np.concatenate([flat, np.zeros(pad, np.uint32)])
    blocks = padded.reshape(-1, block_size)
    digests = np.bitwise_xor.reduce(blocks, axis=1)
    return BlockChecksum(block_size=block_size, digests=digests)


def corrupted_blocks(array: np.ndarray, checksum: BlockChecksum) -> np.ndarray:
    """Indices of blocks whose checksum no longer matches."""
    ok = checksum.verify(array)
    return np.nonzero(~ok)[0]


def freivalds_check(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    rng: np.random.Generator,
    rounds: int = 2,
    rtol: float = 1e-4,
) -> bool:
    """Randomized verification that ``c == a @ b``.

    Each round draws a random vector r and checks
    ``a @ (b @ r) == c @ r`` — O(n^2) per round.  A corrupted result
    escapes detection with probability that shrinks geometrically in
    ``rounds``; tolerance absorbs floating-point noise.

    Returns:
        True when the product verifies.
    """
    if rounds < 1:
        raise ValueError("rounds must be positive")
    a64, b64, c64 = (np.asarray(x, np.float64) for x in (a, b, c))
    scale = max(1.0, float(np.abs(c64).max()))
    for _ in range(rounds):
        r = rng.choice([-1.0, 1.0], size=b64.shape[1])
        lhs = a64 @ (b64 @ r)
        rhs = c64 @ r
        if not np.allclose(lhs, rhs, atol=rtol * scale * np.sqrt(b64.shape[1]), rtol=rtol):
            return False
    return True


def detection_rate(
    shape: tuple[int, int],
    num_trials: int,
    rng: np.random.Generator,
    bit_range: tuple[int, int] = (20, 31),
    detector: str = "freivalds",
) -> float:
    """Empirical SDC detection rate over random corruptions.

    One matmul per trial; a random bit in the result is flipped (high
    mantissa/exponent bits by default — the flips that matter) and the
    detector must notice.
    """
    if detector not in ("freivalds", "checksum"):
        raise ValueError(f"unknown detector {detector!r}")
    detected = 0
    m, n = shape
    for _ in range(num_trials):
        a = rng.normal(size=(m, n)).astype(np.float32)
        b = rng.normal(size=(n, m)).astype(np.float32)
        c = a @ b
        flip = (int(rng.integers(c.size)), int(rng.integers(*bit_range)))
        corrupted = flip_bits(c, [flip])
        if detector == "freivalds":
            if not freivalds_check(a, b, corrupted, rng):
                detected += 1
        else:
            reference = compute_checksum(c, block_size=256)
            if corrupted_blocks(corrupted, reference).size > 0:
                detected += 1
    return detected / num_trials
