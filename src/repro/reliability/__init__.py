"""Reliability: failure statistics, SDC detection, network failover."""

from .failover import (
    FailureImpact,
    assess_impact,
    fail_entire_plane,
    fail_link,
    fail_switch,
    hosts_reachable,
    plane_switches,
)
from .failures import (
    STORAGE_NIC_BANDWIDTH,
    ComponentReliability,
    GoodputRow,
    checkpoint_state_bytes,
    checkpoint_write_time,
    cluster_mtbf,
    goodput_fraction,
    goodput_vs_scale,
    optimal_checkpoint_interval,
)
from .sdc import (
    BlockChecksum,
    compute_checksum,
    corrupted_blocks,
    detection_rate,
    flip_bits,
    freivalds_check,
    random_bit_flips,
)

__all__ = [
    "FailureImpact",
    "assess_impact",
    "fail_entire_plane",
    "fail_link",
    "fail_switch",
    "hosts_reachable",
    "plane_switches",
    "STORAGE_NIC_BANDWIDTH",
    "ComponentReliability",
    "GoodputRow",
    "checkpoint_state_bytes",
    "checkpoint_write_time",
    "cluster_mtbf",
    "goodput_fraction",
    "goodput_vs_scale",
    "optimal_checkpoint_interval",
    "BlockChecksum",
    "compute_checksum",
    "corrupted_blocks",
    "detection_rate",
    "flip_bits",
    "freivalds_check",
    "random_bit_flips",
]
