"""MTP-based speculative decoding (Section 2.3.3).

Three levels of fidelity:

* :func:`mtp_speedup` — the closed-form model: with one draft token
  accepted with probability ``p``, each decoding step emits ``1 + p``
  tokens; the MTP module adds one lightweight layer of cost, giving a
  TPS ratio of ``(1 + p) / (1 + overhead)``.  At the paper's 80-90%
  acceptance this is the reported ~1.8x.
* :func:`simulate_acceptance` — Monte-Carlo token generation under a
  stochastic acceptance process (for distributional statistics).
* :func:`speculative_generate` — *actual* speculative decoding on the
  runnable numpy transformer: the MTP module drafts token t+2, the
  trunk verifies it in parallel with the next step, and rejected
  drafts roll the KV caches back.  The output is verified to be
  token-identical to plain greedy decoding (losslessness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.transformer import Transformer


def mtp_speedup(
    acceptance_rate: float,
    draft_overhead: float = 1.0 / 61.0,
) -> float:
    """TPS multiplier from one MTP draft token.

    Args:
        acceptance_rate: Probability the drafted second token passes
            verification (the paper measures 0.8-0.9).
        draft_overhead: Relative extra compute per step from the MTP
            module (one extra single layer on a 61-layer model).

    Returns:
        Generation speedup vs non-speculative decoding.
    """
    if not 0 <= acceptance_rate <= 1:
        raise ValueError("acceptance_rate must be in [0, 1]")
    if draft_overhead < 0:
        raise ValueError("draft_overhead must be non-negative")
    return (1.0 + acceptance_rate) / (1.0 + draft_overhead)


def simulate_acceptance(
    acceptance_rate: float,
    num_steps: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo mean tokens per decoding step."""
    if num_steps < 1:
        raise ValueError("num_steps must be positive")
    accepted = rng.uniform(size=num_steps) < acceptance_rate
    return float(1 + accepted.mean())


@dataclass
class SpeculativeResult:
    """Outcome of a speculative generation run."""

    tokens: np.ndarray
    draft_attempts: int
    draft_accepted: int
    decoding_steps: int

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafts that passed verification."""
        if self.draft_attempts == 0:
            return 0.0
        return self.draft_accepted / self.draft_attempts

    @property
    def tokens_per_step(self) -> float:
        """Average tokens emitted per verification step."""
        if self.decoding_steps == 0:
            return 0.0
        return len(self.tokens) / self.decoding_steps


def speculative_generate(
    model: Transformer, prompt: np.ndarray, num_tokens: int
) -> SpeculativeResult:
    """Greedy speculative decoding with the model's first MTP module.

    Batch size must be 1.  The emitted tokens are exactly the plain
    greedy continuation (speculation is lossless): drafts are only
    kept when the trunk itself predicts the same token.
    """
    if not model.mtp_modules:
        raise ValueError("model has no MTP module")
    prompt = np.asarray(prompt)
    if prompt.ndim != 2 or prompt.shape[0] != 1:
        raise ValueError("speculative_generate expects a [1, t] prompt")
    head = model.lm_head
    caches = model.make_caches(1)
    trunk_caches = caches[: len(model.layers)]

    hidden = model.forward_hidden(prompt, caches)
    current = int(np.argmax(hidden[0, -1] @ head))
    # Prime the MTP cache with the prompt stream shifted by one, ending
    # with the freshly predicted token.
    mtp_tokens = np.concatenate([prompt[0, 1:], [current]])[None, :]
    draft_logits = model.mtp_draft_logits(hidden, mtp_tokens, caches)
    draft = int(np.argmax(draft_logits[0, -1]))

    out: list[int] = []
    attempts = accepted = steps = 0
    while len(out) < num_tokens:
        steps += 1
        attempts += 1
        pair = np.array([[current, draft]])
        h2 = model.forward_hidden(pair, caches)
        logits2 = h2 @ head
        verified = int(np.argmax(logits2[0, 0]))
        if verified == draft:
            accepted += 1
            out.append(current)
            out.append(draft)
            nxt = int(np.argmax(logits2[0, 1]))
            draft_logits = model.mtp_draft_logits(h2, np.array([[draft, nxt]]), caches)
            current, draft = nxt, int(np.argmax(draft_logits[0, -1]))
        else:
            out.append(current)
            for cache in trunk_caches:
                cache.truncate(len(cache) - 1)
            draft_logits = model.mtp_draft_logits(
                h2[:, :1], np.array([[verified]]), caches
            )
            current, draft = verified, int(np.argmax(draft_logits[0, -1]))
    return SpeculativeResult(
        tokens=np.array(out[:num_tokens]),
        draft_attempts=attempts,
        draft_accepted=accepted,
        decoding_steps=steps,
    )
