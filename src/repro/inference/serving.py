"""Decode serving model: throughput vs TPOT under dual micro-batch
overlap (Sections 2.3.1-2.3.2).

The §2.3.2 TPOT limit assumes communication dominates ("an idealized
scenario"); the same section notes that in practice "request contexts
are often much longer, and MLA computations typically dominate".  This
model makes both regimes first-class: per layer, attention and MoE
compute come from GPU rooflines (weights + KV-cache traffic vs FLOPs)
and EP dispatch/combine from the interconnect, combined by the dual
micro-batch rule ``max(compute, comm)``.  Sweeping the per-device
batch produces the throughput-latency frontier an inference operator
actually navigates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..comm.overlap import StageTimes, layer_time
from ..core.hardware import GpuSpec, H800
from ..core.roofline import OpProfile, estimate
from ..model.config import DEEPSEEK_V3, ModelConfig
from ..model.kvcache import DTYPE_BYTES, kv_elements_per_token_per_layer
from ..model.params import attention_params, count_params


@dataclass(frozen=True)
class ServingConfig:
    """A decode-serving scenario.

    Attributes:
        model: Model served (must be MoE for EP communication).
        gpu: Accelerator.
        nic_bandwidth: Effective per-GPU scale-out bandwidth.
        context_tokens: Context length of each request.
        ep_degree: GPUs the routed experts are sharded over — §2.3.2's
            scenario is one routed expert per device (256).
        weight_dtype: Resident weight precision.
        compute_efficiency: Achieved fraction of peak FLOPs.
        memory_efficiency: Achieved fraction of HBM bandwidth.
    """

    model: ModelConfig = DEEPSEEK_V3
    gpu: GpuSpec = H800
    nic_bandwidth: float = 40e9
    context_tokens: int = 4096
    ep_degree: int = 256
    weight_dtype: str = "fp8"
    compute_efficiency: float = 0.6
    memory_efficiency: float = 0.8

    def __post_init__(self) -> None:
        if self.model.moe is None:
            raise ValueError("the EP serving model requires a MoE model")
        if self.nic_bandwidth <= 0 or self.context_tokens < 0:
            raise ValueError("invalid bandwidth or context length")
        if not 1 <= self.ep_degree <= self.model.moe.num_routed_experts:
            raise ValueError("ep_degree must be in [1, num_routed_experts]")


def _attention_profile(config: ServingConfig, batch: int) -> OpProfile:
    model = config.model
    attn = model.attention
    ctx = config.context_tokens
    w_bytes = DTYPE_BYTES[config.weight_dtype]
    # Score + value matmuls against the cache, per token.
    flops = batch * 2.0 * attn.num_heads * (attn.full_qk_head_dim + attn.v_head_dim) * ctx
    # Projections (GEMV against the layer's attention weights).
    layer_params = attention_params(attn, model.hidden_size)
    flops += batch * 2.0 * layer_params
    # Traffic: each request reads its own cache; weights read once.
    cache_bytes = batch * ctx * kv_elements_per_token_per_layer(attn) * 2.0
    bytes_moved = cache_bytes + layer_params * w_bytes
    return OpProfile("attention", flops, bytes_moved)


def _moe_profile(config: ServingConfig, batch: int) -> OpProfile:
    model = config.model
    moe = model.moe
    w_bytes = DTYPE_BYTES[config.weight_dtype]
    expert_params = 3 * model.hidden_size * moe.intermediate_size
    # Work conservation: across the EP group every token costs its
    # active experts; the per-GPU share equals batch x active experts.
    flops = batch * 2.0 * moe.active_experts_per_token * expert_params
    # Weight traffic: only this GPU's resident experts are read —
    # routed experts shard over ep_degree, shared experts replicate.
    local_experts = moe.num_routed_experts / config.ep_degree + moe.num_shared_experts
    touched = min(batch * moe.active_experts_per_token, local_experts)
    bytes_moved = touched * expert_params * w_bytes
    return OpProfile("moe", flops, bytes_moved)


def decode_stage_times(config: ServingConfig, batch: int) -> StageTimes:
    """Per-layer stage durations at ``batch`` tokens per device."""
    if batch < 1:
        raise ValueError("batch must be positive")
    attn = estimate(
        _attention_profile(config, batch),
        config.gpu,
        precision=config.weight_dtype if config.weight_dtype == "fp8" else "bf16",
        compute_efficiency=config.compute_efficiency,
        memory_efficiency=config.memory_efficiency,
    )
    moe = estimate(
        _moe_profile(config, batch),
        config.gpu,
        precision=config.weight_dtype if config.weight_dtype == "fp8" else "bf16",
        compute_efficiency=config.compute_efficiency,
        memory_efficiency=config.memory_efficiency,
    )
    m = config.model.moe
    destinations = m.experts_per_token + m.num_shared_experts
    dispatch = batch * destinations * config.model.hidden_size * 1.0 / config.nic_bandwidth
    combine = batch * destinations * config.model.hidden_size * 2.0 / config.nic_bandwidth
    return StageTimes(
        attention_compute=attn.time,
        moe_compute=moe.time,
        dispatch_comm=dispatch,
        combine_comm=combine,
    )


@dataclass(frozen=True)
class ServingPoint:
    """One point on the throughput-latency frontier."""

    batch: int
    tpot: float
    throughput_per_gpu: float
    bound: str  # "communication" or "compute"
    stages: StageTimes


def serving_point(config: ServingConfig, batch: int) -> ServingPoint:
    """Evaluate TPOT and per-GPU throughput at one batch size.

    Two interleaved micro-batches (each of ``batch`` tokens) share the
    GPU and the NIC, so one micro-batch advances a layer every
    ``2 x max(compute, comm)`` — the paper's "Total Time Per Layer =
    2 x 120.96 us" accounting — while the device as a whole retires
    ``batch`` tokens per ``layers x max(compute, comm)``.
    """
    stages = decode_stage_times(config, batch)
    slot = layer_time(stages, dual_microbatch=True)  # max(compute, comm)
    tpot = config.model.num_layers * 2.0 * slot
    bound = "communication" if stages.communication >= stages.compute else "compute"
    return ServingPoint(
        batch=batch,
        tpot=tpot,
        throughput_per_gpu=2.0 * batch / tpot,
        bound=bound,
        stages=stages,
    )


def throughput_latency_frontier(
    config: ServingConfig, batch_sizes: list[int]
) -> list[ServingPoint]:
    """Sweep batch sizes to map the serving frontier."""
    if not batch_sizes:
        raise ValueError("need at least one batch size")
    return [serving_point(config, b) for b in batch_sizes]


def compute_comm_crossover_context(
    config: ServingConfig, batch: int, contexts: list[int]
) -> int | None:
    """Smallest context at which compute overtakes communication.

    Reproduces §2.3.2's caveat: with longer contexts MLA computation
    dominates and the communication-only TPOT limit becomes loose.
    Returns None when communication dominates at every given context.
    """
    for ctx in sorted(contexts):
        point = serving_point(replace(config, context_tokens=ctx), batch)
        if point.bound == "compute":
            return ctx
    return None
