"""EP inference speed limits (Section 2.3.2).

The paper's closed-form model: with one expert per device and ~32
tokens per device per step, each EP layer performs a dispatch (FP8)
and a combine (BF16); under dual micro-batch overlap the communication
is the critical path, so

    comm_per_stage = (1 B + 2 B) x tokens x (topk + shared) x hidden / bandwidth
    time_per_layer = 2 x comm_per_stage        (dispatch + combine)
    TPOT           = layers x time_per_layer

With CX7 IB at 50 GB/s this gives 120.96 us per stage, 14.76 ms TPOT
(~67 tok/s); a GB200 NVL72-scale 900 GB/s fabric gives 6.72 us and
~0.82 ms (~1200 tok/s) — the paper's exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hardware import GB200_NVL72_NODE, H800_NODE, NodeSpec


@dataclass(frozen=True)
class EPInferenceConfig:
    """The §2.3.2 scenario.

    Attributes:
        tokens_per_device: Tokens each device handles per step (32
            balances compute-to-memory ratio vs latency).
        routed_experts_per_token: Top-k routed experts (8 for V3).
        shared_experts_per_token: Shared experts (1 for V3).
        hidden_size: Token hidden size; the paper rounds V3's 7168 to
            "approximately 7K" and computes with 7000.
        dispatch_bytes: Bytes/element on dispatch (FP8 = 1).
        combine_bytes: Bytes/element on combine (BF16 = 2).
        num_layers: Model depth (61 for V3).
    """

    tokens_per_device: int = 32
    routed_experts_per_token: int = 8
    shared_experts_per_token: int = 1
    hidden_size: int = 7000
    dispatch_bytes: float = 1.0
    combine_bytes: float = 2.0
    num_layers: int = 61

    @property
    def destinations_per_token(self) -> int:
        """Expert copies each token is sent to (the paper's factor 9)."""
        return self.routed_experts_per_token + self.shared_experts_per_token


DEEPSEEK_V3_INFERENCE = EPInferenceConfig()


def comm_time_per_stage(config: EPInferenceConfig, bandwidth: float) -> float:
    """One EP all-to-all stage (dispatch + combine payload) time.

    This is the paper's ``(1B + 2B) x 32 x 9 x 7K / bandwidth``.
    """
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    payload = (
        (config.dispatch_bytes + config.combine_bytes)
        * config.tokens_per_device
        * config.destinations_per_token
        * config.hidden_size
    )
    return payload / bandwidth


def time_per_layer(config: EPInferenceConfig, bandwidth: float) -> float:
    """Per-layer time under dual micro-batch overlap: 2 comm stages."""
    return 2.0 * comm_time_per_stage(config, bandwidth)


def tpot_limit(config: EPInferenceConfig, bandwidth: float) -> float:
    """Theoretical best-case time per output token (seconds)."""
    return config.num_layers * time_per_layer(config, bandwidth)


def tokens_per_second(config: EPInferenceConfig, bandwidth: float) -> float:
    """Theoretical decode speed upper limit."""
    return 1.0 / tpot_limit(config, bandwidth)


@dataclass(frozen=True)
class TpotRow:
    """One interconnect's inference speed limit."""

    system: str
    bandwidth: float
    comm_stage_us: float
    tpot_ms: float
    tokens_per_second: float


def compare_interconnects(
    config: EPInferenceConfig = DEEPSEEK_V3_INFERENCE,
    systems: list[tuple[str, float]] | None = None,
) -> list[TpotRow]:
    """The §2.3.2 comparison: H800+CX7 IB vs GB200 NVL72 (by default).

    The paper computes the IB case against the NIC's 50 GB/s line rate
    (latency effects are called out separately).
    """
    if systems is None:
        systems = [
            ("H800 + CX7 400G IB", H800_NODE.nic.bandwidth),
            ("GB200 NVL72", GB200_NVL72_NODE.gpu.scale_up.effective_bandwidth),
        ]
    rows = []
    for name, bandwidth in systems:
        rows.append(
            TpotRow(
                system=name,
                bandwidth=bandwidth,
                comm_stage_us=comm_time_per_stage(config, bandwidth) * 1e6,
                tpot_ms=tpot_limit(config, bandwidth) * 1e3,
                tokens_per_second=tokens_per_second(config, bandwidth),
            )
        )
    return rows


def node_spec_row(name: str, node: NodeSpec, config: EPInferenceConfig) -> TpotRow:
    """Build a row for an arbitrary node's scale-out NIC."""
    bw = node.nic.bandwidth
    return TpotRow(
        system=name,
        bandwidth=bw,
        comm_stage_us=comm_time_per_stage(config, bw) * 1e6,
        tpot_ms=tpot_limit(config, bw) * 1e3,
        tokens_per_second=tokens_per_second(config, bw),
    )
