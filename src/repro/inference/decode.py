"""Memory-bandwidth-bound decode model (Sections 2.1.2 and 2.2.2).

During decode every activated parameter must be read once per token
(the GEMV regime), so single-request decode speed is essentially

    TPS = memory_bandwidth / bytes_touched_per_token

where bytes = activated params x weight bytes + KV cache read.  This
reproduces the paper's §2.2.2 claims: a 236B/21B-active MoE reaches
~20 TPS on a consumer AI SoC where a 70B dense model manages single
digits, and KTransformers-style expert offloading runs the full
DeepSeek-V3 at ~20 TPS on a single consumer-GPU server.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hardware import AI_SOC, CONSUMER_GPU_SERVER_DDR_BANDWIDTH, GpuSpec
from ..model.config import ModelConfig
from ..model.kvcache import DTYPE_BYTES, kv_cache_bytes_per_token
from ..model.params import count_params


@dataclass(frozen=True)
class DecodeEstimate:
    """Single-request decode-speed estimate."""

    model_name: str
    bytes_per_token: float
    tokens_per_second: float


def weight_bytes_per_token(model: ModelConfig, weight_dtype: str = "fp8") -> float:
    """Activated parameter bytes read per decoded token."""
    if weight_dtype not in DTYPE_BYTES:
        raise ValueError(f"unknown dtype {weight_dtype!r}")
    return count_params(model).active * DTYPE_BYTES[weight_dtype]


def decode_tps(
    model: ModelConfig,
    memory_bandwidth: float,
    weight_dtype: str = "fp8",
    context_tokens: int = 0,
    kv_dtype: str = "bf16",
    efficiency: float = 1.0,
) -> DecodeEstimate:
    """Bandwidth-bound decode speed on unified memory.

    Args:
        model: Model being served.
        memory_bandwidth: Device memory bandwidth (bytes/s).
        weight_dtype: Weight storage precision.
        context_tokens: Context length (adds KV-cache reads).
        kv_dtype: KV cache precision.
        efficiency: Achievable fraction of peak bandwidth.

    Returns:
        Bytes/token and tokens/second.
    """
    if memory_bandwidth <= 0 or not 0 < efficiency <= 1:
        raise ValueError("bandwidth must be positive and efficiency in (0, 1]")
    kv_bytes = kv_cache_bytes_per_token(model, kv_dtype) * context_tokens
    total = weight_bytes_per_token(model, weight_dtype) + kv_bytes
    return DecodeEstimate(
        model_name=model.name,
        bytes_per_token=total,
        tokens_per_second=memory_bandwidth * efficiency / total,
    )


def soc_decode_tps(
    model: ModelConfig, soc: GpuSpec = AI_SOC, weight_dtype: str = "fp8"
) -> DecodeEstimate:
    """Decode speed on a consumer AI SoC (the §2.2.2 scenario)."""
    return decode_tps(model, soc.hbm_bandwidth, weight_dtype)


def offloaded_decode_tps(
    model: ModelConfig,
    gpu_bandwidth: float,
    host_bandwidth: float = CONSUMER_GPU_SERVER_DDR_BANDWIDTH,
    hot_weight_dtype: str = "bf16",
    expert_weight_dtype: str = "int4",
    context_tokens: int = 0,
) -> DecodeEstimate:
    """KTransformers-style hybrid decode: hot weights on the GPU,
    routed experts streamed from host DRAM.

    Hot state (attention, shared experts, dense layers, embeddings and
    the KV cache) is read at GPU bandwidth; the per-token routed-expert
    weights at host-DRAM bandwidth.  The two proceed concurrently, so
    the per-token time is the maximum of the two stream times.
    """
    if gpu_bandwidth <= 0 or host_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")
    params = count_params(model)
    routed_active = params.moe_active - _shared_expert_params(model)
    hot = (params.active - routed_active) * DTYPE_BYTES[hot_weight_dtype]
    hot += kv_cache_bytes_per_token(model, "bf16") * context_tokens
    cold = routed_active * DTYPE_BYTES[expert_weight_dtype]
    per_token_time = max(hot / gpu_bandwidth, cold / host_bandwidth)
    return DecodeEstimate(
        model_name=model.name,
        bytes_per_token=hot + cold,
        tokens_per_second=1.0 / per_token_time,
    )


def _shared_expert_params(model: ModelConfig) -> int:
    if model.moe is None:
        return 0
    expert = 3 * model.hidden_size * model.moe.intermediate_size
    return model.num_moe_layers * model.moe.num_shared_experts * expert
