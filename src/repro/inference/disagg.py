"""Prefill/decode disaggregation (Section 2.3.1).

Prefill is compute-bound and loves large batches; decode is
latency-critical and bandwidth/communication-bound.  Serving both from
one GPU pool makes decode requests wait behind prefill bursts, so
production DeepSeek-V3 assigns them to different expert-parallelism
groups ("prefill and decode disaggregation").

The model here quantifies that choice: given a request mix, it sizes
the two pools and compares the decode TPOT of a disaggregated
deployment against a colocated pool where prefill work steals a duty
fraction of every decode GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hardware import GpuSpec, H800
from ..model.config import ModelConfig
from ..model.flops import forward_flops_per_token


@dataclass(frozen=True)
class Workload:
    """Aggregate serving workload.

    Attributes:
        requests_per_second: Arrival rate.
        prompt_tokens: Mean prompt length.
        output_tokens: Mean generated length.
    """

    requests_per_second: float
    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if min(self.requests_per_second, self.prompt_tokens, self.output_tokens) <= 0:
            raise ValueError("workload parameters must be positive")


def prefill_flops_per_request(model: ModelConfig, workload: Workload) -> float:
    """Forward FLOPs to prefill one request's prompt."""
    per_token = forward_flops_per_token(model, workload.prompt_tokens, causal=True)
    return per_token * workload.prompt_tokens


def prefill_gpus_needed(
    model: ModelConfig,
    workload: Workload,
    gpu: GpuSpec = H800,
    efficiency: float = 0.5,
) -> float:
    """GPUs required to sustain the prefill arrival rate."""
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")
    demand = prefill_flops_per_request(model, workload) * workload.requests_per_second
    return demand / (gpu.bf16_flops * efficiency)


def decode_gpus_needed(
    workload: Workload,
    decode_tpot: float,
    concurrent_per_gpu: float,
) -> float:
    """GPUs required so decode keeps up with generation demand.

    Each in-flight request produces a token every ``decode_tpot``; a
    GPU sustains ``concurrent_per_gpu`` concurrent decode streams.
    """
    if decode_tpot <= 0 or concurrent_per_gpu <= 0:
        raise ValueError("decode_tpot and concurrency must be positive")
    inflight = workload.requests_per_second * workload.output_tokens * decode_tpot
    return inflight / concurrent_per_gpu


@dataclass(frozen=True)
class DisaggregationPlan:
    """Sizing and latency comparison of the two deployments."""

    prefill_gpus: float
    decode_gpus: float
    disaggregated_tpot: float
    colocated_tpot: float

    @property
    def tpot_inflation_colocated(self) -> float:
        """Decode latency penalty of colocating prefill."""
        return self.colocated_tpot / self.disaggregated_tpot


def plan_deployment(
    model: ModelConfig,
    workload: Workload,
    decode_tpot: float,
    concurrent_per_gpu: float = 32,
    gpu: GpuSpec = H800,
    prefill_efficiency: float = 0.5,
) -> DisaggregationPlan:
    """Size the pools and quantify colocation interference.

    In the colocated pool, prefill consumes a duty fraction
    ``d = prefill_gpus / (prefill_gpus + decode_gpus)`` of every GPU,
    stretching decode TPOT by ``1 / (1 - d)``.
    """
    p = prefill_gpus_needed(model, workload, gpu, prefill_efficiency)
    d = decode_gpus_needed(workload, decode_tpot, concurrent_per_gpu)
    duty = p / (p + d)
    return DisaggregationPlan(
        prefill_gpus=p,
        decode_gpus=d,
        disaggregated_tpot=decode_tpot,
        colocated_tpot=decode_tpot / (1.0 - duty),
    )
