"""Inference-side models: TPOT limits, decode rooflines, speculation."""

from .decode import (
    DecodeEstimate,
    decode_tps,
    offloaded_decode_tps,
    soc_decode_tps,
    weight_bytes_per_token,
)
from .disagg import (
    DisaggregationPlan,
    Workload,
    decode_gpus_needed,
    plan_deployment,
    prefill_flops_per_request,
    prefill_gpus_needed,
)
from .serving import (
    ServingConfig,
    ServingPoint,
    compute_comm_crossover_context,
    decode_stage_times,
    serving_point,
    throughput_latency_frontier,
)
from .speculative import (
    SpeculativeResult,
    mtp_speedup,
    simulate_acceptance,
    speculative_generate,
)
from .tpot import (
    DEEPSEEK_V3_INFERENCE,
    EPInferenceConfig,
    TpotRow,
    comm_time_per_stage,
    compare_interconnects,
    time_per_layer,
    tokens_per_second,
    tpot_limit,
)

__all__ = [
    "DecodeEstimate",
    "decode_tps",
    "offloaded_decode_tps",
    "soc_decode_tps",
    "weight_bytes_per_token",
    "DisaggregationPlan",
    "Workload",
    "decode_gpus_needed",
    "plan_deployment",
    "prefill_flops_per_request",
    "prefill_gpus_needed",
    "ServingConfig",
    "ServingPoint",
    "compute_comm_crossover_context",
    "decode_stage_times",
    "serving_point",
    "throughput_latency_frontier",
    "SpeculativeResult",
    "mtp_speedup",
    "simulate_acceptance",
    "speculative_generate",
    "DEEPSEEK_V3_INFERENCE",
    "EPInferenceConfig",
    "TpotRow",
    "comm_time_per_stage",
    "compare_interconnects",
    "time_per_layer",
    "tokens_per_second",
    "tpot_limit",
]
