"""The ideal multi-plane NIC of Figure 4: port bonding + out-of-order
placement.

Today's CX7 exposes one port per plane, so a queue pair is pinned to a
plane and cross-plane traffic needs intra-node forwarding.  The paper's
ideal NIC bonds multiple physical ports — one per plane — under a
single logical interface: one QP sprays packets over all planes, which
requires the receiving NIC to place packets out of order (ConnectX-8
supports four planes natively).

The model quantifies what bonding buys for a single message:

* ``"single_port"`` — today's NIC: one plane's bandwidth.
* ``"bonded_ooo"``  — spray over k planes with out-of-order placement:
  k-fold bandwidth; completion is the slowest plane's share.
* ``"bonded_inorder"`` — bonding *without* OOO placement: the receiver
  must stall each plane until the in-order point arrives, which
  serializes planes whose packets interleave; modeled as losing the
  spray benefit (effective single-plane bandwidth plus a reorder
  penalty per out-of-order arrival batch).
"""

from __future__ import annotations

from dataclasses import dataclass

BONDING_MODES = ("single_port", "bonded_ooo", "bonded_inorder")


@dataclass(frozen=True)
class MultiPortNic:
    """An idealized multi-plane NIC.

    Attributes:
        num_planes: Physical ports (planes) bonded together.
        port_bandwidth: Per-port bandwidth (bytes/s).
        port_latency: Per-plane one-way latency (seconds).
        plane_latency_skew: Max relative latency difference between
            planes (drives the out-of-order window).
        reorder_stall: Receiver stall per out-of-order batch when OOO
            placement is unsupported.
    """

    num_planes: int = 4
    port_bandwidth: float = 50e9
    port_latency: float = 2.8e-6
    plane_latency_skew: float = 0.2
    reorder_stall: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.num_planes < 1 or self.port_bandwidth <= 0:
            raise ValueError("need >=1 plane and positive bandwidth")
        if not 0 <= self.plane_latency_skew < 1:
            raise ValueError("plane_latency_skew must be in [0, 1)")


def message_time(nic: MultiPortNic, message_bytes: float, mode: str = "bonded_ooo") -> float:
    """Delivery time of one message under a bonding mode."""
    if message_bytes < 0:
        raise ValueError("message size must be non-negative")
    if mode not in BONDING_MODES:
        raise ValueError(f"unknown mode {mode!r}")
    if mode == "single_port":
        return nic.port_latency + message_bytes / nic.port_bandwidth
    slowest = nic.port_latency * (1 + nic.plane_latency_skew)
    if mode == "bonded_ooo":
        # Even spray; completion when the slowest plane's share lands.
        share = message_bytes / nic.num_planes
        return slowest + share / nic.port_bandwidth
    # bonded_inorder: packets from faster planes wait for the in-order
    # point; every skew window triggers a reorder stall and the spray
    # degenerates to sequential plane drains.
    reorder_batches = max(0, nic.num_planes - 1)
    return slowest + message_bytes / nic.port_bandwidth + reorder_batches * nic.reorder_stall


def bonding_speedup(nic: MultiPortNic, message_bytes: float) -> float:
    """Speedup of OOO bonding over today's single-port NIC."""
    single = message_time(nic, message_bytes, "single_port")
    bonded = message_time(nic, message_bytes, "bonded_ooo")
    return single / bonded


def max_two_layer_endpoints(
    switch_radix: int, planes: int, ports_per_endpoint_per_plane: int = 1
) -> int:
    """Endpoints a two-layer fat tree supports with plane bonding.

    Each plane remains an independent FT2 with radix^2/2 endpoints;
    bonding does not change plane capacity but keeps the *logical*
    endpoint count equal to the physical one while multiplying its
    bandwidth — so a 64-port-switch, 8-plane network still addresses
    radix^2/2 x planes NICs = 16,384 (the §5.1 scaling claim).
    """
    if switch_radix < 2 or planes < 1 or ports_per_endpoint_per_plane < 1:
        raise ValueError("invalid radix/plane/port parameters")
    per_plane = switch_radix**2 // 2
    return per_plane * planes // ports_per_endpoint_per_plane
