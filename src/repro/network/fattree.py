"""Fat-tree topologies: two-layer (FT2) and three-layer (FT3).

With 64-port 400G switches, a non-blocking two-layer fat tree supports
2,048 endpoints (64 leaves x 32 hosts, 32 spines); a three-layer k=64
fat tree supports k^3/4 = 65,536 endpoints with 5k^2/4 = 5,120 switches
— the Table 3 columns.  Graph builders produce simulation-ready
topologies for small instances; :func:`ft2_spec` / :func:`ft3_spec`
compute the counting rows at any scale.
"""

from __future__ import annotations

from .topology import ENDPOINT_LINK, INTERSWITCH_LINK, Topology, TopologySpec


def two_layer_fat_tree(
    num_leaves: int,
    hosts_per_leaf: int,
    num_spines: int,
    link_bandwidth: float = 50e9,
    links_per_leaf_spine: int = 1,
    name: str = "FT2",
    host_prefix: str = "h",
) -> Topology:
    """Build a two-layer (leaf-spine) fat tree.

    Every leaf connects to every spine with ``links_per_leaf_spine``
    parallel links (modeled as one link of aggregated bandwidth).

    Args:
        num_leaves: Leaf switch count.
        hosts_per_leaf: Endpoints per leaf.
        num_spines: Spine switch count.
        link_bandwidth: Per-direction bytes/s of each physical link.
        links_per_leaf_spine: Parallel leaf-spine cables to aggregate.
        name: Topology name.
        host_prefix: Prefix for host node names.

    Returns:
        The topology; hosts are ``{host_prefix}{i}`` in leaf-major order.
    """
    if min(num_leaves, hosts_per_leaf, num_spines) <= 0:
        raise ValueError("all counts must be positive")
    topo = Topology(name)
    for s in range(num_spines):
        topo.add_switch(f"{name}/spine{s}")
    for leaf in range(num_leaves):
        leaf_name = f"{name}/leaf{leaf}"
        topo.add_switch(leaf_name)
        for s in range(num_spines):
            topo.add_link(
                leaf_name,
                f"{name}/spine{s}",
                link_bandwidth * links_per_leaf_spine,
                INTERSWITCH_LINK,
            )
        for h in range(hosts_per_leaf):
            host = f"{host_prefix}{leaf * hosts_per_leaf + h}"
            topo.add_host(host, leaf=leaf_name)
            topo.add_link(host, leaf_name, link_bandwidth, ENDPOINT_LINK)
    return topo


def ft2_from_radix(
    radix: int = 64, link_bandwidth: float = 50e9, name: str = "FT2"
) -> Topology:
    """Non-blocking FT2 at full scale for a given switch radix."""
    half = radix // 2
    return two_layer_fat_tree(
        num_leaves=radix,
        hosts_per_leaf=half,
        num_spines=half,
        link_bandwidth=link_bandwidth,
        name=name,
    )


def ft2_spec(radix: int = 64, name: str = "FT2") -> TopologySpec:
    """Size of the full non-blocking FT2 (Table 3 column 1).

    ``radix`` leaves x radix/2 hosts = radix^2/2 endpoints, radix/2
    spines, and radix x radix/2 leaf-spine links.
    """
    if radix < 2 or radix % 2:
        raise ValueError("radix must be a positive even number")
    half = radix // 2
    return TopologySpec(
        name=name,
        endpoints=radix * half,
        switches=radix + half,
        links=radix * half,
    )


def three_layer_fat_tree(
    k: int, link_bandwidth: float = 50e9, name: str = "FT3"
) -> Topology:
    """Build a k-ary three-layer fat tree (k pods).

    Each pod has k/2 edge and k/2 aggregation switches; there are
    (k/2)^2 core switches; endpoints number k^3/4.  Intended for small
    even ``k`` (the k=64 instance is sized by :func:`ft3_spec`).
    """
    if k < 2 or k % 2:
        raise ValueError("k must be a positive even number")
    half = k // 2
    topo = Topology(name)
    for c in range(half * half):
        topo.add_switch(f"{name}/core{c}")
    host_id = 0
    for pod in range(k):
        for a in range(half):
            agg = f"{name}/pod{pod}/agg{a}"
            topo.add_switch(agg)
            # Aggregation switch a connects to cores [a*half, (a+1)*half).
            for c in range(a * half, (a + 1) * half):
                topo.add_link(agg, f"{name}/core{c}", link_bandwidth, INTERSWITCH_LINK)
        for e in range(half):
            edge = f"{name}/pod{pod}/edge{e}"
            topo.add_switch(edge)
            for a in range(half):
                topo.add_link(
                    edge, f"{name}/pod{pod}/agg{a}", link_bandwidth, INTERSWITCH_LINK
                )
            for _ in range(half):
                host = f"h{host_id}"
                topo.add_host(host, leaf=edge)
                topo.add_link(host, edge, link_bandwidth, ENDPOINT_LINK)
                host_id += 1
    return topo


def ft3_spec(radix: int = 64, name: str = "FT3") -> TopologySpec:
    """Size of the k-ary FT3 (Table 3 column 3): k^3/4 endpoints,
    5k^2/4 switches, k^3/2 inter-switch links."""
    if radix < 2 or radix % 2:
        raise ValueError("radix must be a positive even number")
    return TopologySpec(
        name=name,
        endpoints=radix**3 // 4,
        switches=5 * radix**2 // 4,
        links=radix**3 // 2,
    )
