"""Small-message latency model, calibrated to Table 5.

Table 5 reports CPU-side end-to-end latency for a 64 B transfer.  The
model decomposes a path into two NIC-side costs plus a per-switch-hop
forwarding cost and serialization:

    latency = 2 x nic_side + hops x switch_hop + bytes / bandwidth

The constants for IB and RoCE are fitted exactly to the table's
same-leaf (1 hop) and cross-leaf (3 hops) rows; NVLink is its measured
flat 3.33 us plus serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import hardware as hw
from .multiplane import ClusterNetwork
from .topology import SWITCH


@dataclass(frozen=True)
class LinkLayerLatency:
    """Latency constants of one link layer."""

    name: str
    nic_side: float
    switch_hop: float
    bandwidth: float


IB = LinkLayerLatency(
    name="InfiniBand",
    nic_side=hw.IB_NIC_SIDE_LATENCY,
    switch_hop=hw.IB_SWITCH_HOP_LATENCY,
    bandwidth=hw.IB_CX7_400G.effective_bandwidth,
)

ROCE = LinkLayerLatency(
    name="RoCE",
    nic_side=hw.ROCE_NIC_SIDE_LATENCY,
    switch_hop=hw.ROCE_SWITCH_HOP_LATENCY,
    bandwidth=hw.ROCE_400G.effective_bandwidth,
)


def end_to_end_latency(
    layer: LinkLayerLatency, switch_hops: int, msg_bytes: float = 64
) -> float:
    """Network end-to-end latency across ``switch_hops`` switches."""
    if switch_hops < 0:
        raise ValueError("switch_hops must be non-negative")
    return 2 * layer.nic_side + switch_hops * layer.switch_hop + msg_bytes / layer.bandwidth


def nvlink_latency(msg_bytes: float = 64) -> float:
    """Intra-node NVLink end-to-end latency."""
    return hw.NVLINK_E2E_LATENCY + msg_bytes / hw.NVLINK_H800.effective_bandwidth


@dataclass(frozen=True)
class LatencyRow:
    """One Table 5 row (microseconds)."""

    link_layer: str
    same_leaf_us: float
    cross_leaf_us: float | None


def table5_rows(msg_bytes: float = 64) -> list[LatencyRow]:
    """Reproduce Table 5: RoCE / IB / NVLink 64 B latencies."""
    rows = []
    for layer in (ROCE, IB):
        rows.append(
            LatencyRow(
                link_layer=layer.name,
                same_leaf_us=end_to_end_latency(layer, 1, msg_bytes) * 1e6,
                cross_leaf_us=end_to_end_latency(layer, 3, msg_bytes) * 1e6,
            )
        )
    rows.append(
        LatencyRow(
            link_layer="NVLink",
            same_leaf_us=nvlink_latency(msg_bytes) * 1e6,
            cross_leaf_us=None,
        )
    )
    return rows


def path_latency(
    cluster: ClusterNetwork,
    path: list[str],
    layer: LinkLayerLatency = IB,
    msg_bytes: float = 0,
) -> float:
    """Startup latency of a path through a cluster graph.

    NVSwitch traversals cost one NVLink end-to-end each; network switch
    hops cost ``switch_hop`` each plus the two NIC sides whenever the
    path enters the network at all.  Serialization is charged once
    (store-and-forward effects are ignored at this granularity).
    """
    graph = cluster.topology.graph
    nv_traversals = 0
    network_hops = 0
    for node in path[1:-1]:
        if graph.nodes[node]["kind"] != SWITCH:
            continue
        if graph.nodes[node].get("nvswitch"):
            nv_traversals += 1
        else:
            network_hops += 1
    total = nv_traversals * hw.NVLINK_E2E_LATENCY
    if network_hops:
        total += 2 * layer.nic_side + network_hops * layer.switch_hop
    if msg_bytes:
        # Serialization on the slowest link of the path.
        slowest = min(
            graph.edges[a, b]["bandwidth"] for a, b in zip(path[:-1], path[1:])
        )
        total += msg_bytes / slowest
    return total


def uses_nvlink_forwarding(cluster: ClusterNetwork, path: list[str]) -> bool:
    """True when the path relays through a node's NVSwitch *and* the
    network (the cross-plane forwarding cost of Section 5.1)."""
    graph = cluster.topology.graph
    has_nv = any(graph.nodes[n].get("nvswitch") for n in path[1:-1])
    has_net = any(
        graph.nodes[n]["kind"] == SWITCH and not graph.nodes[n].get("nvswitch")
        for n in path[1:-1]
    )
    return has_nv and has_net
