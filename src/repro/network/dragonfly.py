"""Canonical Dragonfly topology: sizing formulas and graph construction.

The canonical dragonfly (Kim et al., ISCA'08) groups ``a`` routers into
fully connected groups; each router hosts ``p`` endpoints and drives
``h`` global links; groups are connected pairwise by the global links.
A balanced radix-k design uses ``a = k/2, p = h = k/4`` and supports up
to ``g = a h + 1`` groups.  Table 3's DF column is the radix-64 design
at ``g = 511``: 16,352 switches, 261,632 endpoints, 384,272 links
(253,456 intra-group + 130,816 global).
"""

from __future__ import annotations

from dataclasses import dataclass

from .topology import ENDPOINT_LINK, INTERSWITCH_LINK, Topology, TopologySpec


@dataclass(frozen=True)
class DragonflyParams:
    """Canonical dragonfly parameters.

    Attributes:
        p: Endpoints per router.
        a: Routers per group.
        h: Global links per router.
        g: Number of groups.
    """

    p: int
    a: int
    h: int
    g: int

    def __post_init__(self) -> None:
        if min(self.p, self.a, self.h, self.g) < 1:
            raise ValueError("all parameters must be positive")
        if self.g > self.a * self.h + 1:
            raise ValueError(
                f"g={self.g} exceeds the a*h+1={self.a * self.h + 1} group limit"
            )

    @property
    def router_radix(self) -> int:
        """Ports per router: p + (a-1) + h."""
        return self.p + (self.a - 1) + self.h

    @classmethod
    def balanced(cls, radix: int, g: int | None = None) -> "DragonflyParams":
        """Balanced design for a router radix: a = 2p = 2h."""
        if radix % 4 != 0:
            raise ValueError("balanced dragonfly needs radix divisible by 4")
        p = h = radix // 4
        a = radix // 2
        max_g = a * h + 1
        return cls(p=p, a=a, h=h, g=g if g is not None else max_g)


def dragonfly_spec(params: DragonflyParams, name: str = "DF") -> TopologySpec:
    """Size of the dragonfly: switches ``a g``, endpoints ``p a g``,
    links ``g a (a-1) / 2`` intra plus global links."""
    intra = params.g * params.a * (params.a - 1) // 2
    global_links = _num_global_links(params)
    return TopologySpec(
        name=name,
        endpoints=params.p * params.a * params.g,
        switches=params.a * params.g,
        links=intra + global_links,
    )


def _num_global_links(params: DragonflyParams) -> int:
    # Table 3's counting populates every global port: g groups x a*h
    # ports each, two ports per link.  At the maximum g = a*h + 1 this
    # equals one link per group pair, g*(g-1)/2; for smaller g the
    # surplus ports become parallel links between group pairs.
    return params.g * params.a * params.h // 2


def build_dragonfly(
    params: DragonflyParams, link_bandwidth: float = 50e9, name: str = "DF"
) -> Topology:
    """Construct the dragonfly graph (for small parameter sets).

    Global link between groups i < j leaves group i from router
    ``(j-1) // h`` and enters group j at router ``i // h`` — the
    canonical consecutive assignment.
    """
    topo = Topology(name)

    def rname(group: int, router: int) -> str:
        return f"{name}/g{group}r{router}"

    hid = 0
    for group in range(params.g):
        for router in range(params.a):
            topo.add_switch(rname(group, router), group=group)
            for _ in range(params.p):
                host = f"h{hid}"
                topo.add_host(host, leaf=rname(group, router))
                topo.add_link(host, rname(group, router), link_bandwidth, ENDPOINT_LINK)
                hid += 1
        for r1 in range(params.a):
            for r2 in range(r1 + 1, params.a):
                topo.add_link(
                    rname(group, r1), rname(group, r2), link_bandwidth, INTERSWITCH_LINK
                )
    for i in range(params.g):
        for j in range(i + 1, params.g):
            src_router = ((j - 1) % (params.a * params.h)) // params.h
            dst_router = (i % (params.a * params.h)) // params.h
            topo.add_link(
                rname(i, src_router), rname(j, dst_router), link_bandwidth, INTERSWITCH_LINK
            )
    return topo
