"""Network cost model (Table 3), following the Slim Fly methodology.

The Slim Fly paper (Blach et al., NSDI'24) costs a network as switches
plus cables, with inter-switch cables (long runs, optical) priced
differently from endpoint cables (short runs, electrical/DAC).  Fitting
that three-parameter model to the paper's own Table 3 rows gives:

* 64-port 400G switch:        ~$52.9k
* inter-switch (optical):     ~$1,444 per link
* endpoint (electrical):      ~$469 per link

which reproduces all five columns within ~1.5% (the dragonfly row is
+1.4%; the fat-tree and slim fly rows are exact to three digits).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dragonfly import DragonflyParams, dragonfly_spec
from .fattree import ft2_spec, ft3_spec
from .slimfly import slimfly_spec
from .topology import TopologySpec

#: Fitted cost parameters (US$), see module docstring.
SWITCH_COST = 52_934.0
INTERSWITCH_LINK_COST = 1_444.0
ENDPOINT_LINK_COST = 469.0


@dataclass(frozen=True)
class CostModel:
    """Per-component network prices."""

    switch: float = SWITCH_COST
    interswitch_link: float = INTERSWITCH_LINK_COST
    endpoint_link: float = ENDPOINT_LINK_COST

    def total(self, spec: TopologySpec) -> float:
        """Capital cost of a topology (US$)."""
        return (
            spec.switches * self.switch
            + spec.links * self.interswitch_link
            + spec.endpoints * self.endpoint_link
        )

    def per_endpoint(self, spec: TopologySpec) -> float:
        """Cost per endpoint (US$)."""
        if spec.endpoints == 0:
            raise ValueError("topology has no endpoints")
        return self.total(spec) / spec.endpoints


@dataclass(frozen=True)
class TopologyCostRow:
    """One Table 3 column."""

    spec: TopologySpec
    cost_musd: float
    cost_per_endpoint_kusd: float


def mpft_spec(radix: int = 64, planes: int = 8, name: str = "MPFT") -> TopologySpec:
    """The multi-plane FT2: ``planes`` disjoint copies of the FT2."""
    base = ft2_spec(radix)
    return TopologySpec(
        name=name,
        endpoints=planes * base.endpoints,
        switches=planes * base.switches,
        links=planes * base.links,
    )


def table3_specs(radix: int = 64) -> list[TopologySpec]:
    """The five Table 3 topologies at the paper's scales."""
    return [
        ft2_spec(radix),
        mpft_spec(radix),
        ft3_spec(radix),
        slimfly_spec(28),
        dragonfly_spec(DragonflyParams.balanced(radix, g=511)),
    ]


def table3_rows(
    specs: list[TopologySpec] | None = None, model: CostModel | None = None
) -> list[TopologyCostRow]:
    """Build the Table 3 comparison."""
    model = model or CostModel()
    rows = []
    for spec in specs or table3_specs():
        rows.append(
            TopologyCostRow(
                spec=spec,
                cost_musd=model.total(spec) / 1e6,
                cost_per_endpoint_kusd=model.per_endpoint(spec) / 1e3,
            )
        )
    return rows
