"""Slim Fly (MMS) topology: sizing formulas and graph construction.

Table 3 compares the multi-plane fat tree against the Slim Fly design
(Blach et al., NSDI'24), whose cost methodology the paper borrows.  A
Slim Fly over parameter ``q`` (``q = 4w + delta``, ``delta`` in
{-1, 0, 1}) has ``2 q^2`` routers of network degree ``(3q - delta)/2``;
each router hosts ``ceil(degree / 2)`` endpoints.  The paper's table
uses ``q = 28``: 1,568 switches, 32,928 endpoints, 32,928 links.

The sizing formulas accept any ``q``; the explicit McKay-Miller-Siran
graph construction (used for simulation and diameter checks) is
implemented for prime ``q``, which covers the small instances tests
exercise.
"""

from __future__ import annotations

from .topology import ENDPOINT_LINK, INTERSWITCH_LINK, Topology, TopologySpec


def _delta(q: int) -> int:
    for delta in (-1, 0, 1):
        if (q - delta) % 4 == 0:
            return delta
    raise ValueError(f"q={q} is not of the form 4w + delta, delta in {{-1,0,1}}")


def slimfly_network_degree(q: int) -> int:
    """Router-to-router degree k' = (3q - delta) / 2."""
    return (3 * q - _delta(q)) // 2


def slimfly_spec(q: int, name: str = "SF") -> TopologySpec:
    """Size of a Slim Fly over parameter ``q`` (Table 3 uses q=28)."""
    if q < 2:
        raise ValueError("q must be at least 2")
    degree = slimfly_network_degree(q)
    routers = 2 * q * q
    endpoints_per_router = -(-degree // 2)  # ceil(k'/2)
    return TopologySpec(
        name=name,
        endpoints=routers * endpoints_per_router,
        switches=routers,
        links=routers * degree // 2,
    )


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


def _primitive_root(q: int) -> int:
    order = q - 1
    factors = set()
    n, f = order, 2
    while f * f <= n:
        while n % f == 0:
            factors.add(f)
            n //= f
        f += 1
    if n > 1:
        factors.add(n)
    for g in range(2, q):
        if all(pow(g, order // p, q) != 1 for p in factors):
            return g
    raise ValueError(f"no primitive root found for {q}")


def build_slimfly(
    q: int, link_bandwidth: float = 50e9, name: str = "SF", with_hosts: bool = True
) -> Topology:
    """Construct the MMS Slim Fly graph for prime ``q``.

    Routers are (subgraph, x, y) with x, y in GF(q).  Connection rules
    (McKay-Miller-Siran):

    * (0, x, y) ~ (0, x, y')  iff  y - y' in X  (even generator powers)
    * (1, m, c) ~ (1, m, c')  iff  c - c' in X' (odd generator powers)
    * (0, x, y) ~ (1, m, c)   iff  y = m x + c
    """
    if not _is_prime(q):
        raise ValueError(f"graph construction implemented for prime q, got {q}")
    delta = _delta(q)
    xi = _primitive_root(q)
    if delta == 1:
        even_count, odd_count = (q - 1) // 2, (q - 1) // 2
    elif delta == -1:
        even_count, odd_count = (q + 1) // 2, (q - 3) // 2 + 1
    else:
        even_count, odd_count = (q - 1) // 2, (q - 1) // 2
    gen_x = {pow(xi, 2 * i, q) for i in range(max(even_count, 1))}
    gen_xp = {pow(xi, 2 * i + 1, q) for i in range(max(odd_count, 1))}

    topo = Topology(name)
    routers = [(s, x, y) for s in (0, 1) for x in range(q) for y in range(q)]

    def rname(r: tuple[int, int, int]) -> str:
        return f"{name}/r{r[0]}_{r[1]}_{r[2]}"

    for r in routers:
        topo.add_switch(rname(r))
    # Intra-subgraph edges.
    for s, gens in ((0, gen_x), (1, gen_xp)):
        for x in range(q):
            for y in range(q):
                for yp in range(y + 1, q):
                    if (y - yp) % q in gens or (yp - y) % q in gens:
                        topo.add_link(
                            rname((s, x, y)),
                            rname((s, x, yp)),
                            link_bandwidth,
                            INTERSWITCH_LINK,
                        )
    # Cross-subgraph edges: y = m x + c.
    for x in range(q):
        for y in range(q):
            for m in range(q):
                c = (y - m * x) % q
                topo.add_link(
                    rname((0, x, y)), rname((1, m, c)), link_bandwidth, INTERSWITCH_LINK
                )
    if with_hosts:
        per_router = -(-slimfly_network_degree(q) // 2)
        hid = 0
        for r in routers:
            for _ in range(per_router):
                host = f"h{hid}"
                topo.add_host(host, leaf=rname(r))
                topo.add_link(host, rname(r), link_bandwidth, ENDPOINT_LINK)
                hid += 1
    return topo
