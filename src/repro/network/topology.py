"""Topology core: graphs of GPUs, NICs, switches and links.

Every topology in :mod:`repro.network` is a :class:`Topology`: an
undirected multigraph-free :mod:`networkx` graph whose nodes are either
*hosts* (GPU/NIC endpoints) or *switches*, and whose edges carry a
per-direction ``bandwidth`` (bytes/s) and a ``kind`` tag
(``"endpoint"``, ``"interswitch"`` or ``"nvlink"``).  The flow
simulator treats each undirected edge as two independent directed
capacities, matching full-duplex links.

:class:`TopologySpec` is the lightweight counting record used by the
Table 3 cost comparison — large topologies (65k-endpoint FT3, 260k-
endpoint dragonfly) are *sized by formula* without materializing the
graph, while small instances are built as real graphs for simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

HOST = "host"
SWITCH = "switch"

ENDPOINT_LINK = "endpoint"
INTERSWITCH_LINK = "interswitch"
NVLINK_LINK = "nvlink"


@dataclass(frozen=True)
class TopologySpec:
    """Size summary of a topology (the counting rows of Table 3).

    ``links`` counts inter-switch links only, matching the paper's
    convention (Table 3 lists 2,048 links for the 2,048-endpoint FT2 —
    exactly its leaf-spine cables).
    """

    name: str
    endpoints: int
    switches: int
    links: int

    def __post_init__(self) -> None:
        if min(self.endpoints, self.switches, self.links) < 0:
            raise ValueError("counts must be non-negative")


class Topology:
    """A network graph with typed nodes and capacitated links."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.Graph()

    # -- construction ---------------------------------------------------

    def add_host(self, host: str, **attrs: object) -> None:
        """Add a host (GPU/NIC endpoint) node."""
        self.graph.add_node(host, kind=HOST, **attrs)

    def add_switch(self, switch: str, **attrs: object) -> None:
        """Add a switch node."""
        self.graph.add_node(switch, kind=SWITCH, **attrs)

    def add_link(self, a: str, b: str, bandwidth: float, kind: str) -> None:
        """Add a full-duplex link with per-direction ``bandwidth``."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if a not in self.graph or b not in self.graph:
            raise KeyError(f"both endpoints must exist: {a}, {b}")
        self.graph.add_edge(a, b, bandwidth=bandwidth, kind=kind)

    # -- inspection -----------------------------------------------------

    @property
    def hosts(self) -> list[str]:
        """All host nodes, sorted."""
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == HOST)

    @property
    def switches(self) -> list[str]:
        """All switch nodes, sorted."""
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == SWITCH)

    def links(self, kind: str | None = None) -> list[tuple[str, str]]:
        """Edges, optionally filtered by kind."""
        return [
            (a, b)
            for a, b, d in self.graph.edges(data=True)
            if kind is None or d["kind"] == kind
        ]

    @property
    def spec(self) -> TopologySpec:
        """Counting summary (inter-switch links only, per Table 3)."""
        return TopologySpec(
            name=self.name,
            endpoints=len(self.hosts),
            switches=len(self.switches),
            links=len(self.links(INTERSWITCH_LINK)),
        )

    def bandwidth(self, a: str, b: str) -> float:
        """Per-direction bandwidth of link (a, b)."""
        return self.graph.edges[a, b]["bandwidth"]

    def degree_of(self, node: str) -> int:
        """Link count at ``node``."""
        return self.graph.degree[node]

    def max_switch_degree(self) -> int:
        """Largest switch degree (must not exceed the switch radix)."""
        degrees = [self.graph.degree[s] for s in self.switches]
        return max(degrees) if degrees else 0

    def validate_radix(self, ports: int) -> None:
        """Raise if any switch uses more links than it has ports."""
        for s in self.switches:
            if self.graph.degree[s] > ports:
                raise ValueError(
                    f"switch {s} uses {self.graph.degree[s]} ports, radix is {ports}"
                )

    def is_connected(self) -> bool:
        """True when every node can reach every other node."""
        return nx.is_connected(self.graph) if len(self.graph) else True

    def shortest_paths(self, src: str, dst: str) -> list[list[str]]:
        """All shortest paths from ``src`` to ``dst`` (node lists)."""
        return list(nx.all_shortest_paths(self.graph, src, dst))

    def switch_hops(self, path: list[str]) -> int:
        """Number of switch nodes traversed by a path."""
        return sum(1 for n in path if self.graph.nodes[n]["kind"] == SWITCH)
