"""Routing policies: ECMP hashing, adaptive routing, static tables.

Section 5.2.2 / Figure 8 compare three ways of mapping flows onto the
equal-cost paths of a fat tree:

* **ECMP** — the switch hashes each flow's identifiers onto one path.
  LLM traffic "lacks randomness" (few large flows, regular patterns),
  so hash collisions routinely converge several flows on one uplink.
* **Adaptive routing (AR)** — packets of one flow are sprayed across
  every equal-cost path; modeled as an even fractional split.
* **Static routing** — a manually configured table pins each (src,
  dst) pair to a path; collision-free for the pattern it was tuned
  for, but inflexible.
"""

from __future__ import annotations

import enum
import zlib

from .flowsim import Flow
from .topology import Topology


class RoutingPolicy(enum.Enum):
    """The routing schemes of Figure 8."""

    ECMP = "ecmp"
    ADAPTIVE = "adaptive"
    STATIC = "static"


def equal_cost_paths(topology: Topology, src: str, dst: str) -> list[list[str]]:
    """All shortest paths, deterministically ordered."""
    return sorted(topology.shortest_paths(src, dst))


def ecmp_index(src: str, dst: str, num_paths: int, salt: int = 0) -> int:
    """Deterministic ECMP hash of a flow's endpoints onto a path."""
    if num_paths <= 0:
        raise ValueError("num_paths must be positive")
    digest = zlib.crc32(f"{src}->{dst}#{salt}".encode())
    return digest % num_paths


def route_flow(
    topology: Topology,
    src: str,
    dst: str,
    size: float,
    policy: RoutingPolicy,
    latency: float = 0.0,
    static_table: dict[tuple[str, str], int] | None = None,
    tag: str = "",
) -> list[Flow]:
    """Map one logical transfer onto concrete flow(s).

    Args:
        topology: The network.
        src: Source host.
        dst: Destination host.
        size: Bytes.
        policy: Path selection scheme.
        latency: Startup latency to attach to each produced flow.
        static_table: For STATIC, (src, dst) -> path index; pairs
            absent from the table fall back to index 0.
        tag: Label copied onto the flows.

    Returns:
        One flow (ECMP/STATIC) or one subflow per equal-cost path
        (ADAPTIVE, evenly split — the packet-spraying fluid limit).
    """
    paths = equal_cost_paths(topology, src, dst)
    if policy is RoutingPolicy.ADAPTIVE:
        share = size / len(paths)
        return [
            Flow(src, dst, share, path, latency=latency, tag=tag) for path in paths
        ]
    if policy is RoutingPolicy.ECMP:
        index = ecmp_index(src, dst, len(paths))
    else:
        index = (static_table or {}).get((src, dst), 0) % len(paths)
    return [Flow(src, dst, size, paths[index], latency=latency, tag=tag)]


def shifted_ring_flows(
    topology: Topology,
    shifts: range | list[int],
    size: float,
    policy: RoutingPolicy = RoutingPolicy.ECMP,
) -> list[Flow]:
    """The shifted-ring all-to-all traffic pattern over every host.

    For each ``shift``, host ``i`` sends ``size`` bytes to host
    ``(i + shift) % N`` — the classic permutation decomposition of an
    all-to-all.  Shared by the ``repro trace --scenario network`` CLI
    and the sweep engine's ``flowsim`` target, so both exercise the
    same deterministic workload.
    """
    hosts = topology.hosts
    flows: list[Flow] = []
    for shift in shifts:
        for i, src in enumerate(hosts):
            dst = hosts[(i + shift) % len(hosts)]
            flows.extend(route_flow(topology, src, dst, size, policy, tag=f"shift{shift}"))
    return flows


def collision_free_static_table(
    topology: Topology, pairs: list[tuple[str, str]]
) -> dict[tuple[str, str], int]:
    """Build a static table spreading ``pairs`` across paths greedily.

    Emulates a manually tuned routing configuration: each pair is
    assigned the equal-cost path whose links are least used by the
    pairs placed so far.  Collision-free whenever capacity permits;
    like real static routing, it only helps the traffic pattern it was
    built for.
    """
    link_use: dict[tuple[str, str], int] = {}
    table: dict[tuple[str, str], int] = {}
    for src, dst in pairs:
        paths = equal_cost_paths(topology, src, dst)
        best_index, best_cost = 0, float("inf")
        for i, path in enumerate(paths):
            edges = list(zip(path[:-1], path[1:]))
            cost = max((link_use.get(e, 0) for e in edges), default=0)
            if cost < best_cost:
                best_index, best_cost = i, cost
        table[(src, dst)] = best_index
        chosen = paths[best_index]
        for e in zip(chosen[:-1], chosen[1:]):
            link_use[e] = link_use.get(e, 0) + 1
    return table
