"""Flow-level network simulator with max-min fair bandwidth sharing.

The paper's cluster experiments (Figures 5-8) compare *bandwidth
allocation* outcomes — which links saturate, how collectives share the
fabric, how routing policies collide flows — not packet-level effects.
A flow-level model captures exactly that: each flow follows a fixed
path (or is split into weighted subflows by adaptive routing), link
capacities are shared max-min fairly among the flows crossing them, and
an event loop advances time to each flow completion, re-solving the
allocation as flows drain.

Directions matter: every undirected topology edge provides independent
capacity in each direction, like a full-duplex cable.

Event mode runs on an incremental engine (:class:`_EventEngine`): flows
are grouped into connected components of the link-sharing graph, and a
completion only re-solves the components that lost flows — everything
else keeps its frozen rates.  :func:`max_min_rates` remains the
dict-based reference definition of the policy (and the ``fixed``-mode
solver); the engine is cross-checked against it in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .topology import Topology

#: Trace process id for the fabric (flows are tracks inside it).
_FABRIC_PID = 1


@dataclass
class Flow:
    """One unidirectional transfer.

    Attributes:
        src: Source host.
        dst: Destination host.
        size: Bytes to move.
        path: Node list from ``src`` to ``dst``; must start/end there.
        latency: Fixed startup latency (propagation + software) added
            to the flow's completion time.
        tag: Free-form label for reporting.
    """

    src: str
    dst: str
    size: float
    path: list[str]
    latency: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("flow size must be non-negative")
        if len(self.path) < 2 or self.path[0] != self.src or self.path[-1] != self.dst:
            raise ValueError(f"path must run {self.src} -> {self.dst}")
        self._edges: list[tuple[str, str]] = list(zip(self.path[:-1], self.path[1:]))

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Directed edges traversed."""
        return self._edges


@dataclass
class FlowResult:
    """Outcome of a simulation.

    Attributes:
        completion: Per-flow completion times (seconds), flow index ->
            time, including per-flow latency.
        makespan: Time when the last flow completes.
        rates: Initial max-min fair rate of each flow (bytes/s).
    """

    completion: dict[int, float]
    makespan: float
    rates: dict[int, float]

    def flow_bandwidth(self, index: int, flows: list[Flow]) -> float:
        """Average achieved bandwidth of one flow (bytes/s)."""
        t = self.completion[index]
        return flows[index].size / t if t > 0 else float("inf")


def max_min_rates(
    flows: dict[int, Flow], capacities: dict[tuple[str, str], float]
) -> dict[int, float]:
    """Max-min fair rates for ``flows`` under directed ``capacities``.

    Progressive filling: repeatedly find the most contended link, fix
    every unfrozen flow crossing it at that link's equal share, and
    subtract the committed bandwidth elsewhere.
    """
    link_flows: dict[tuple[str, str], set[int]] = {}
    for idx, flow in flows.items():
        for edge in flow.edges:
            if edge not in capacities:
                raise KeyError(f"flow {idx} uses unknown edge {edge}")
            link_flows.setdefault(edge, set()).add(idx)

    cap_left = {e: capacities[e] for e in link_flows}
    unfrozen_on = {e: set(f) for e, f in link_flows.items()}
    rates: dict[int, float] = {}
    unfrozen = set(flows)

    while unfrozen:
        share = float("inf")
        for edge, members in unfrozen_on.items():
            if not members:
                continue
            edge_share = cap_left[edge] / len(members)
            if edge_share < share:
                share = edge_share
        if share == float("inf"):  # remaining flows cross no capacitated link
            for idx in unfrozen:
                rates[idx] = float("inf")
            break
        # Freeze every link at (or within tolerance of) the bottleneck
        # share together — ties are pervasive in symmetric collectives
        # and freezing them jointly is still max-min fair.
        threshold = share * (1 + 1e-9)
        frozen_now: set[int] = set()
        for edge, members in unfrozen_on.items():
            if members and cap_left[edge] / len(members) <= threshold:
                frozen_now.update(members)
        for idx in frozen_now:
            rates[idx] = share
            unfrozen.discard(idx)
            for edge in flows[idx].edges:
                cap_left[edge] = max(0.0, cap_left[edge] - share)
                unfrozen_on[edge].discard(idx)
    return rates


class _Component:
    """One connected component of the flow/link sharing graph.

    Flows only influence each other's max-min rates through shared
    links, transitively; the fair allocation therefore decomposes
    exactly by connected component.  The event engine exploits this:
    when flows complete, only the components they belong to are
    re-solved, every other flow keeps its frozen rate — the
    O(flows x links) per-event re-solve becomes O(affected).
    """

    __slots__ = ("flows", "flat", "off", "links", "caps")

    def __init__(self, flows, flat, off, links, caps):
        self.flows = flows  # global engine flow ids, fixed order
        self.flat = flat  # local link ids, concatenated in `flows` order
        self.off = off  # per-flow offsets into `flat` (len(flows) + 1)
        self.links = links  # global link ids of the component
        self.caps = caps  # local link capacities


def _ragged_rows(flat: np.ndarray, off: np.ndarray, rows: np.ndarray):
    """Gather ``flat`` segments for ``rows``; returns (values, lengths)."""
    starts = off[rows]
    lens = off[rows + 1] - starts
    cum = np.cumsum(lens)
    total = int(cum[-1]) if len(cum) else 0
    if total == 0:
        return flat[:0], lens
    pos = np.repeat(starts - (cum - lens), lens) + np.arange(total)
    return flat[pos], lens


class _EventEngine:
    """Vectorized, component-incremental engine behind event mode.

    Produces the same completion times as re-running
    :func:`max_min_rates` from scratch at every completion event (the
    reference implementation, kept above for ``mode="fixed"`` and as
    the tested definition of the policy), but:

    * link membership is interned once into integer ids and CSR-style
      incidence arrays instead of per-event dicts of sets;
    * the progressive-filling rounds run on numpy arrays (the
      equal-share subtraction is applied per link as ``count x share``,
      which matches the sequential reference to float rounding);
    * completions only re-solve the affected component(s); untouched
      components reuse their frozen rates bit-for-bit;
    * the per-event "which flows finished" rescan and the per-flow
      remaining-bytes updates are single vector operations instead of
      the former O(flows) Python loops per event.
    """

    def __init__(self, flows: list[Flow], capacities: dict) -> None:
        self.flow_ids = [i for i, f in enumerate(flows) if f.size > 0]
        n = len(self.flow_ids)
        edge_ids: dict[tuple[str, str], int] = {}
        caps_list: list[float] = []
        links_of: list[np.ndarray] = []
        for eng, idx in enumerate(self.flow_ids):
            row = []
            for edge in flows[idx].edges:
                eid = edge_ids.get(edge)
                if eid is None:
                    cap = capacities.get(edge)
                    if cap is None:
                        raise KeyError(f"flow {idx} uses unknown edge {edge}")
                    eid = len(caps_list)
                    edge_ids[edge] = eid
                    caps_list.append(cap)
                row.append(eid)
            links_of.append(np.asarray(row, dtype=np.int64))
        self.link_caps = np.asarray(caps_list, dtype=np.float64)
        num_links = len(caps_list)

        # Union-find over engine flows: flows sharing a link share a set.
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        first_on_link = [-1] * num_links
        for eng in range(n):
            for eid in links_of[eng]:
                other = first_on_link[eid]
                if other < 0:
                    first_on_link[eid] = eng
                else:
                    ra, rb = find(eng), find(other)
                    if ra != rb:
                        parent[ra] = rb
        roots: dict[int, int] = {}
        self.comp_of = np.zeros(n, dtype=np.int64)
        members: list[list[int]] = []
        for eng in range(n):
            root = find(eng)
            label = roots.get(root)
            if label is None:
                label = len(members)
                roots[root] = label
                members.append([])
            self.comp_of[eng] = label
            members[label].append(eng)

        self.components: list[_Component] = []
        for comp_members in members:
            flat_global = np.concatenate([links_of[e] for e in comp_members])
            off = np.zeros(len(comp_members) + 1, dtype=np.int64)
            np.cumsum([len(links_of[e]) for e in comp_members], out=off[1:])
            comp_links, flat_local = np.unique(flat_global, return_inverse=True)
            self.components.append(
                _Component(
                    flows=np.asarray(comp_members, dtype=np.int64),
                    flat=flat_local.astype(np.int64),
                    off=off,
                    links=comp_links,
                    caps=self.link_caps[comp_links].copy(),
                )
            )

        self.rates = np.zeros(n, dtype=np.float64)
        self.active = np.ones(n, dtype=bool)
        self.link_load = np.zeros(num_links, dtype=np.float64)

    def solve_component(self, comp: _Component) -> None:
        """Max-min progressive filling over the component's active flows.

        Mirrors :func:`max_min_rates`: each round takes the most
        contended link's equal share as the global minimum, freezes
        every link within the ``1e-9`` relative tolerance together,
        fixes their unfrozen flows at that share, and subtracts the
        committed bandwidth from every link those flows cross.
        """
        sel = np.flatnonzero(self.active[comp.flows])
        num_links = len(comp.caps)
        if len(sel) == 0:
            self.link_load[comp.links] = 0.0
            return
        flat, lens = _ragged_rows(comp.flat, comp.off, sel)
        off = np.zeros(len(sel) + 1, dtype=np.int64)
        np.cumsum(lens, out=off[1:])
        cap = comp.caps.copy()
        cnt = np.bincount(flat, minlength=num_links)
        local_rates = np.zeros(len(sel), dtype=np.float64)
        unfrozen = np.ones(len(sel), dtype=bool)
        left = len(sel)
        while left:
            live = np.flatnonzero(cnt)
            if len(live) == 0:  # flows crossing no capacitated link
                local_rates[unfrozen] = np.inf
                break
            shares = cap[live] / cnt[live]
            share = shares.min()
            frozen_links = np.zeros(num_links, dtype=bool)
            frozen_links[live[shares <= share * (1 + 1e-9)]] = True
            newly = np.flatnonzero(
                np.logical_or.reduceat(frozen_links[flat], off[:-1]) & unfrozen
            )
            local_rates[newly] = share
            unfrozen[newly] = False
            left -= len(newly)
            touched, _ = _ragged_rows(flat, off, newly)
            delta = np.bincount(touched, minlength=num_links)
            cap -= share * delta
            np.maximum(cap, 0.0, out=cap)
            cnt -= delta
        self.rates[comp.flows[sel]] = local_rates
        # Refresh the component's link loads for utilization sampling.
        finite = local_rates.copy()
        finite[~np.isfinite(finite)] = 0.0
        self.link_load[comp.links] = np.bincount(
            flat, weights=np.repeat(finite, lens), minlength=num_links
        )

    def solve_all(self) -> None:
        for comp in self.components:
            self.solve_component(comp)

    def utilization(self) -> tuple[float, float, int] | None:
        """Mean/max utilization over links carrying traffic, or None."""
        loaded = np.flatnonzero(self.link_load)
        if len(loaded) == 0:
            return None
        utils = np.minimum(1.0, self.link_load[loaded] / self.link_caps[loaded])
        return float(utils.mean()), float(utils.max()), len(loaded)


class FlowSimulator:
    """Event-driven max-min fair flow simulator over a topology.

    Args:
        topology: The fabric.
        tracer: Optional :class:`repro.obs.Tracer`; each flow becomes a
            span (track = flow index) in a "network" trace process and
            link utilization is sampled as counter events at every
            allocation re-solve.  Defaults to the zero-cost null tracer.
        metrics: Optional registry; each ``simulate`` records flow-time
            histograms, per-solve link-utilization series, and a flow
            counter into it (fresh per call when not supplied, exposed
            as ``self.metrics``).
    """

    def __init__(
        self,
        topology: Topology,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.topology = topology
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics_arg = metrics
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: :class:`repro.faults.NetworkFaultReport` of the last faulty
        #: run; None after a fault-free one.
        self.fault_report = None
        self.capacities: dict[tuple[str, str], float] = {}
        for a, b, data in topology.graph.edges(data=True):
            self.capacities[(a, b)] = data["bandwidth"]
            self.capacities[(b, a)] = data["bandwidth"]

    def _sample_utilization(
        self, now: float, active: dict[int, Flow], rates: dict[int, float]
    ) -> None:
        """Record mean/max utilization across links carrying traffic."""
        load: dict[tuple[str, str], float] = {}
        for idx, flow in active.items():
            rate = rates.get(idx, 0.0)
            if rate == float("inf"):
                continue
            for edge in flow.edges:
                load[edge] = load.get(edge, 0.0) + rate
        if not load:
            return
        utils = [min(1.0, load[e] / self.capacities[e]) for e in load]
        mean_util = sum(utils) / len(utils)
        max_util = max(utils)
        self.metrics.series("network.link_utilization.mean").record(now, mean_util)
        self.metrics.series("network.link_utilization.max").record(now, max_util)
        if self.tracer.enabled:
            self.tracer.counter(
                "link_utilization", _FABRIC_PID, now,
                {"mean": mean_util, "max": max_util, "links": float(len(load))},
            )

    def _sample_engine(self, now: float, engine: _EventEngine) -> None:
        """Record utilization from the engine's maintained link loads."""
        sample = engine.utilization()
        if sample is None:
            return
        mean_util, max_util, nlinks = sample
        self.metrics.series("network.link_utilization.mean").record(now, mean_util)
        self.metrics.series("network.link_utilization.max").record(now, max_util)
        if self.tracer.enabled:
            self.tracer.counter(
                "link_utilization", _FABRIC_PID, now,
                {"mean": mean_util, "max": max_util, "links": float(nlinks)},
            )

    def _record_flows(self, flows: list[Flow], completion: dict[int, float]) -> None:
        """Emit per-flow spans and completion-time metrics."""
        times = self.metrics.histogram("network.flow_time_s")
        self.metrics.counter("network.flows").inc(len(flows))
        tracer = self.tracer
        if tracer.enabled:
            tracer.process(_FABRIC_PID, "network")
        for idx, flow in enumerate(flows):
            t = completion.get(idx)
            if t is None or t == float("inf"):
                continue
            times.observe(t)
            if tracer.enabled:
                name = flow.tag or f"{flow.src}->{flow.dst}"
                tracer.complete(
                    name, "flow", _FABRIC_PID, idx, 0.0, t,
                    args={"bytes": flow.size, "hops": len(flow.edges)},
                )

    def simulate(
        self,
        flows: list[Flow],
        time_epsilon: float = 1e-9,
        mode: str = "event",
        faults=None,
        reroute=None,
    ) -> FlowResult:
        """Run all flows to completion.

        Args:
            flows: The transfers; all start at time zero.
            time_epsilon: Relative completion grouping tolerance: any
                flow whose remaining time at current rates is within
                ``(1 + time_epsilon) x dt`` of the next completion
                event finishes with it.  Coarser values (e.g. 0.02)
                collapse the event count for noisy symmetric traffic
                at a bounded relative accuracy cost.
            mode: "event" re-solves the fair allocation at every
                completion (exact).  "fixed" solves it once and lets
                every flow run at its initial rate (pessimistic when
                split and unsplit flows share links).  "drain" uses
                the fluid bound — makespan is the largest per-link
                drain time ``traffic/capacity`` plus the worst startup
                latency; exact whenever the bottleneck link stays busy
                to the end, which holds for the saturated symmetric
                collectives the benches run.
            faults: Optional :class:`repro.faults.FaultSchedule` of
                ``link``/``switch`` events (event mode only).  A
                non-empty schedule hands the run to the fault-timeline
                runner in :mod:`repro.faults.network`, which also sets
                ``self.fault_report``; ``None`` or an empty schedule
                leaves this method byte-identical to the fault-free
                simulation.
            reroute: Optional reroute policy for flows whose path lost
                an edge (see :func:`repro.faults.cluster_reroute`);
                without one, broken flows stall until repair.

        Returns:
            Completion times, makespan and the initial fair rates.
        """
        if mode not in ("event", "fixed", "drain"):
            raise ValueError(f"unknown mode {mode!r}")
        self.fault_report = None  # stale reports must not outlive their run
        if faults:
            if mode != "event":
                raise ValueError("fault injection requires event mode")
            from ..faults.network import run_flows_with_faults

            self.metrics = (
                self._metrics_arg if self._metrics_arg is not None else MetricsRegistry()
            )
            return run_flows_with_faults(
                self, flows, faults, reroute=reroute, time_epsilon=time_epsilon
            )
        self.metrics = (
            self._metrics_arg if self._metrics_arg is not None else MetricsRegistry()
        )
        remaining = {i: f.size for i, f in enumerate(flows) if f.size > 0}
        if mode == "drain":
            traffic: dict[tuple[str, str], float] = {}
            for f in flows:
                for e in f.edges:
                    traffic[e] = traffic.get(e, 0.0) + f.size
            drain = max(
                (t / self.capacities[e] for e, t in traffic.items()), default=0.0
            )
            # Per-flow completions are not resolved by the fluid bound;
            # report each flow's own busiest-link drain time as a
            # lower-bound proxy.
            completion = {}
            for i, f in enumerate(flows):
                own = max((traffic[e] / self.capacities[e] for e in f.edges), default=0.0)
                completion[i] = f.latency + (own if f.size > 0 else 0.0)
            makespan = drain + max((f.latency for f in flows), default=0.0)
            self._record_flows(flows, completion)
            return FlowResult(completion=completion, makespan=makespan, rates={})
        if mode == "fixed":
            rates = max_min_rates({i: flows[i] for i in remaining}, self.capacities)
            self._sample_utilization(0.0, {i: flows[i] for i in remaining}, rates)
            completion = {}
            for i, f in enumerate(flows):
                transfer = remaining[i] / rates[i] if i in remaining else 0.0
                completion[i] = f.latency + transfer
            makespan = max(completion.values(), default=0.0)
            self._record_flows(flows, completion)
            return FlowResult(completion=completion, makespan=makespan, rates=rates)
        completion = {i: flows[i].latency for i, f in enumerate(flows) if f.size == 0}
        engine = _EventEngine(flows, self.capacities)
        ids = np.asarray(engine.flow_ids, dtype=np.int64)
        if len(ids) == 0:
            makespan = max(completion.values(), default=0.0)
            self._record_flows(flows, completion)
            return FlowResult(completion=completion, makespan=makespan, rates={})
        engine.solve_all()
        initial_rates = {int(i): float(r) for i, r in zip(ids, engine.rates)}
        latencies = np.asarray([flows[int(i)].latency for i in ids], dtype=np.float64)
        left = np.asarray([flows[int(i)].size for i in ids], dtype=np.float64)
        now = 0.0
        self._sample_engine(now, engine)
        active_count = len(ids)
        while active_count:
            act = np.flatnonzero(engine.active)
            t = left[act] / engine.rates[act]
            dt = float(t.min())
            horizon = dt * (1 + time_epsilon)
            fin = act[t <= horizon]
            now += dt
            left[act] -= engine.rates[act] * dt
            engine.active[fin] = False
            active_count -= len(fin)
            for idx, lat in zip(ids[fin], latencies[fin]):
                completion[int(idx)] = now + float(lat)
            # Only the components that lost flows need a new allocation;
            # every other component's rates are reused as-is.
            for label in np.unique(engine.comp_of[fin]):
                engine.solve_component(engine.components[label])
            if active_count:
                self._sample_engine(now, engine)
        makespan = max(completion.values(), default=0.0)
        self._record_flows(flows, completion)
        return FlowResult(completion=completion, makespan=makespan, rates=initial_rates)
