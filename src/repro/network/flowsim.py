"""Flow-level network simulator with max-min fair bandwidth sharing.

The paper's cluster experiments (Figures 5-8) compare *bandwidth
allocation* outcomes — which links saturate, how collectives share the
fabric, how routing policies collide flows — not packet-level effects.
A flow-level model captures exactly that: each flow follows a fixed
path (or is split into weighted subflows by adaptive routing), link
capacities are shared max-min fairly among the flows crossing them, and
an event loop advances time to each flow completion, re-solving the
allocation as flows drain.

Directions matter: every undirected topology edge provides independent
capacity in each direction, like a full-duplex cable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from .topology import Topology

#: Trace process id for the fabric (flows are tracks inside it).
_FABRIC_PID = 1


@dataclass
class Flow:
    """One unidirectional transfer.

    Attributes:
        src: Source host.
        dst: Destination host.
        size: Bytes to move.
        path: Node list from ``src`` to ``dst``; must start/end there.
        latency: Fixed startup latency (propagation + software) added
            to the flow's completion time.
        tag: Free-form label for reporting.
    """

    src: str
    dst: str
    size: float
    path: list[str]
    latency: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("flow size must be non-negative")
        if len(self.path) < 2 or self.path[0] != self.src or self.path[-1] != self.dst:
            raise ValueError(f"path must run {self.src} -> {self.dst}")
        self._edges: list[tuple[str, str]] = list(zip(self.path[:-1], self.path[1:]))

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Directed edges traversed."""
        return self._edges


@dataclass
class FlowResult:
    """Outcome of a simulation.

    Attributes:
        completion: Per-flow completion times (seconds), flow index ->
            time, including per-flow latency.
        makespan: Time when the last flow completes.
        rates: Initial max-min fair rate of each flow (bytes/s).
    """

    completion: dict[int, float]
    makespan: float
    rates: dict[int, float]

    def flow_bandwidth(self, index: int, flows: list[Flow]) -> float:
        """Average achieved bandwidth of one flow (bytes/s)."""
        t = self.completion[index]
        return flows[index].size / t if t > 0 else float("inf")


def max_min_rates(
    flows: dict[int, Flow], capacities: dict[tuple[str, str], float]
) -> dict[int, float]:
    """Max-min fair rates for ``flows`` under directed ``capacities``.

    Progressive filling: repeatedly find the most contended link, fix
    every unfrozen flow crossing it at that link's equal share, and
    subtract the committed bandwidth elsewhere.
    """
    link_flows: dict[tuple[str, str], set[int]] = {}
    for idx, flow in flows.items():
        for edge in flow.edges:
            if edge not in capacities:
                raise KeyError(f"flow {idx} uses unknown edge {edge}")
            link_flows.setdefault(edge, set()).add(idx)

    cap_left = {e: capacities[e] for e in link_flows}
    unfrozen_on = {e: set(f) for e, f in link_flows.items()}
    rates: dict[int, float] = {}
    unfrozen = set(flows)

    while unfrozen:
        share = float("inf")
        for edge, members in unfrozen_on.items():
            if not members:
                continue
            edge_share = cap_left[edge] / len(members)
            if edge_share < share:
                share = edge_share
        if share == float("inf"):  # remaining flows cross no capacitated link
            for idx in unfrozen:
                rates[idx] = float("inf")
            break
        # Freeze every link at (or within tolerance of) the bottleneck
        # share together — ties are pervasive in symmetric collectives
        # and freezing them jointly is still max-min fair.
        threshold = share * (1 + 1e-9)
        frozen_now: set[int] = set()
        for edge, members in unfrozen_on.items():
            if members and cap_left[edge] / len(members) <= threshold:
                frozen_now.update(members)
        for idx in frozen_now:
            rates[idx] = share
            unfrozen.discard(idx)
            for edge in flows[idx].edges:
                cap_left[edge] = max(0.0, cap_left[edge] - share)
                unfrozen_on[edge].discard(idx)
    return rates


class FlowSimulator:
    """Event-driven max-min fair flow simulator over a topology.

    Args:
        topology: The fabric.
        tracer: Optional :class:`repro.obs.Tracer`; each flow becomes a
            span (track = flow index) in a "network" trace process and
            link utilization is sampled as counter events at every
            allocation re-solve.  Defaults to the zero-cost null tracer.
        metrics: Optional registry; each ``simulate`` records flow-time
            histograms, per-solve link-utilization series, and a flow
            counter into it (fresh per call when not supplied, exposed
            as ``self.metrics``).
    """

    def __init__(
        self,
        topology: Topology,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.topology = topology
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics_arg = metrics
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.capacities: dict[tuple[str, str], float] = {}
        for a, b, data in topology.graph.edges(data=True):
            self.capacities[(a, b)] = data["bandwidth"]
            self.capacities[(b, a)] = data["bandwidth"]

    def _sample_utilization(
        self, now: float, active: dict[int, Flow], rates: dict[int, float]
    ) -> None:
        """Record mean/max utilization across links carrying traffic."""
        load: dict[tuple[str, str], float] = {}
        for idx, flow in active.items():
            rate = rates.get(idx, 0.0)
            if rate == float("inf"):
                continue
            for edge in flow.edges:
                load[edge] = load.get(edge, 0.0) + rate
        if not load:
            return
        utils = [min(1.0, load[e] / self.capacities[e]) for e in load]
        mean_util = sum(utils) / len(utils)
        max_util = max(utils)
        self.metrics.series("network.link_utilization.mean").record(now, mean_util)
        self.metrics.series("network.link_utilization.max").record(now, max_util)
        if self.tracer.enabled:
            self.tracer.counter(
                "link_utilization", _FABRIC_PID, now,
                {"mean": mean_util, "max": max_util, "links": float(len(load))},
            )

    def _record_flows(self, flows: list[Flow], completion: dict[int, float]) -> None:
        """Emit per-flow spans and completion-time metrics."""
        times = self.metrics.histogram("network.flow_time_s")
        self.metrics.counter("network.flows").inc(len(flows))
        tracer = self.tracer
        if tracer.enabled:
            tracer.process(_FABRIC_PID, "network")
        for idx, flow in enumerate(flows):
            t = completion.get(idx)
            if t is None or t == float("inf"):
                continue
            times.observe(t)
            if tracer.enabled:
                name = flow.tag or f"{flow.src}->{flow.dst}"
                tracer.complete(
                    name, "flow", _FABRIC_PID, idx, 0.0, t,
                    args={"bytes": flow.size, "hops": len(flow.edges)},
                )

    def simulate(
        self,
        flows: list[Flow],
        time_epsilon: float = 1e-9,
        mode: str = "event",
    ) -> FlowResult:
        """Run all flows to completion.

        Args:
            flows: The transfers; all start at time zero.
            time_epsilon: Relative completion grouping tolerance: any
                flow whose remaining time at current rates is within
                ``(1 + time_epsilon) x dt`` of the next completion
                event finishes with it.  Coarser values (e.g. 0.02)
                collapse the event count for noisy symmetric traffic
                at a bounded relative accuracy cost.
            mode: "event" re-solves the fair allocation at every
                completion (exact).  "fixed" solves it once and lets
                every flow run at its initial rate (pessimistic when
                split and unsplit flows share links).  "drain" uses
                the fluid bound — makespan is the largest per-link
                drain time ``traffic/capacity`` plus the worst startup
                latency; exact whenever the bottleneck link stays busy
                to the end, which holds for the saturated symmetric
                collectives the benches run.

        Returns:
            Completion times, makespan and the initial fair rates.
        """
        if mode not in ("event", "fixed", "drain"):
            raise ValueError(f"unknown mode {mode!r}")
        self.metrics = (
            self._metrics_arg if self._metrics_arg is not None else MetricsRegistry()
        )
        remaining = {i: f.size for i, f in enumerate(flows) if f.size > 0}
        if mode == "drain":
            traffic: dict[tuple[str, str], float] = {}
            for f in flows:
                for e in f.edges:
                    traffic[e] = traffic.get(e, 0.0) + f.size
            drain = max(
                (t / self.capacities[e] for e, t in traffic.items()), default=0.0
            )
            # Per-flow completions are not resolved by the fluid bound;
            # report each flow's own busiest-link drain time as a
            # lower-bound proxy.
            completion = {}
            for i, f in enumerate(flows):
                own = max((traffic[e] / self.capacities[e] for e in f.edges), default=0.0)
                completion[i] = f.latency + (own if f.size > 0 else 0.0)
            makespan = drain + max((f.latency for f in flows), default=0.0)
            self._record_flows(flows, completion)
            return FlowResult(completion=completion, makespan=makespan, rates={})
        if mode == "fixed":
            rates = max_min_rates({i: flows[i] for i in remaining}, self.capacities)
            self._sample_utilization(0.0, {i: flows[i] for i in remaining}, rates)
            completion = {}
            for i, f in enumerate(flows):
                transfer = remaining[i] / rates[i] if i in remaining else 0.0
                completion[i] = f.latency + transfer
            makespan = max(completion.values(), default=0.0)
            self._record_flows(flows, completion)
            return FlowResult(completion=completion, makespan=makespan, rates=rates)
        completion = {i: flows[i].latency for i, f in enumerate(flows) if f.size == 0}
        initial_rates: dict[int, float] = {}
        now = 0.0
        first = True
        while remaining:
            active = {i: flows[i] for i in remaining}
            rates = max_min_rates(active, self.capacities)
            self._sample_utilization(now, active, rates)
            if first:
                initial_rates = dict(rates)
                first = False
            dt = min(remaining[i] / rates[i] for i in remaining)
            horizon = dt * (1 + time_epsilon)
            finished = [i for i in remaining if remaining[i] / rates[i] <= horizon]
            now += dt
            for i in list(remaining):
                remaining[i] -= rates[i] * dt
            for i in finished:
                completion[i] = now + flows[i].latency
                del remaining[i]
        makespan = max(completion.values(), default=0.0)
        self._record_flows(flows, completion)
        return FlowResult(completion=completion, makespan=makespan, rates=initial_rates)
