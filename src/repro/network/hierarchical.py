"""Hierarchical collectives: two-level NVLink + IB all-reduce.

Data-parallel gradient reduction on an H800 cluster exploits the
bandwidth hierarchy (§4.3's 4:1 NVLink:NIC ratio): reduce-scatter
inside each node over NVLink, ring all-reduce across nodes on each
GPU's own plane/rail NIC (each GPU owns 1/G of the buffer), then
all-gather inside the node.  Every GPU's NIC is busy with its own
shard — the multi-rail/multi-plane design's point.

Phases are simulated separately on the cluster graph and summed, which
matches the barrier between phases in real implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .flowsim import Flow, FlowSimulator
from .multiplane import ClusterNetwork, gpu_name


@dataclass(frozen=True)
class HierarchicalResult:
    """Timing of the three phases of a hierarchical all-reduce."""

    intra_reduce_time: float
    inter_ring_time: float
    intra_gather_time: float
    bytes_per_gpu: float

    @property
    def total_time(self) -> float:
        """End-to-end completion time."""
        return self.intra_reduce_time + self.inter_ring_time + self.intra_gather_time

    @property
    def algbw(self) -> float:
        """Algorithm bandwidth, bytes/s."""
        if self.total_time == 0:
            return float("inf")
        return self.bytes_per_gpu / self.total_time

    @property
    def busbw(self) -> float:
        """All-reduce bus bandwidth: 2 x algbw (NCCL convention)."""
        return 2.0 * self.algbw


def _intra_node_ring_flows(
    cluster: ClusterNetwork, per_link_bytes: float, tag: str
) -> list[Flow]:
    flows = []
    for node in range(cluster.num_nodes):
        nvsw = f"n{node}/nvsw"
        for g in range(cluster.gpus_per_node):
            src = gpu_name(node, g)
            dst = gpu_name(node, (g + 1) % cluster.gpus_per_node)
            flows.append(Flow(src, dst, per_link_bytes, [src, nvsw, dst], tag=tag))
    return flows


def _inter_node_ring_flows(
    cluster: ClusterNetwork, per_link_bytes: float, tag: str
) -> list[Flow]:
    """Per-plane rings across nodes; each GPU talks to the same-plane
    GPU of the next node through its own NIC."""
    flows = []
    topo = cluster.topology
    for plane in range(cluster.gpus_per_node):
        for node in range(cluster.num_nodes):
            src = gpu_name(node, plane)
            dst = gpu_name((node + 1) % cluster.num_nodes, plane)
            path = min(topo.shortest_paths(src, dst), key=len)
            flows.append(Flow(src, dst, per_link_bytes, path, tag=tag))
    return flows


def run_hierarchical_allreduce(
    cluster: ClusterNetwork, bytes_per_gpu: float
) -> HierarchicalResult:
    """Simulate a two-level all-reduce of ``bytes_per_gpu`` per GPU.

    Phase volumes (ring algorithms, aggregated per neighbour link):

    * intra-node reduce-scatter: ``(G-1)/G x S`` over NVLink,
    * inter-node ring all-reduce of each GPU's ``S/G`` shard:
      ``2 (N-1)/N x S/G`` over its NIC,
    * intra-node all-gather: ``(G-1)/G x S`` over NVLink.
    """
    if bytes_per_gpu < 0:
        raise ValueError("bytes_per_gpu must be non-negative")
    g = cluster.gpus_per_node
    n = cluster.num_nodes
    sim = FlowSimulator(cluster.topology)

    intra_bytes = bytes_per_gpu * (g - 1) / g
    intra_time = 0.0
    if g > 1 and intra_bytes > 0:
        intra_time = sim.simulate(
            _intra_node_ring_flows(cluster, intra_bytes, "rs"), mode="drain"
        ).makespan

    inter_time = 0.0
    if n > 1:
        shard = bytes_per_gpu / g
        inter_bytes = 2.0 * shard * (n - 1) / n
        if inter_bytes > 0:
            inter_time = sim.simulate(
                _inter_node_ring_flows(cluster, inter_bytes, "ring"), mode="drain"
            ).makespan

    return HierarchicalResult(
        intra_reduce_time=intra_time,
        inter_ring_time=inter_time,
        intra_gather_time=intra_time,
        bytes_per_gpu=bytes_per_gpu,
    )


def flat_ring_allreduce_time(cluster: ClusterNetwork, bytes_per_gpu: float) -> float:
    """Baseline: one flat ring over all GPUs (ignores the hierarchy).

    The ring's node-to-node hops cross the slow NIC links with the
    *whole* buffer's ``2 (NG-1)/(NG) x S`` volume instead of a 1/G
    shard, so this underperforms the hierarchical algorithm — the
    reason NCCL is hierarchy-aware.
    """
    if bytes_per_gpu < 0:
        raise ValueError("bytes_per_gpu must be non-negative")
    gpus = cluster.gpus()
    total = len(gpus)
    per_link = 2.0 * bytes_per_gpu * (total - 1) / total
    topo = cluster.topology
    flows = []
    for i, src in enumerate(gpus):
        dst = gpus[(i + 1) % total]
        path = min(topo.shortest_paths(src, dst), key=len)
        flows.append(Flow(src, dst, per_link, path, tag="flat"))
    return FlowSimulator(cluster.topology).simulate(flows, mode="drain").makespan
