"""Incast congestion and traffic isolation (Section 5.2.2, item 3).

Mixed AI workloads put bursty many-to-one all-to-all traffic (EP) on
the same switch ports as latency-sensitive flows.  RoCE switches offer
only a handful of priority queues; when the incast burst and a victim
flow share a queue, the victim waits behind the whole burst.  The
paper's fixes: virtual output queuing (a queue per QP) or better
endpoint congestion control that keeps the burst from queueing at all.

The model is an output-port queue: an incast of ``n`` senders delivers
``n x burst_bytes`` into one egress port while a small victim flow
arrives mid-burst.

* ``"shared_queue"`` — victim queues behind the residual burst (FIFO).
* ``"priority_queues"`` — the victim is isolated *only if* one of the
  few priority classes is free for it; with more concurrent traffic
  classes than queues, collision probability grows and the expected
  delay interpolates toward the shared queue.
* ``"voq"`` — per-QP virtual output queues: the victim shares the wire
  fairly with the burst only for its own serialization time.
"""

from __future__ import annotations

from dataclasses import dataclass

ISOLATION_SCHEMES = ("shared_queue", "priority_queues", "voq")


@dataclass(frozen=True)
class IncastScenario:
    """A many-to-one burst plus a small latency-sensitive victim flow.

    Attributes:
        num_senders: Concurrent incast senders.
        burst_bytes: Bytes each sender contributes.
        victim_bytes: Victim flow size.
        port_bandwidth: Egress port bandwidth (bytes/s).
        victim_arrival_fraction: When the victim arrives, as a fraction
            of the burst drain time (0 = with the burst's start).
    """

    num_senders: int = 16
    burst_bytes: float = 4 << 20
    victim_bytes: float = 64 << 10
    port_bandwidth: float = 50e9
    victim_arrival_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_senders < 1 or self.port_bandwidth <= 0:
            raise ValueError("need >=1 sender and positive bandwidth")
        if not 0 <= self.victim_arrival_fraction <= 1:
            raise ValueError("victim_arrival_fraction must be in [0, 1]")

    @property
    def burst_drain_time(self) -> float:
        """Time to drain the whole incast burst through the port."""
        return self.num_senders * self.burst_bytes / self.port_bandwidth

    @property
    def victim_serialization(self) -> float:
        """Victim wire time in isolation."""
        return self.victim_bytes / self.port_bandwidth


def victim_completion_time(
    scenario: IncastScenario,
    scheme: str = "shared_queue",
    num_priority_queues: int = 8,
    num_traffic_classes: int = 8,
) -> float:
    """Victim flow completion (from its arrival) under a queue scheme.

    Args:
        scenario: The incast setup.
        scheme: One of :data:`ISOLATION_SCHEMES`.
        num_priority_queues: Hardware priority queues available.
        num_traffic_classes: Concurrent traffic classes competing for
            them (the paper: today's queues are "insufficient for
            complex AI workloads").

    Returns:
        Seconds from victim arrival to its last byte.
    """
    if scheme not in ISOLATION_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    if num_priority_queues < 1 or num_traffic_classes < 1:
        raise ValueError("queue/class counts must be positive")
    residual = scenario.burst_drain_time * (1 - scenario.victim_arrival_fraction)
    if scheme == "shared_queue":
        return residual + scenario.victim_serialization
    if scheme == "voq":
        # Per-QP queue: the victim only shares the wire momentarily;
        # fair interleaving doubles its serialization at worst.
        return 2 * scenario.victim_serialization
    # priority_queues: isolated when it lands in a free class.
    collision = max(0.0, 1.0 - num_priority_queues / num_traffic_classes)
    isolated = 2 * scenario.victim_serialization
    return isolated + collision * residual


def victim_slowdown(scenario: IncastScenario, scheme: str, **kwargs) -> float:
    """Victim completion inflation vs its isolated wire time."""
    return victim_completion_time(scenario, scheme, **kwargs) / scenario.victim_serialization
