"""Multi-Plane (MPFT) and Multi-Rail (MRFT) cluster networks (Section 5.1).

An H800 node carries eight GPU/NIC pairs.  In the **multi-plane**
deployment each pair belongs to its own, fully disjoint two-layer fat
tree; traffic between GPUs in different planes must first hop over
NVLink to the source-node GPU that lives in the destination plane
(Figure 3).  In the **multi-rail** deployment all eight rails share one
fat tree: NIC ``j`` of every node attaches to rail-``j`` leaves, but the
spines interconnect all leaves, so cross-rail traffic *can* go through
the network — at the cost of extra hops.  NCCL's PXN optimization makes
the two equivalent in practice by always forwarding over NVLink onto
the destination rail, which is exactly what the paper's Figures 5-6 and
Table 4 observe.

Hosts are named ``n{node}g{gpu}``; NVLink is modeled as a per-node
virtual switch ``n{node}/nvsw`` with 160 GB/s effective per-GPU links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.hardware import H800_NODE, NodeSpec
from .topology import ENDPOINT_LINK, INTERSWITCH_LINK, NVLINK_LINK, SWITCH, Topology


def gpu_name(node: int, gpu: int) -> str:
    """Canonical host name of GPU ``gpu`` on node ``node``."""
    return f"n{node}g{gpu}"


@dataclass
class ClusterNetwork:
    """A built cluster: graph plus node/plane bookkeeping.

    Attributes:
        topology: The full graph (GPUs, NVLink switches, leaves, spines).
        num_nodes: Server count.
        gpus_per_node: GPUs (= NICs = planes/rails) per server.
        scheme: "mpft" or "mrft".
        plane_of: Host name -> plane/rail index.
        node_of: Host name -> node index.
    """

    topology: Topology
    num_nodes: int
    gpus_per_node: int
    scheme: str
    plane_of: dict[str, int] = field(default_factory=dict)
    node_of: dict[str, int] = field(default_factory=dict)

    @property
    def num_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return self.num_nodes * self.gpus_per_node

    def gpus(self) -> list[str]:
        """All GPU host names in (node, gpu) order."""
        return [
            gpu_name(n, g)
            for n in range(self.num_nodes)
            for g in range(self.gpus_per_node)
        ]

    def same_node(self, a: str, b: str) -> bool:
        """True when both GPUs share a server."""
        return self.node_of[a] == self.node_of[b]

    def nvlink_peer_on_plane(self, host: str, plane: int) -> str:
        """The GPU on ``host``'s node that lives in ``plane``."""
        return gpu_name(self.node_of[host], plane)


def _add_node_gpus(
    cluster: ClusterNetwork, node: int, nvlink_bandwidth: float
) -> None:
    topo = cluster.topology
    nvsw = f"n{node}/nvsw"
    topo.add_switch(nvsw, nvswitch=True)
    for g in range(cluster.gpus_per_node):
        host = gpu_name(node, g)
        topo.add_host(host, node=node, plane=g)
        topo.add_link(host, nvsw, nvlink_bandwidth, NVLINK_LINK)
        cluster.plane_of[host] = g
        cluster.node_of[host] = node


def build_mpft_cluster(
    num_nodes: int,
    node: NodeSpec = H800_NODE,
    nodes_per_leaf: int = 8,
    name: str = "MPFT",
) -> ClusterNetwork:
    """Build a multi-plane two-layer fat-tree cluster.

    Each of the node's ``gpus_per_node`` planes is an independent FT2:
    nodes are packed ``nodes_per_leaf`` per leaf, and each plane gets
    enough spines for full bisection (one spine per leaf-down-port).

    Args:
        num_nodes: Number of 8-GPU servers.
        node: Server hardware description (NIC and NVLink rates).
        nodes_per_leaf: Endpoints per leaf switch in each plane.
        name: Cluster name prefix.

    Returns:
        The built cluster.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    topo = Topology(name)
    cluster = ClusterNetwork(
        topology=topo,
        num_nodes=num_nodes,
        gpus_per_node=node.gpus_per_node,
        scheme="mpft",
    )
    nic_bw = node.nic.effective_bandwidth
    nv_bw = node.gpu.scale_up.effective_bandwidth
    num_leaves = -(-num_nodes // nodes_per_leaf)
    num_spines = min(nodes_per_leaf, num_nodes) if num_leaves > 1 else 0

    for n in range(num_nodes):
        _add_node_gpus(cluster, n, nv_bw)

    for plane in range(node.gpus_per_node):
        spines = [f"{name}/p{plane}/spine{s}" for s in range(num_spines)]
        for spine in spines:
            topo.add_switch(spine, plane=plane)
        for leaf_idx in range(num_leaves):
            leaf = f"{name}/p{plane}/leaf{leaf_idx}"
            topo.add_switch(leaf, plane=plane)
            for spine in spines:
                topo.add_link(leaf, spine, nic_bw, INTERSWITCH_LINK)
            lo = leaf_idx * nodes_per_leaf
            for n in range(lo, min(lo + nodes_per_leaf, num_nodes)):
                topo.add_link(gpu_name(n, plane), leaf, nic_bw, ENDPOINT_LINK)
    return cluster


def build_mrft_cluster(
    num_nodes: int,
    node: NodeSpec = H800_NODE,
    nodes_per_leaf: int = 8,
    name: str = "MRFT",
) -> ClusterNetwork:
    """Build a single-plane multi-rail fat-tree cluster.

    Rail ``j`` leaves serve NIC ``j`` of every node, but *all* leaves
    share one spine layer, so cross-rail traffic is routable through
    the network (unlike MPFT, where planes are disjoint).
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    topo = Topology(name)
    cluster = ClusterNetwork(
        topology=topo,
        num_nodes=num_nodes,
        gpus_per_node=node.gpus_per_node,
        scheme="mrft",
    )
    nic_bw = node.nic.effective_bandwidth
    nv_bw = node.gpu.scale_up.effective_bandwidth
    num_leaf_groups = -(-num_nodes // nodes_per_leaf)
    # One shared spine layer sized for full bisection across all rails.
    num_spines = min(nodes_per_leaf, num_nodes) if num_leaf_groups * node.gpus_per_node > 1 else 0

    for n in range(num_nodes):
        _add_node_gpus(cluster, n, nv_bw)

    spines = [f"{name}/spine{s}" for s in range(num_spines)]
    for spine in spines:
        topo.add_switch(spine)
    for rail in range(node.gpus_per_node):
        for group in range(num_leaf_groups):
            leaf = f"{name}/r{rail}/leaf{group}"
            topo.add_switch(leaf, rail=rail)
            for spine in spines:
                topo.add_link(leaf, spine, nic_bw, INTERSWITCH_LINK)
            lo = group * nodes_per_leaf
            for n in range(lo, min(lo + nodes_per_leaf, num_nodes)):
                topo.add_link(gpu_name(n, rail), leaf, nic_bw, ENDPOINT_LINK)
    return cluster


def pxn_relay(cluster: ClusterNetwork, src: str, dst: str) -> tuple[list[str], str]:
    """PXN decomposition of a cross-node transfer.

    Returns ``(nvlink_prefix, network_source)``: the NVLink hop (empty
    when the source already sits on the destination's plane) and the
    GPU whose NIC injects the message into the destination plane.
    """
    if cluster.same_node(src, dst):
        raise ValueError("same-node transfers never enter the network")
    dst_plane = cluster.plane_of[dst]
    if cluster.plane_of[src] == dst_plane:
        return [], src
    relay = cluster.nvlink_peer_on_plane(src, dst_plane)
    nvsw = f"n{cluster.node_of[src]}/nvsw"
    return [src, nvsw], relay


def pxn_path(cluster: ClusterNetwork, src: str, dst: str) -> list[str]:
    """PXN-style path: enter the network on the destination's plane.

    * Same node: pure NVLink (via the node's NVSwitch).
    * Same plane: the plane/rail network directly.
    * Cross plane: NVLink to the source-node GPU on the destination's
      plane, then that plane's network — NCCL PXN (Section 5.1.1), and
      the only option on MPFT.
    """
    if src == dst:
        raise ValueError("src and dst must differ")
    topo = cluster.topology
    if cluster.same_node(src, dst):
        nvsw = f"n{cluster.node_of[src]}/nvsw"
        return [src, nvsw, dst]
    dst_plane = cluster.plane_of[dst]
    if cluster.plane_of[src] == dst_plane:
        return min(topo.shortest_paths(src, dst), key=len)
    relay = cluster.nvlink_peer_on_plane(src, dst_plane)
    nvsw = f"n{cluster.node_of[src]}/nvsw"
    network = min(topo.shortest_paths(relay, dst), key=len)
    return [src, nvsw] + network


def direct_path(cluster: ClusterNetwork, src: str, dst: str) -> list[str]:
    """Shortest graph path, ignoring PXN (cross-rail goes via spines
    on MRFT; on MPFT the graph forces NVLink forwarding anyway)."""
    if src == dst:
        raise ValueError("src and dst must differ")
    return min(cluster.topology.shortest_paths(src, dst), key=len)


def planes_used(cluster: ClusterNetwork, path: list[str]) -> set[int]:
    """Planes/rails whose switches a path traverses.

    Only network switches count: hosts and NVLink switches are skipped,
    so a pure-NVLink hop uses no plane at all.  The fault tests use
    this to show a rerouted flow really escaped its dead plane.
    """
    nodes = cluster.topology.graph.nodes
    return {
        nodes[hop]["plane"]
        for hop in path
        if hop in nodes
        and nodes[hop].get("kind") == SWITCH
        and nodes[hop].get("plane") is not None
    }
