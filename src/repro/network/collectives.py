"""Collective traffic generators and NCCL-style bandwidth accounting.

Builds the flow sets behind the paper's communication experiments:

* all-to-all across a cluster (Figures 5-6), with or without PXN
  forwarding,
* ring AllGather / ReduceScatter on a routed fat tree (Figure 8),

and converts completion times into the NCCL test conventions:
``algbw = bytes_per_rank / time`` and ``busbw = algbw * (N-1)/N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .flowsim import Flow, FlowSimulator
from .latency import IB, LinkLayerLatency, path_latency
from .multiplane import ClusterNetwork, direct_path, pxn_path, pxn_relay
from .routing import RoutingPolicy, ecmp_index, equal_cost_paths, route_flow
from .topology import Topology


@dataclass(frozen=True)
class CollectiveResult:
    """Measured outcome of one collective operation.

    Attributes:
        time: Completion time of the slowest flow (seconds).
        bytes_per_rank: Data each rank contributed (NCCL "size").
        num_ranks: Participants.
    """

    time: float
    bytes_per_rank: float
    num_ranks: int

    @property
    def algbw(self) -> float:
        """NCCL algorithm bandwidth, bytes/s."""
        if self.time == 0:
            return float("inf")
        return self.bytes_per_rank / self.time

    @property
    def busbw(self) -> float:
        """NCCL bus bandwidth, bytes/s: algbw x (N-1)/N."""
        return self.algbw * (self.num_ranks - 1) / self.num_ranks


def pair_flows(
    cluster: ClusterNetwork,
    src: str,
    dst: str,
    size: float,
    use_pxn: bool = True,
    spread: str = "adaptive",
    layer: LinkLayerLatency = IB,
    tag: str = "",
) -> list[Flow]:
    """Flows realizing one src -> dst transfer on a cluster.

    Same-node pairs use NVLink.  Cross-node pairs enter the network on
    the destination plane (PXN) or on the shortest graph path; the
    network segment is spread over the plane's equal-cost spine paths:

    * ``"adaptive"`` — even fractional split (IB adaptive routing /
      multi-QP spraying; the production default),
    * ``"ecmp"`` — one hash-selected path,
    * ``"first"`` — the deterministically first path (pathological).
    """
    topo = cluster.topology
    if cluster.same_node(src, dst):
        path = [src, f"n{cluster.node_of[src]}/nvsw", dst]
        return [Flow(src, dst, size, path, latency=path_latency(cluster, path, layer), tag=tag)]
    if use_pxn:
        prefix, net_src = pxn_relay(cluster, src, dst)
    else:
        prefix, net_src = [], src
    paths = equal_cost_paths(topo, net_src, dst) if use_pxn else [direct_path(cluster, src, dst)]
    if not use_pxn:
        # Spread the direct path too, over its equal-cost variants.
        paths = equal_cost_paths(topo, src, dst)
    full_paths = [prefix + p if prefix else p for p in paths]
    latency = path_latency(cluster, full_paths[0], layer)
    if spread == "adaptive":
        share = size / len(full_paths)
        return [Flow(src, dst, share, p, latency=latency, tag=tag) for p in full_paths]
    if spread == "ecmp":
        chosen = full_paths[ecmp_index(src, dst, len(full_paths))]
    elif spread == "first":
        chosen = full_paths[0]
    else:
        raise ValueError(f"unknown spread {spread!r}")
    return [Flow(src, dst, size, chosen, latency=latency, tag=tag)]


def all_to_all_flows(
    cluster: ClusterNetwork,
    participants: list[str],
    bytes_per_pair: float,
    use_pxn: bool = True,
    layer: LinkLayerLatency = IB,
    spread: str = "adaptive",
) -> list[Flow]:
    """Flows of a full all-to-all among ``participants``.

    Each ordered pair (src != dst) exchanges ``bytes_per_pair``.  With
    ``use_pxn`` cross-plane traffic relays over NVLink onto the
    destination plane (mandatory on MPFT; NCCL's PXN behaviour on
    MRFT); without it, the direct shortest graph path is used.
    """
    flows = []
    for src in participants:
        for dst in participants:
            if src == dst:
                continue
            flows.extend(
                pair_flows(
                    cluster, src, dst, bytes_per_pair, use_pxn, spread, layer, tag="a2a"
                )
            )
    return flows


def run_all_to_all(
    cluster: ClusterNetwork,
    participants: list[str],
    bytes_per_pair: float,
    use_pxn: bool = True,
    layer: LinkLayerLatency = IB,
    spread: str = "adaptive",
    mode: str = "event",
) -> CollectiveResult:
    """Simulate an all-to-all and report NCCL-convention bandwidths.

    ``mode`` selects the flow-simulator fidelity ("event" exact,
    "drain" fluid bound — accurate here and much faster at scale).
    """
    n = len(participants)
    if n < 2:
        raise ValueError("need at least two participants")
    flows = all_to_all_flows(cluster, participants, bytes_per_pair, use_pxn, layer, spread)
    result = FlowSimulator(cluster.topology).simulate(flows, mode=mode)
    return CollectiveResult(
        time=result.makespan,
        bytes_per_rank=bytes_per_pair * n,
        num_ranks=n,
    )


def ring_collective_flows(
    topology: Topology,
    ring: list[str],
    buffer_bytes: float,
    policy: RoutingPolicy,
    static_table: dict[tuple[str, str], int] | None = None,
    tag: str = "ring",
) -> list[Flow]:
    """Flows of a ring AllGather (== ReduceScatter traffic, reversed).

    A ring of N ranks moves ``(N-1)/N x buffer_bytes`` over each
    neighbour link in total; the N-1 pipelined steps are aggregated
    into one flow per neighbour pair, which preserves per-link volume
    (what determines bandwidth-dominated completion).
    """
    n = len(ring)
    if n < 2:
        raise ValueError("a ring needs at least two ranks")
    per_link = buffer_bytes * (n - 1) / n
    flows: list[Flow] = []
    for i, src in enumerate(ring):
        dst = ring[(i + 1) % n]
        flows.extend(
            route_flow(topology, src, dst, per_link, policy, static_table=static_table, tag=tag)
        )
    return flows


def run_concurrent_rings(
    topology: Topology,
    rings: list[list[str]],
    buffer_bytes: float,
    policy: RoutingPolicy,
    static_table: dict[tuple[str, str], int] | None = None,
) -> CollectiveResult:
    """Simulate several rings sharing the fabric (the Figure 8 setup).

    Returns a result whose ``time`` is the completion of the slowest
    ring and whose bandwidth figures use one ring's per-rank bytes (all
    rings are the same size).
    """
    if not rings:
        raise ValueError("need at least one ring")
    flows: list[Flow] = []
    for r, ring in enumerate(rings):
        flows.extend(
            ring_collective_flows(
                topology, ring, buffer_bytes, policy, static_table, tag=f"ring{r}"
            )
        )
    result = FlowSimulator(topology).simulate(flows)
    return CollectiveResult(
        time=result.makespan,
        bytes_per_rank=buffer_bytes,
        num_ranks=len(rings[0]),
    )
