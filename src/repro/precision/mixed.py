"""Combine-stage precision study (Section 3.2).

The combine stage "still uses higher precision (e.g., BF16) due to
accuracy requirements, [but] we are actively testing FP8, custom
precision formats (e.g., E5M6) and mixing FP8-BF16 for further
reductions".  This module implements those candidates on a common
footing — error vs. wire bits per element — including the mixed
scheme, which sends the highest-magnitude tiles (the ones that carry
the combine sum's accuracy) in BF16 and the rest in FP8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .formats import BF16, E4M3, E5M2, E5M6, FloatFormat
from .logfmt import bits_per_element as logfmt_bits
from .logfmt import logfmt_fake_quantize
from .quantize import fake_quantize, relative_error


def mixed_fp8_bf16_quantize(
    x: np.ndarray,
    bf16_fraction: float,
    fp8_fmt: FloatFormat = E4M3,
    tile: int = 128,
) -> np.ndarray:
    """Per-tile mixed quantization: big tiles BF16, the rest FP8.

    Tiles are ranked by absolute maximum; the top ``bf16_fraction`` of
    tiles are transmitted in BF16 (a near-lossless 16-bit path) and the
    remainder as tile-scaled FP8.

    Args:
        x: Activations [..., n].
        bf16_fraction: Fraction of tiles kept in BF16, in [0, 1].
        fp8_fmt: FP8 flavour for the remaining tiles.
        tile: Tile width.

    Returns:
        The round-tripped array (same shape).
    """
    if not 0 <= bf16_fraction <= 1:
        raise ValueError("bf16_fraction must be in [0, 1]")
    x = np.asarray(x, dtype=np.float32)
    flat = x.reshape(-1, x.shape[-1])
    n = flat.shape[-1]
    num_tiles = -(-n // tile)
    padded = np.pad(flat, [(0, 0), (0, num_tiles * tile - n)])
    tiles = padded.reshape(flat.shape[0], num_tiles, tile)
    amax = np.abs(tiles).max(axis=-1).ravel()
    keep = int(round(bf16_fraction * amax.size))
    bf16_tiles = set(np.argsort(amax)[::-1][:keep].tolist())

    out = np.empty_like(tiles)
    for flat_idx in range(amax.size):
        r, t = divmod(flat_idx, num_tiles)
        segment = tiles[r, t]
        if flat_idx in bf16_tiles:
            out[r, t] = BF16.quantize(segment)
        else:
            out[r, t] = fake_quantize(segment[None, :], fp8_fmt, tile)[0]
    return out.reshape(padded.shape)[:, :n].reshape(x.shape)


def mixed_bits_per_element(bf16_fraction: float, fp8_bits: int = 8, tile: int = 128) -> float:
    """Wire bits/element of the mixed scheme (incl. fp32 tile scales
    for the FP8 tiles and a 1-bit per-tile format flag)."""
    if not 0 <= bf16_fraction <= 1:
        raise ValueError("bf16_fraction must be in [0, 1]")
    fp8 = fp8_bits + 32.0 / tile
    return bf16_fraction * 16 + (1 - bf16_fraction) * fp8 + 1.0 / tile


@dataclass(frozen=True)
class CombineCandidate:
    """One combine-wire format option."""

    name: str
    relative_error: float
    bits_per_element: float


def combine_format_study(x: np.ndarray, tile: int = 128) -> list[CombineCandidate]:
    """Error vs wire-bits for every §3.2 combine-format candidate."""
    x = np.asarray(x, dtype=np.float32)
    candidates = [
        CombineCandidate("BF16", relative_error(x, BF16.quantize(x)), 16.0),
        CombineCandidate(
            "E5M6 (1x128)",
            relative_error(x, fake_quantize(x, E5M6, tile)),
            12 + 32.0 / tile,
        ),
        CombineCandidate(
            "E4M3 (1x128)",
            relative_error(x, fake_quantize(x, E4M3, tile)),
            8 + 32.0 / tile,
        ),
        CombineCandidate(
            "E5M2 (1x128)",
            relative_error(x, fake_quantize(x, E5M2, tile)),
            8 + 32.0 / tile,
        ),
        CombineCandidate(
            "LogFMT-8", relative_error(x, logfmt_fake_quantize(x, 8, tile)), logfmt_bits(8, tile)
        ),
        CombineCandidate(
            "LogFMT-10",
            relative_error(x, logfmt_fake_quantize(x, 10, tile)),
            logfmt_bits(10, tile),
        ),
    ]
    for fraction in (0.25, 0.5):
        candidates.append(
            CombineCandidate(
                f"mixed FP8/BF16 ({fraction:.0%} BF16)",
                relative_error(x, mixed_fp8_bf16_quantize(x, fraction, tile=tile)),
                mixed_bits_per_element(fraction, tile=tile),
            )
        )
    return candidates
