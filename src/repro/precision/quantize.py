"""Fine-grained quantization: 1x128 tiles and 128x128 blocks (Section 3.1).

DeepSeek-V3 quantizes activations tile-wise (each 1x128 slice along the
inner dimension gets its own scale) and weights block-wise (each
128x128 block gets its own scale).  The scale maps the tile's absolute
maximum onto the format's maximum value, so outliers only distort their
own tile — the property that makes FP8 training stable.

:class:`QuantizedTensor` carries the quantized payload together with
its scales; ``dequantize`` reconstructs float32.  The per-tensor
quantizer is included as the coarse baseline the fine-grained scheme is
compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .formats import E4M3, FloatFormat


@dataclass(frozen=True)
class QuantizedTensor:
    """A quantized array plus the metadata needed to reconstruct it.

    Attributes:
        data: Quantized values (exactly representable in ``fmt``),
            stored as float32, *before* scale multiplication.
        scales: Per-tile/block scales; broadcastable to ``data`` after
            :func:`expand_scales`.
        fmt: Target number format.
        granularity: "tile", "block" or "tensor".
        tile: Tile/block edge length.
    """

    data: np.ndarray
    scales: np.ndarray
    fmt: FloatFormat
    granularity: str
    tile: int

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the represented tensor."""
        return self.data.shape

    @property
    def nbytes_payload(self) -> float:
        """Payload bytes at the format's bit width."""
        return self.data.size * self.fmt.bits / 8.0

    @property
    def nbytes_scales(self) -> float:
        """Scale metadata bytes (one float32 per tile/block)."""
        return self.scales.size * 4.0

    def expand_scales(self) -> np.ndarray:
        """Scales broadcast to the full data shape."""
        if self.granularity == "tensor":
            return np.broadcast_to(self.scales, self.data.shape)
        if self.granularity == "tile":
            return np.repeat(self.scales, self.tile, axis=-1)[..., : self.data.shape[-1]]
        # block: scales are [ceil(r/t), ceil(c/t)]
        rows = np.repeat(self.scales, self.tile, axis=0)[: self.data.shape[0]]
        return np.repeat(rows, self.tile, axis=1)[:, : self.data.shape[1]]

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float32 tensor."""
        return (self.data * self.expand_scales()).astype(np.float32)


def _safe_scale(amax: np.ndarray, fmt_max: float) -> np.ndarray:
    scale = amax / fmt_max
    return np.where(scale == 0, 1.0, scale)


def quantize_tensor(x: np.ndarray, fmt: FloatFormat = E4M3) -> QuantizedTensor:
    """Per-tensor quantization: a single scale for the whole array."""
    x = np.asarray(x, dtype=np.float32)
    scale = _safe_scale(np.max(np.abs(x), keepdims=False), fmt.max_value)
    data = fmt.quantize(x / scale)
    return QuantizedTensor(data, np.asarray(scale, np.float32), fmt, "tensor", x.size)


def quantize_tiles(
    x: np.ndarray, fmt: FloatFormat = E4M3, tile: int = 128
) -> QuantizedTensor:
    """Tile-wise 1xN quantization along the last axis (activations).

    Each contiguous run of ``tile`` elements in the last axis shares a
    scale.  The last axis need not be a multiple of ``tile``; the final
    partial tile gets its own scale.
    """
    x = np.asarray(x, dtype=np.float32)
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    n = x.shape[-1]
    num_tiles = -(-n // tile)
    padded = np.pad(x, [(0, 0)] * (x.ndim - 1) + [(0, num_tiles * tile - n)])
    tiles = padded.reshape(*x.shape[:-1], num_tiles, tile)
    amax = np.max(np.abs(tiles), axis=-1)
    scales = _safe_scale(amax, fmt.max_value).astype(np.float32)
    data = fmt.quantize(tiles / scales[..., None]).reshape(padded.shape)[..., :n]
    return QuantizedTensor(data, scales, fmt, "tile", tile)


def quantize_blocks(
    w: np.ndarray, fmt: FloatFormat = E4M3, block: int = 128
) -> QuantizedTensor:
    """Block-wise NxN quantization of a 2-D weight matrix."""
    w = np.asarray(w, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError(f"block quantization expects a 2-D matrix, got {w.ndim}-D")
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    rows, cols = w.shape
    br, bc = -(-rows // block), -(-cols // block)
    padded = np.pad(w, [(0, br * block - rows), (0, bc * block - cols)])
    blocks = padded.reshape(br, block, bc, block).transpose(0, 2, 1, 3)
    amax = np.max(np.abs(blocks), axis=(-1, -2))
    scales = _safe_scale(amax, fmt.max_value).astype(np.float32)
    data = fmt.quantize(blocks / scales[..., None, None])
    data = data.transpose(0, 2, 1, 3).reshape(br * block, bc * block)[:rows, :cols]
    return QuantizedTensor(data, scales, fmt, "block", block)


def fake_quantize(x: np.ndarray, fmt: FloatFormat = E4M3, tile: int = 128) -> np.ndarray:
    """Quantize-dequantize round trip (tile-wise); same shape as ``x``.

    This is the simulation primitive the FP8 training pipeline uses:
    values pass through the exact representable lattice of the target
    format while staying float32 for subsequent math.
    """
    return quantize_tiles(x, fmt, tile).dequantize()


def relative_error(reference: np.ndarray, approx: np.ndarray) -> float:
    """RMS error of ``approx`` relative to the RMS of ``reference``."""
    reference = np.asarray(reference, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    denom = np.sqrt(np.mean(reference**2))
    if denom == 0:
        return 0.0
    return float(np.sqrt(np.mean((approx - reference) ** 2)) / denom)
