"""Bit-accurate emulation of FP8 GEMM with limited-precision accumulation.

Section 3.1.1 describes the Hopper tensor-core pipeline that constrains
FP8 training accuracy: exact FP8xFP8 products are *aligned in groups of
32* to the group's maximum exponent keeping only the highest 13
fraction bits (lower bits are truncated by the right shift), the group
sum is then accumulated into an FP22 register (1 sign / 8 exponent /
13 mantissa bits).  DeepGEMM works around the precision loss by
promoting partial sums to FP32 CUDA-core accumulators at every scaling
boundary (the 128-element tile), which also applies the fine-grained
dequantization scales.

This module emulates that arithmetic exactly in numpy:

* ``accumulation="ideal"`` — quantized inputs, exact FP32 accumulation
  (the hardware the paper asks for in §3.1.2).
* ``accumulation="hopper_promoted"`` — Hopper tensor-core semantics
  inside each 128-wide K chunk, FP32 promotion between chunks
  (DeepSeek-V3's production strategy).
* ``accumulation="hopper_fp22"`` — Hopper semantics with the running
  cross-chunk accumulator *also* held in FP22, modeling a kernel that
  never promotes; its error grows with K, demonstrating why promotion
  (or better hardware) is necessary.
"""

from __future__ import annotations

import numpy as np

from .formats import (
    E4M3,
    FP22_ACCUM,
    HOPPER_ALIGN_GROUP,
    HOPPER_ALIGNED_FRACTION_BITS,
    FloatFormat,
)
from .quantize import QuantizedTensor, quantize_blocks, quantize_tiles

ACCUMULATION_MODES = ("ideal", "hopper_promoted", "hopper_fp22")


def _truncate_to_aligned_mantissa(products: np.ndarray, fraction_bits: int) -> np.ndarray:
    """Align products to the group max exponent, truncating low bits.

    ``products`` has the alignment group in its last axis.  Each value
    is truncated (round toward zero, matching a right shift) onto the
    lattice ``2**(e_max - fraction_bits)`` of its group.
    """
    amax = np.max(np.abs(products), axis=-1, keepdims=True)
    with np.errstate(divide="ignore"):
        e_max = np.floor(np.log2(amax, out=np.zeros_like(amax), where=amax > 0))
    step = np.exp2(e_max - fraction_bits)
    return np.trunc(products / step) * step


def tensor_core_partial(
    a_chunk: np.ndarray,
    b_chunk: np.ndarray,
    align_group: int = HOPPER_ALIGN_GROUP,
    fraction_bits: int = HOPPER_ALIGNED_FRACTION_BITS,
    accumulator: FloatFormat = FP22_ACCUM,
    exact: bool = False,
) -> np.ndarray:
    """One tensor-core K-chunk: ``a_chunk [M,K] @ b_chunk [K,N]``.

    With ``exact=False`` this reproduces the §3.1.1 semantics: products
    are formed exactly (FP8 x FP8 fits float64), truncated to 13
    aligned fraction bits in groups of 32 along K, and group sums are
    accumulated sequentially through an FP22 register.
    """
    if exact:
        return a_chunk.astype(np.float64) @ b_chunk.astype(np.float64)
    m, k = a_chunk.shape
    k2, n = b_chunk.shape
    if k != k2:
        raise ValueError(f"inner dims differ: {k} vs {k2}")
    if k % align_group != 0:
        raise ValueError(f"K chunk ({k}) must be a multiple of {align_group}")
    groups = k // align_group
    a = a_chunk.astype(np.float64).reshape(m, groups, align_group)
    b = b_chunk.astype(np.float64).reshape(groups, align_group, n)

    acc = np.zeros((m, n), dtype=np.float64)
    for g in range(groups):
        products = a[:, g, :, None] * b[None, g, :, :]  # [m, group, n]
        truncated = _truncate_to_aligned_mantissa(
            products.transpose(0, 2, 1), fraction_bits
        )
        acc = accumulator.quantize(acc + truncated.sum(axis=-1)).astype(np.float64)
    return acc


def quantized_gemm(
    a_q: QuantizedTensor,
    b_q: QuantizedTensor,
    accumulation: str = "hopper_promoted",
) -> np.ndarray:
    """Emulated fine-grained FP8 GEMM: ``dequant(a_q) @ dequant(b_q)``.

    Args:
        a_q: Activations [M, K], tile-quantized along K (1x128 tiles).
        b_q: Weights [K, N], block-quantized (128x128 blocks).
        accumulation: One of :data:`ACCUMULATION_MODES`.

    Returns:
        Float32 result [M, N].
    """
    if accumulation not in ACCUMULATION_MODES:
        raise ValueError(f"unknown accumulation {accumulation!r}")
    if a_q.granularity != "tile" or b_q.granularity != "block":
        raise ValueError("expected tile-quantized A and block-quantized B")
    if a_q.tile != b_q.tile:
        raise ValueError("A tile size must equal B block size")
    m, k = a_q.shape
    kb, n = b_q.shape
    if k != kb:
        raise ValueError(f"inner dims differ: {k} vs {kb}")
    chunk = a_q.tile
    if k % chunk != 0:
        raise ValueError(f"K ({k}) must be a multiple of the tile ({chunk})")

    b_scales = b_q.expand_scales()  # [K, N]
    out = np.zeros((m, n), dtype=np.float64)
    for c in range(k // chunk):
        sl = slice(c * chunk, (c + 1) * chunk)
        partial = tensor_core_partial(
            a_q.data[:, sl], b_q.data[sl], exact=(accumulation == "ideal")
        )
        a_scale = a_q.scales[:, c][:, None]  # [M, 1]
        b_scale = b_scales[c * chunk][None, :]  # [1, N]: constant within a chunk
        scaled = partial * (a_scale * b_scale)
        if accumulation == "hopper_fp22":
            out = FP22_ACCUM.quantize(out + scaled).astype(np.float64)
        else:
            out = out + scaled  # FP32/FP64 CUDA-core accumulator
    return out.astype(np.float32)


def fp8_matmul(
    a: np.ndarray,
    b: np.ndarray,
    accumulation: str = "hopper_promoted",
    act_fmt: FloatFormat = E4M3,
    weight_fmt: FloatFormat = E4M3,
    tile: int = 128,
) -> np.ndarray:
    """Quantize ``a`` (1xtile) and ``b`` (tilextile) and run the GEMM."""
    a_q = quantize_tiles(a, act_fmt, tile)
    b_q = quantize_blocks(b, weight_fmt, tile)
    return quantized_gemm(a_q, b_q, accumulation)


def dequant_overhead_fraction(tile: int = 128) -> float:
    """CUDA-core work per tensor-core FLOP added by fine-grained scaling.

    Each output element needs one multiply-add per K chunk to apply
    scales and promote (2 ops per ``2 * tile`` tensor-core FLOPs).
    This is the "dequantization overhead" of §3.1.1 that native
    tensor-core scaling support (§3.1.2) would eliminate.
    """
    if tile <= 0:
        raise ValueError("tile must be positive")
    return 2.0 / (2.0 * tile)
