"""Binary floating-point format descriptors and value-space quantizers.

The paper's low-precision work (Section 3) revolves around a handful of
formats: FP8 E4M3/E5M2 for storage and tensor-core inputs, the custom
E5M6 considered for the combine stage, BF16 as the accuracy reference,
and the *FP22* accumulator (1 sign, 8 exponent, 13 mantissa bits) that
Hopper tensor cores accumulate FP8 products into (Section 3.1.1).

:class:`FloatFormat` quantizes float32/64 arrays to the nearest value
representable in the target format (round-to-nearest-even, saturating at
the maximum finite value, flushing below the subnormal range to zero).
This is a *value-space* emulation: the result is an ordinary numpy array
whose elements are exactly representable in the target format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-like binary float format.

    Attributes:
        name: Display name (e.g. "E4M3").
        exponent_bits: Exponent field width.
        mantissa_bits: Stored (fractional) mantissa width.
        finite_only: If True the top binade is used for normal values
            except NaN (the "fn" convention of FP8 E4M3, giving 448
            instead of 240).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    finite_only: bool = False

    def __post_init__(self) -> None:
        if self.exponent_bits < 2 or self.mantissa_bits < 0:
            raise ValueError("need >=2 exponent bits and >=0 mantissa bits")

    @property
    def bits(self) -> int:
        """Total storage bits including the sign."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        """Exponent bias."""
        return 2 ** (self.exponent_bits - 1) - 1

    @property
    def min_exponent(self) -> int:
        """Smallest normal exponent (unbiased)."""
        return 1 - self.bias

    @property
    def max_exponent(self) -> int:
        """Largest normal exponent (unbiased)."""
        # With finite_only (fn formats) the all-ones exponent encodes
        # normal values too (bar one NaN pattern).
        top = 2**self.exponent_bits - 1 - self.bias
        return top if self.finite_only else top - 1

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        frac_max = 2.0 - 2.0 ** (-self.mantissa_bits)
        if self.finite_only:
            # fn convention: the very top code is NaN, so the largest
            # mantissa pattern is excluded in the top binade.
            frac_max = 2.0 - 2.0 ** (1 - self.mantissa_bits)
        return frac_max * 2.0**self.max_exponent

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0**self.min_exponent

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return 2.0 ** (self.min_exponent - self.mantissa_bits)

    @property
    def epsilon(self) -> float:
        """Relative spacing of values just above 1.0."""
        return 2.0 ** (-self.mantissa_bits)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` to the nearest representable value.

        Round-to-nearest-even; magnitudes above ``max_value`` saturate;
        magnitudes below half the smallest subnormal flush to zero.
        """
        x = np.asarray(x, dtype=np.float64)
        sign = np.sign(x)
        mag = np.abs(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            exp = np.floor(np.log2(mag, out=np.zeros_like(mag), where=mag > 0))
        exp = np.clip(exp, self.min_exponent, self.max_exponent)
        step = np.exp2(exp - self.mantissa_bits)
        q = np.round(mag / step) * step
        q = np.minimum(q, self.max_value)
        q = np.where(mag == 0, 0.0, q)
        return (sign * q).astype(np.float32)

    def quantization_error(self, x: np.ndarray) -> float:
        """RMS relative quantization error of ``x`` under this format."""
        x = np.asarray(x, dtype=np.float64)
        q = self.quantize(x).astype(np.float64)
        denom = np.sqrt(np.mean(x**2))
        if denom == 0:
            return 0.0
        return float(np.sqrt(np.mean((q - x) ** 2)) / denom)


# --- The formats the paper discusses ----------------------------------------

E4M3 = FloatFormat("E4M3", exponent_bits=4, mantissa_bits=3, finite_only=True)
E5M2 = FloatFormat("E5M2", exponent_bits=5, mantissa_bits=2)
E5M6 = FloatFormat("E5M6", exponent_bits=5, mantissa_bits=6)
BF16 = FloatFormat("BF16", exponent_bits=8, mantissa_bits=7)
FP16 = FloatFormat("FP16", exponent_bits=5, mantissa_bits=10)
FP32 = FloatFormat("FP32", exponent_bits=8, mantissa_bits=23)

#: Hopper tensor-core FP8 accumulation register (Section 3.1.1): 1 sign
#: bit, 8 exponent bits, 13 mantissa bits.
FP22_ACCUM = FloatFormat("FP22", exponent_bits=8, mantissa_bits=13)

#: Mantissa product bits retained when the tensor core aligns 32
#: products to their maximum exponent before adding (Section 3.1.1).
HOPPER_ALIGNED_FRACTION_BITS = 13

#: Products aligned and added per tensor-core accumulation step.
HOPPER_ALIGN_GROUP = 32

FORMAT_CATALOG: dict[str, FloatFormat] = {
    f.name: f for f in (E4M3, E5M2, E5M6, BF16, FP16, FP32, FP22_ACCUM)
}
