"""LogFMT-nBit: the logarithmic communication format of Section 3.2.

For each 1x128 tile the codec takes absolute values, computes
``log(abs(x))`` of the non-zero elements, and maps the range
``[min, max]`` uniformly onto the ``2**(n-1) - 1`` non-zero codes of an
``n``-bit word whose leading bit is the sign:

* zero      -> code 0
* ``min``   -> code 1          (the paper's ``S.00..01``)
* ``max``   -> code ``2**(n-1) - 1``   (``S.11..11``)
* step      -> ``(max - min) / (2**(n-1) - 2)``

Decoding is ``sign * exp(min + step * (K - 1))``.

Two details the paper calls out are implemented faithfully:

* **Rounding happens in the original linear space**, not log space:
  each value is assigned to whichever of its two neighbouring codes
  decodes closer to it, which makes the quantizer (nearly) unbiased.
* ``min`` is clamped to ``max - log(2**32)`` so the dynamic range never
  exceeds roughly that of an E5 floating-point exponent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MAX_LOG_RANGE = 32.0 * np.log(2.0)

#: Fused encode/decode overhead the paper measured when LogFMT is fused
#: with all-to-all on Hopper (50%-100% extra kernel time, §3.2.1).
FUSED_ENCODE_OVERHEAD_RANGE = (0.5, 1.0)


@dataclass(frozen=True)
class LogFmtTile:
    """One encoded 1xN tile.

    Attributes:
        codes: Unsigned magnitude codes in ``[0, 2**(n-1) - 1]``.
        signs: Sign bits (+1.0 / -1.0).
        log_min: Per-tile minimum of ``log|x|`` after range clamping.
        step: Per-tile log-space step.
        n_bits: Total bits per element including the sign bit.
    """

    codes: np.ndarray
    signs: np.ndarray
    log_min: float
    step: float
    n_bits: int

    def decode(self) -> np.ndarray:
        """Reconstruct the tile as float32."""
        mags = np.where(
            self.codes == 0,
            0.0,
            np.exp(self.log_min + self.step * (self.codes.astype(np.float64) - 1)),
        )
        return (self.signs * mags).astype(np.float32)


def encode_tile(x: np.ndarray, n_bits: int) -> LogFmtTile:
    """Encode one tile of values into LogFMT-nBit.

    Args:
        x: 1-D tile (the paper uses 128 elements).
        n_bits: Bits per element; 1 sign bit + (n_bits - 1) code bits.

    Returns:
        The encoded tile.
    """
    if n_bits < 3:
        raise ValueError(f"need at least 3 bits (sign + 2 code bits), got {n_bits}")
    x = np.asarray(x, dtype=np.float64).ravel()
    signs = np.where(x < 0, -1.0, 1.0)
    mags = np.abs(x)
    nonzero = mags > 0
    num_codes = 2 ** (n_bits - 1) - 1  # non-zero codes: 1 .. num_codes

    if not np.any(nonzero):
        return LogFmtTile(np.zeros(x.shape, np.int64), signs, 0.0, 0.0, n_bits)

    logs = np.log(mags[nonzero])
    log_max = float(np.max(logs))
    log_min = float(np.min(logs))
    # Constrain the range to ~E5 dynamic range (paper: min > max - log(2^32)).
    log_min = max(log_min, log_max - MAX_LOG_RANGE)
    if num_codes >= 2 and log_max > log_min:
        step = (log_max - log_min) / (num_codes - 1)
    else:
        step = 0.0

    codes = np.zeros(x.shape, dtype=np.int64)
    if step == 0.0:
        codes[nonzero] = 1
    else:
        # Candidate code from log-space position...
        pos = (np.log(mags[nonzero]) - log_min) / step  # in [<=0, num_codes-1]
        lo = np.clip(np.floor(pos), 0, num_codes - 1)
        hi = np.clip(lo + 1, 0, num_codes - 1)
        # ...but choose between the two neighbours in *linear* space.
        dec_lo = np.exp(log_min + step * lo)
        dec_hi = np.exp(log_min + step * hi)
        pick_hi = (mags[nonzero] - dec_lo) > (dec_hi - mags[nonzero])
        codes[nonzero] = np.where(pick_hi, hi, lo).astype(np.int64) + 1
    return LogFmtTile(codes, signs, log_min, step, n_bits)


def logfmt_fake_quantize(x: np.ndarray, n_bits: int, tile: int = 128) -> np.ndarray:
    """Encode-decode round trip over 1x``tile`` tiles; shape preserved."""
    x = np.asarray(x, dtype=np.float32)
    flat = x.reshape(-1, x.shape[-1])
    out = np.empty_like(flat)
    for r in range(flat.shape[0]):
        row = flat[r]
        for start in range(0, row.shape[0], tile):
            segment = row[start : start + tile]
            out[r, start : start + tile] = encode_tile(segment, n_bits).decode()
    return out.reshape(x.shape)


def bits_per_element(n_bits: int, tile: int = 128) -> float:
    """Wire bits per element including per-tile (min, step) float32s."""
    if tile <= 0:
        raise ValueError("tile must be positive")
    return n_bits + 64.0 / tile


def quantization_bias(x: np.ndarray, n_bits: int, tile: int = 128) -> float:
    """Mean signed error of the round trip, normalized by RMS of ``x``.

    Linear-space rounding keeps this near zero; rounding in log space
    instead would bias magnitudes upward (the paper's observation).
    """
    x = np.asarray(x, dtype=np.float64)
    rms = np.sqrt(np.mean(x**2))
    if rms == 0:
        return 0.0
    err = logfmt_fake_quantize(x.astype(np.float32), n_bits, tile).astype(np.float64) - x
    return float(np.mean(err) / rms)


def logspace_rounded_fake_quantize(x: np.ndarray, n_bits: int, tile: int = 128) -> np.ndarray:
    """Ablation variant that rounds in log space (what *not* to do).

    Used by tests/benches to demonstrate the bias the paper warns
    about: round-to-nearest in log space systematically inflates
    magnitudes because exp() is convex.
    """
    x = np.asarray(x, dtype=np.float64)
    flat = x.reshape(-1, x.shape[-1])
    out = np.empty_like(flat)
    num_codes_for = 2 ** (n_bits - 1) - 1
    for r in range(flat.shape[0]):
        row = flat[r]
        for start in range(0, row.shape[0], tile):
            seg = row[start : start + tile]
            signs = np.where(seg < 0, -1.0, 1.0)
            mags = np.abs(seg)
            nz = mags > 0
            if not np.any(nz):
                out[r, start : start + tile] = 0.0
                continue
            logs = np.log(mags[nz])
            log_max = float(np.max(logs))
            log_min = max(float(np.min(logs)), log_max - MAX_LOG_RANGE)
            step = (
                (log_max - log_min) / (num_codes_for - 1)
                if num_codes_for >= 2 and log_max > log_min
                else 0.0
            )
            dec = np.zeros_like(seg)
            if step == 0.0:
                dec[nz] = np.exp(log_min)
            else:
                k = np.clip(np.round((logs - log_min) / step), 0, num_codes_for - 1)
                dec[nz] = np.exp(log_min + step * k)
            out[r, start : start + tile] = signs * dec
    return out.reshape(x.shape).astype(np.float32)
