"""Minimal reverse-mode autograd used by the tiny training pipeline."""

from .functional import (
    apply_rope,
    causal_mask_scores,
    cross_entropy,
    fake_quant_blocks,
    fake_quant_tiles,
    log_softmax,
    rms_norm,
    softmax,
)
from .optim import SGD, AdamW, Optimizer
from .tensor import Tensor, concat, embedding_lookup, where_constant

__all__ = [
    "apply_rope",
    "causal_mask_scores",
    "cross_entropy",
    "fake_quant_blocks",
    "fake_quant_tiles",
    "log_softmax",
    "rms_norm",
    "softmax",
    "SGD",
    "AdamW",
    "Optimizer",
    "Tensor",
    "concat",
    "embedding_lookup",
    "where_constant",
]
