"""Composite autograd functions: softmax, losses, norms, RoPE, fake-quant."""

from __future__ import annotations

import numpy as np

from ..precision.formats import FloatFormat
from ..precision.quantize import quantize_blocks, quantize_tiles
from .tensor import Tensor, concat, where_constant


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x + Tensor(-x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp * (exp.sum(axis=axis, keepdims=True) ** -1.0)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    shifted = x + Tensor(-x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``logits`` [N, V] against class ids [N]."""
    targets = np.asarray(targets).reshape(-1)
    if logits.ndim != 2 or logits.shape[0] != targets.shape[0]:
        raise ValueError("logits must be [N, V] matching N targets")
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(targets.shape[0]), targets]
    return -picked.mean()


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """RMSNorm over the last axis with learned gain."""
    ms = (x * x).mean(axis=-1, keepdims=True)
    return x * ((ms + eps) ** -0.5) * weight


def apply_rope(x: Tensor, positions: np.ndarray, base: float = 10000.0) -> Tensor:
    """Rotary embedding on the last axis of ``x`` [..., t, dim].

    Uses the rotate-pairs formulation with constant cos/sin tables, so
    gradients flow through ordinary elementwise ops.
    """
    dim = x.shape[-1]
    if dim % 2:
        raise ValueError("rotary dim must be even")
    inv_freq = 1.0 / (base ** (np.arange(0, dim, 2) / dim))
    angles = np.outer(positions, inv_freq).astype(np.float32)
    cos, sin = np.cos(angles), np.sin(angles)
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    r1 = x1 * Tensor(cos) - x2 * Tensor(sin)
    r2 = x1 * Tensor(sin) + x2 * Tensor(cos)
    # Interleave back: stack on a new trailing axis then flatten.
    stacked = concat([r1.reshape(*r1.shape, 1), r2.reshape(*r2.shape, 1)], axis=-1)
    return stacked.reshape(*x.shape)


def causal_mask_scores(scores: Tensor, query_offset: int = 0) -> Tensor:
    """Mask future positions of ``scores`` [..., tq, tk] to -1e9."""
    tq, tk = scores.shape[-2], scores.shape[-1]
    key_pos = np.arange(tk)
    query_pos = query_offset + np.arange(tq)
    mask = key_pos[None, :] > query_pos[:, None]
    return where_constant(mask, -1e9, scores)


def fake_quant_tiles(x: Tensor, fmt: FloatFormat, tile: int = 128) -> Tensor:
    """Straight-through tile-wise fake quantization (activations).

    Forward snaps values onto the FP8 lattice with 1x``tile`` scaling
    (Section 3.1's activation quantization); backward passes gradients
    through unchanged (the standard straight-through estimator).
    """
    q = quantize_tiles(x.data, fmt, tile).dequantize()

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad)

    return Tensor._make(q, (x,), backward)


def fake_quant_blocks(w: Tensor, fmt: FloatFormat, block: int = 128) -> Tensor:
    """Straight-through block-wise fake quantization (weights)."""
    q = quantize_blocks(w.data, fmt, block).dequantize()

    def backward(grad):
        if w.requires_grad:
            w._accumulate(grad)

    return Tensor._make(q, (w,), backward)
