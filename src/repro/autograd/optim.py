"""Optimizers for the autograd engine: SGD with momentum and AdamW."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: list[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("no trainable parameters given")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update; implemented by subclasses."""
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, params: list[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """v = mu v + g; p -= lr v."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v


class AdamW(Optimizer):
    """AdamW with decoupled weight decay."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One AdamW update over all parameters with gradients."""
        self._step += 1
        bias1 = 1 - self.beta1**self._step
        bias2 = 1 - self.beta2**self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * np.square(g)
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * update
