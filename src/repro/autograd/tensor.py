"""Minimal reverse-mode autograd over numpy.

Just enough machinery to train the tiny MLA+MoE transformer of
:mod:`repro.training`: broadcast-aware elementwise ops, (batched)
matmul, reductions, indexing, concatenation, and a straight-through
fake-quantization op for FP8 training simulation.

Design: each :class:`Tensor` records its parents and a backward
closure; :meth:`Tensor.backward` runs a topological sweep.  Everything
is float32 numpy underneath; no attempt is made at performance beyond
vectorization.
"""

from __future__ import annotations

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents: tuple[Tensor, ...] = ()
        self._backward = None

    # -- construction helpers --------------------------------------------

    @classmethod
    def param(cls, data) -> "Tensor":
        """A trainable parameter."""
        return cls(data, requires_grad=True)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Dimensionality."""
        return self.data.ndim

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    def detach(self) -> "Tensor":
        """A view of the data cut from the graph."""
        return Tensor(self.data)

    # -- graph machinery --------------------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32).copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor.

        Args:
            grad: Seed gradient; defaults to ones (scalar outputs only).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in seen:
                    stack.append((p, False))
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Clear this tensor's gradient."""
        self.grad = None

    # -- arithmetic --------------------------------------------------------

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    # -- shape ops ---------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, preserving gradient flow."""
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes."""
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis``."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis``."""
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    # -- nonlinearities --------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1 - out_data))

        return self._make(out_data, (self,), backward)

    def silu(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (sig * (1 + self.data * (1 - sig))))

        return self._make(out_data, (self,), backward)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        moved = np.moveaxis(grad, axis, 0)
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                t._accumulate(np.moveaxis(moved[lo:hi], 0, axis))

    return Tensor._make(data, tuple(tensors), backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add gradient."""
    indices = np.asarray(indices)
    data = table.data[indices]

    def backward(grad):
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, table.shape[-1]))
            table._accumulate(full)

    return Tensor._make(data, (table,), backward)


def where_constant(mask: np.ndarray, value: float, tensor: Tensor) -> Tensor:
    """``where(mask, value, tensor)`` with ``value`` a constant.

    Used for additive attention masking; gradient flows only through
    unmasked positions.
    """
    data = np.where(mask, np.float32(value), tensor.data)

    def backward(grad):
        if tensor.requires_grad:
            tensor._accumulate(np.where(mask, 0.0, grad))

    return Tensor._make(data, (tensor,), backward)
