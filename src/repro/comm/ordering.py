"""Memory-semantic communication ordering (Section 6.4).

With load/store (or RDMA-write) semantics, the sender must today issue
an explicit memory fence between writing the payload and setting the
completion flag, which costs an extra round trip per message and stalls
the issuing thread.  The paper proposes Region Acquire/Release (RAR):
the receiver's NIC tracks the region's state in a bitmap and enforces
ordering itself, so the sender streams writes back-to-back.

The model compares three schemes for delivering a stream of messages:

* ``"fence"``       — payload write, full RTT fence, flag write (today);
* ``"flag_poll"``   — payload + flag in order with a conservative
                      sender-side wait of one RTT every message, but
                      messages to *different* destinations overlap;
* ``"rar"``         — hardware ordering at the receiver: the sender
                      pipelines everything; cost is one RTT once, plus
                      serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

ORDERING_SCHEMES = ("fence", "flag_poll", "rar")


@dataclass(frozen=True)
class OrderedStreamConfig:
    """A stream of ordered small messages to one peer.

    Attributes:
        num_messages: Messages that must be delivered in order.
        message_bytes: Payload of each message.
        rtt: Network round-trip time.
        bandwidth: Link bandwidth (bytes/s).
        issue_overhead: Sender-side per-message issue cost.
    """

    num_messages: int
    message_bytes: float
    rtt: float
    bandwidth: float
    issue_overhead: float = 0.1e-6

    def __post_init__(self) -> None:
        if self.num_messages < 1 or self.message_bytes < 0:
            raise ValueError("need >=1 messages with non-negative size")
        if self.rtt < 0 or self.bandwidth <= 0:
            raise ValueError("rtt must be >=0 and bandwidth positive")

    @property
    def serialization(self) -> float:
        """Wire time of one message."""
        return self.message_bytes / self.bandwidth


def stream_completion_time(config: OrderedStreamConfig, scheme: str = "fence") -> float:
    """Time until the receiver may consume the last message, in order.

    Args:
        config: Stream description.
        scheme: One of :data:`ORDERING_SCHEMES`.

    Returns:
        Completion time in seconds.
    """
    if scheme not in ORDERING_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    n = config.num_messages
    per_msg = config.serialization + config.issue_overhead
    if scheme == "fence":
        # Every message pays: payload, a fence round trip, flag write.
        return n * (per_msg + config.rtt) + config.rtt / 2
    if scheme == "flag_poll":
        # Sender waits only half an RTT (write acknowledged) per message.
        return n * (per_msg + config.rtt / 2) + config.rtt / 2
    # RAR: fully pipelined; ordering enforced by the receiver NIC.
    return n * per_msg + config.rtt / 2


def rar_speedup(config: OrderedStreamConfig) -> float:
    """Completion speedup of RAR over the sender-fence scheme."""
    return stream_completion_time(config, "fence") / stream_completion_time(config, "rar")


def ordering_overhead_fraction(config: OrderedStreamConfig, scheme: str) -> float:
    """Fraction of completion time spent on ordering, not data."""
    floor = stream_completion_time(config, "rar")
    actual = stream_completion_time(config, scheme)
    if actual == 0:
        return 0.0
    return 1.0 - floor / actual
