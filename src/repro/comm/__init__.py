"""Communication substrate: EP all-to-all, overlap, IBGDA, contention."""

from .contention import (
    ARBITRATION_SCHEMES,
    ContentionResult,
    ep_slowdown,
    shared_pipe_times,
)
from .ep import (
    COMBINE_BYTES_PER_ELEMENT,
    DEEPSEEK_V3_EP,
    DISPATCH_BYTES_PER_ELEMENT,
    EPConfig,
    EPDeployment,
    EPStageResult,
    ib_cost_factor,
    run_ep_stage,
)
from .innetwork import (
    InNetworkSavings,
    combine_savings,
    dispatch_savings,
    ep_stage_time_with_innetwork,
    expected_reduction_factor,
    logfmt_wire_savings,
    simulated_mean_m,
)
from .ordering import (
    ORDERING_SCHEMES,
    OrderedStreamConfig,
    ordering_overhead_fraction,
    rar_speedup,
    stream_completion_time,
)
from .ibgda import (
    CPU_PROXY,
    IBGDA,
    ControlPlaneModel,
    ibgda_speedup,
    small_message_send_latency,
)
from .overlap import (
    H800_COMM_SMS_TRAINING,
    StageTimes,
    gpu_idle_fraction,
    layer_time,
    overlap_efficiency,
    sm_compute_penalty,
)

__all__ = [
    "ARBITRATION_SCHEMES",
    "ContentionResult",
    "ep_slowdown",
    "shared_pipe_times",
    "COMBINE_BYTES_PER_ELEMENT",
    "DEEPSEEK_V3_EP",
    "DISPATCH_BYTES_PER_ELEMENT",
    "EPConfig",
    "EPDeployment",
    "EPStageResult",
    "ib_cost_factor",
    "run_ep_stage",
    "InNetworkSavings",
    "combine_savings",
    "dispatch_savings",
    "ep_stage_time_with_innetwork",
    "expected_reduction_factor",
    "logfmt_wire_savings",
    "simulated_mean_m",
    "ORDERING_SCHEMES",
    "OrderedStreamConfig",
    "ordering_overhead_fraction",
    "rar_speedup",
    "stream_completion_time",
    "CPU_PROXY",
    "IBGDA",
    "ControlPlaneModel",
    "ibgda_speedup",
    "small_message_send_latency",
    "H800_COMM_SMS_TRAINING",
    "StageTimes",
    "gpu_idle_fraction",
    "layer_time",
    "overlap_efficiency",
    "sm_compute_penalty",
]
