"""PCIe/NVLink bandwidth contention (Section 4.5).

During disaggregated inference, KV-cache pages stream from CPU memory
to the GPU over PCIe at tens of GB/s while the same GPU's NIC — which
also hangs off the PCIe/IO fabric — carries EP all-to-all traffic.
Without traffic prioritization the two share bandwidth, stretching the
latency-critical EP transfers; §4.5.2 asks for dynamic traffic
priority (or NIC integration into the IO die) to fix this.

The model shares a PCIe pipe between a *bulk* stream (KV prefetch) and
a *latency-sensitive* stream (EP), under three arbitration schemes:

* ``"fair"`` — equal split while both are active (today's hardware),
* ``"priority"`` — the EP stream preempts (the suggested fix),
* ``"bulk_first"`` — the pathological ordering (bulk monopolizes).
"""

from __future__ import annotations

from dataclasses import dataclass

ARBITRATION_SCHEMES = ("fair", "priority", "bulk_first")


@dataclass(frozen=True)
class ContentionResult:
    """Completion times of the two streams sharing the pipe."""

    ep_time: float
    kv_time: float


def shared_pipe_times(
    ep_bytes: float,
    kv_bytes: float,
    pipe_bandwidth: float,
    scheme: str = "fair",
) -> ContentionResult:
    """Completion times of EP and KV streams sharing one pipe.

    Args:
        ep_bytes: Latency-sensitive EP transfer size.
        kv_bytes: Bulk KV-cache transfer size.
        pipe_bandwidth: Shared pipe bandwidth (bytes/s).
        scheme: Arbitration (see module docstring).

    Returns:
        Per-stream completion times.
    """
    if min(ep_bytes, kv_bytes) < 0 or pipe_bandwidth <= 0:
        raise ValueError("sizes must be non-negative and bandwidth positive")
    if scheme not in ARBITRATION_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    bw = pipe_bandwidth
    if scheme == "priority":
        ep_time = ep_bytes / bw
        kv_time = ep_time + kv_bytes / bw if kv_bytes else 0.0
        return ContentionResult(ep_time=ep_time, kv_time=kv_time)
    if scheme == "bulk_first":
        kv_time = kv_bytes / bw
        ep_time = kv_time + ep_bytes / bw if ep_bytes else 0.0
        return ContentionResult(ep_time=ep_time, kv_time=kv_time)
    # Fair sharing: both progress at bw/2 until one drains.
    short, long_ = sorted((ep_bytes, kv_bytes))
    t_first = short / (bw / 2)
    t_second = t_first + (long_ - short) / bw
    if ep_bytes <= kv_bytes:
        return ContentionResult(ep_time=t_first, kv_time=t_second)
    return ContentionResult(ep_time=t_second, kv_time=t_first)


def ep_slowdown(
    ep_bytes: float, kv_bytes: float, pipe_bandwidth: float, scheme: str = "fair"
) -> float:
    """EP completion time inflation caused by the concurrent KV stream."""
    alone = ep_bytes / pipe_bandwidth if ep_bytes else 0.0
    contended = shared_pipe_times(ep_bytes, kv_bytes, pipe_bandwidth, scheme).ep_time
    if alone == 0:
        return 1.0
    return contended / alone
