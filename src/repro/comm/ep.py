"""Expert-parallel dispatch/combine communication (DeepEP model).

Implements the traffic model behind Figure 7 and Section 4.3:

* Experts are grouped one group per node (Section 4.3's deployment);
  within a node the group's experts are striped across the 8 GPUs.
* **Dispatch** sends each token over IB *once per destination node*
  (the NVLink-forwarding deduplication), then fans it out over NVLink
  to the experts' GPUs.  Dispatch payloads are FP8 (1 byte/element).
* **Combine** returns expert outputs in BF16 (2 bytes/element), again
  aggregated per node over IB after an NVLink-side reduction.

Token routing comes from real routing decisions
(:mod:`repro.model.routing`), so node-limited routing directly shapes
the traffic matrix; the flows are then executed on the cluster graph by
the max-min flow simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.routing import RoutingDecision, node_limited_topk, topk_routing
from ..network.collectives import pair_flows
from ..network.flowsim import Flow, FlowSimulator
from ..network.multiplane import ClusterNetwork, gpu_name

DISPATCH_BYTES_PER_ELEMENT = 1  # FP8
COMBINE_BYTES_PER_ELEMENT = 2  # BF16


@dataclass(frozen=True)
class EPConfig:
    """Expert-parallel deployment description.

    Attributes:
        num_routed_experts: Total routed experts.
        experts_per_token: Top-k routed experts per token.
        num_shared_experts: Shared experts (co-located with the token's
            own GPU; they add compute, not dispatch traffic).
        hidden_size: Token hidden dimension (the paper uses ~7K).
        max_nodes_per_token: Node-limited routing cap (0 = unlimited).
    """

    num_routed_experts: int
    experts_per_token: int
    num_shared_experts: int = 1
    hidden_size: int = 7168
    max_nodes_per_token: int = 4

    @property
    def destinations_per_token(self) -> int:
        """Expert copies each token is sent to (9 for DeepSeek-V3)."""
        return self.experts_per_token + self.num_shared_experts


DEEPSEEK_V3_EP = EPConfig(
    num_routed_experts=256,
    experts_per_token=8,
    num_shared_experts=1,
    hidden_size=7168,
    max_nodes_per_token=4,
)


class EPDeployment:
    """Experts placed on a cluster, one expert group per node."""

    def __init__(self, cluster: ClusterNetwork, config: EPConfig) -> None:
        if config.num_routed_experts % cluster.num_nodes != 0:
            raise ValueError(
                f"{config.num_routed_experts} experts do not stripe over "
                f"{cluster.num_nodes} nodes"
            )
        self.cluster = cluster
        self.config = config
        self.experts_per_node = config.num_routed_experts // cluster.num_nodes
        if self.experts_per_node % cluster.gpus_per_node != 0:
            raise ValueError(
                f"{self.experts_per_node} experts/node do not stripe over "
                f"{cluster.gpus_per_node} GPUs"
            )
        self.experts_per_gpu = self.experts_per_node // cluster.gpus_per_node

    def node_of_expert(self, expert: int) -> int:
        """Node hosting ``expert`` (group-major placement, §4.3)."""
        return expert // self.experts_per_node

    def gpu_of_expert(self, expert: int) -> str:
        """GPU hosting ``expert``."""
        node = self.node_of_expert(expert)
        local = expert % self.experts_per_node
        return gpu_name(node, local // self.experts_per_gpu)

    def route_tokens(
        self, tokens_per_gpu: int, rng: np.random.Generator
    ) -> dict[str, RoutingDecision]:
        """Draw routing decisions for every GPU's local batch.

        Affinities are random uniform — the balanced-load regime the
        paper's bandwidth analysis assumes.  Node-limited routing is
        applied when the config requests it and the cluster has more
        nodes than the cap.
        """
        cfg = self.config
        decisions = {}
        for src in self.cluster.gpus():
            scores = rng.uniform(size=(tokens_per_gpu, cfg.num_routed_experts))
            if 0 < cfg.max_nodes_per_token < self.cluster.num_nodes:
                decisions[src] = node_limited_topk(
                    scores,
                    cfg.experts_per_token,
                    num_groups=self.cluster.num_nodes,
                    max_groups=cfg.max_nodes_per_token,
                )
            else:
                decisions[src] = topk_routing(scores, cfg.experts_per_token)
        return decisions

    # -- traffic construction -------------------------------------------

    def dispatch_traffic(
        self, decisions: dict[str, RoutingDecision]
    ) -> tuple[dict[tuple[str, str], float], dict[tuple[str, str], float]]:
        """(IB traffic, NVLink fan-out traffic) of the dispatch stage.

        IB traffic is node-deduplicated: a token crossing to node ``d``
        costs ``hidden x 1`` byte once, regardless of how many of its
        experts live there.  The NVLink map carries the within-node
        fan-out from the entry GPU to each expert GPU.
        """
        token_bytes = self.config.hidden_size * DISPATCH_BYTES_PER_ELEMENT
        num_nodes = self.cluster.num_nodes
        gpus_per_node = self.cluster.gpus_per_node
        ib: dict[tuple[str, str], float] = {}
        nvlink: dict[tuple[str, str], float] = {}
        for src, decision in decisions.items():
            src_plane = self.cluster.plane_of[src]
            src_node = self.cluster.node_of[src]
            tokens = decision.num_tokens
            expert_nodes = decision.expert_ids // self.experts_per_node
            expert_gpu_idx = (
                decision.expert_ids % self.experts_per_node
            ) // self.experts_per_gpu
            # hits[t, node, gpu] — does token t target an expert there?
            hits = np.zeros((tokens, num_nodes, gpus_per_node), dtype=bool)
            rows = np.repeat(np.arange(tokens), decision.expert_ids.shape[1])
            hits[rows, expert_nodes.ravel(), expert_gpu_idx.ravel()] = True
            node_hits = hits.any(axis=2)  # [t, node]
            node_counts = node_hits.sum(axis=0)  # tokens touching each node
            gpu_counts = hits.sum(axis=0)  # [node, gpu]
            for node in range(num_nodes):
                if node == src_node:
                    # Local node: NVLink only, straight to expert GPUs.
                    for gidx in range(gpus_per_node):
                        dst = gpu_name(node, gidx)
                        if dst != src and gpu_counts[node, gidx]:
                            _add(nvlink, (src, dst), gpu_counts[node, gidx] * token_bytes)
                    continue
                if node_counts[node]:
                    entry = gpu_name(node, src_plane)
                    _add(ib, (src, entry), node_counts[node] * token_bytes)
                    for gidx in range(gpus_per_node):
                        dst = gpu_name(node, gidx)
                        if dst != entry and gpu_counts[node, gidx]:
                            _add(
                                nvlink,
                                (entry, dst),
                                gpu_counts[node, gidx] * token_bytes,
                            )
        return ib, nvlink

    def combine_traffic(
        self, decisions: dict[str, RoutingDecision]
    ) -> tuple[dict[tuple[str, str], float], dict[tuple[str, str], float]]:
        """Traffic of the combine stage (reverse of dispatch, BF16).

        Expert outputs for one token on one node are reduced over
        NVLink at the exit GPU, then a single BF16 message returns over
        IB — the mirror-image deduplication.
        """
        ib_d, nv_d = self.dispatch_traffic(decisions)
        ratio = COMBINE_BYTES_PER_ELEMENT / DISPATCH_BYTES_PER_ELEMENT
        ib = {(b, a): v * ratio for (a, b), v in ib_d.items()}
        nvlink = {(b, a): v * ratio for (a, b), v in nv_d.items()}
        return ib, nvlink

    def traffic_to_flows(
        self,
        ib: dict[tuple[str, str], float],
        nvlink: dict[tuple[str, str], float],
        spread: str = "adaptive",
    ) -> list[Flow]:
        """Materialize aggregated traffic as simulator flows."""
        flows: list[Flow] = []
        for (src, dst), size in ib.items():
            flows.extend(
                pair_flows(self.cluster, src, dst, size, use_pxn=True, spread=spread, tag="ib")
            )
        for (src, dst), size in nvlink.items():
            nvsw = f"n{self.cluster.node_of[src]}/nvsw"
            flows.append(Flow(src, dst, size, [src, nvsw, dst], tag="nvlink"))
        return flows


def _add(traffic: dict[tuple[str, str], float], key: tuple[str, str], size: float) -> None:
    traffic[key] = traffic.get(key, 0.0) + size


@dataclass(frozen=True)
class EPStageResult:
    """Measured outcome of one EP stage (dispatch or combine)."""

    stage: str
    time: float
    ib_bytes_per_gpu: float
    total_ib_bytes: float

    @property
    def per_gpu_bandwidth(self) -> float:
        """Achieved IB bandwidth per GPU (the Figure 7 y-axis)."""
        if self.time == 0:
            return float("inf")
        return self.ib_bytes_per_gpu / self.time


def run_ep_stage(
    deployment: EPDeployment,
    decisions: dict[str, RoutingDecision],
    stage: str = "dispatch",
    spread: str = "adaptive",
    mode: str = "drain",
) -> EPStageResult:
    """Simulate one EP all-to-all stage on the cluster fabric.

    ``mode="drain"`` uses the fluid bound (largest per-link drain
    time), which matches the exact event simulation for these
    saturated symmetric stages at a fraction of the cost; pass
    ``"event"`` for the fully re-solved simulation.
    """
    if stage == "dispatch":
        ib, nvlink = deployment.dispatch_traffic(decisions)
    elif stage == "combine":
        ib, nvlink = deployment.combine_traffic(decisions)
    else:
        raise ValueError(f"stage must be dispatch or combine, got {stage!r}")
    flows = deployment.traffic_to_flows(ib, nvlink, spread)
    result = FlowSimulator(deployment.cluster.topology).simulate(flows, mode=mode)
    total_ib = sum(ib.values())
    num_gpus = deployment.cluster.num_gpus
    return EPStageResult(
        stage=stage,
        time=result.makespan,
        ib_bytes_per_gpu=total_ib / num_gpus,
        total_ib_bytes=total_ib,
    )


# --- Section 4.3 closed-form analysis ----------------------------------------


def ib_cost_factor(decision: RoutingDecision, experts_per_node: int) -> float:
    """Average per-token IB cost in units of t (one token-send time).

    Without NVLink forwarding the cost is the number of *remote
    experts* (up to 8t); with node-deduplication it is the number of
    distinct remote nodes M (Section 4.3's Mt).
    """
    nodes = decision.expert_ids // experts_per_node
    m = [len(np.unique(row)) for row in nodes]
    return float(np.mean(m))
