"""In-network computation for EP all-to-all (Section 6.5).

The paper observes that EP **dispatch** is a small-scale multicast and
**combine** a small-scale reduction, so switches that replicate packets
(dispatch) or aggregate them (combine) would shrink the traffic the
endpoints must push.

With node-limited routing a token today crosses IB once per
destination node (M copies leave the source NIC); with switch
multicast the source sends *one* copy and the fabric replicates toward
the M nodes — source NIC traffic drops by M.  Symmetrically, combine
responses aggregate in the fabric before reaching the token's home NIC.
This module quantifies those savings on top of the EP traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.routing import RoutingDecision
from .ep import COMBINE_BYTES_PER_ELEMENT, DISPATCH_BYTES_PER_ELEMENT, EPDeployment


@dataclass(frozen=True)
class InNetworkSavings:
    """Endpoint NIC traffic with and without in-network support."""

    stage: str
    baseline_bytes: float
    in_network_bytes: float

    @property
    def reduction(self) -> float:
        """Traffic reduction factor (>= 1)."""
        if self.in_network_bytes == 0:
            return float("inf")
        return self.baseline_bytes / self.in_network_bytes


def _per_token_node_counts(
    deployment: EPDeployment, decisions: dict[str, RoutingDecision]
) -> tuple[float, float]:
    """(sum of remote-M over tokens, count of tokens with remote M>0)."""
    total_m = 0.0
    remote_tokens = 0.0
    for src, decision in decisions.items():
        src_node = deployment.cluster.node_of[src]
        nodes = decision.expert_ids // deployment.experts_per_node
        for row in nodes:
            remote = set(int(n) for n in row) - {src_node}
            total_m += len(remote)
            if remote:
                remote_tokens += 1
    return total_m, remote_tokens


def dispatch_savings(
    deployment: EPDeployment, decisions: dict[str, RoutingDecision]
) -> InNetworkSavings:
    """Source-NIC dispatch traffic: M copies today vs 1 with multicast."""
    token_bytes = deployment.config.hidden_size * DISPATCH_BYTES_PER_ELEMENT
    total_m, remote_tokens = _per_token_node_counts(deployment, decisions)
    return InNetworkSavings(
        stage="dispatch",
        baseline_bytes=total_m * token_bytes,
        in_network_bytes=remote_tokens * token_bytes,
    )


def combine_savings(
    deployment: EPDeployment, decisions: dict[str, RoutingDecision]
) -> InNetworkSavings:
    """Home-NIC combine traffic: M partial sums today vs 1 aggregated."""
    token_bytes = deployment.config.hidden_size * COMBINE_BYTES_PER_ELEMENT
    total_m, remote_tokens = _per_token_node_counts(deployment, decisions)
    return InNetworkSavings(
        stage="combine",
        baseline_bytes=total_m * token_bytes,
        in_network_bytes=remote_tokens * token_bytes,
    )


def expected_reduction_factor(
    deployment: EPDeployment, decisions: dict[str, RoutingDecision]
) -> float:
    """Mean per-token M among remote tokens — the multicast win."""
    total_m, remote_tokens = _per_token_node_counts(deployment, decisions)
    if remote_tokens == 0:
        return 1.0
    return total_m / remote_tokens


def logfmt_wire_savings(payload_bits: float = 8.5, baseline_bits: float = 16.0) -> float:
    """Bandwidth saving of hardware-native LogFMT on the combine wire.

    §6.5: LogFMT in network hardware would let the BF16 combine stage
    ship 8-10 bit payloads.  Default compares LogFMT-8 (8 bits + tile
    metadata) against BF16.
    """
    if payload_bits <= 0 or baseline_bits <= 0:
        raise ValueError("bit widths must be positive")
    return baseline_bits / payload_bits


def ep_stage_time_with_innetwork(
    baseline_time: float, reduction_factor: float
) -> float:
    """Stage time when endpoint NIC traffic shrinks by ``reduction``.

    The EP stages are NIC-bound (Figure 7), so the stage time scales
    with the per-NIC byte volume.
    """
    if reduction_factor < 1:
        raise ValueError("reduction factor must be >= 1")
    return baseline_time / reduction_factor


def simulated_mean_m(
    deployment: EPDeployment, tokens_per_gpu: int, seed: int = 0
) -> float:
    """Convenience: expected M for this deployment's routing config."""
    decisions = deployment.route_tokens(tokens_per_gpu, np.random.default_rng(seed))
    return expected_reduction_factor(deployment, decisions)
