"""IBGDA: GPU-driven RDMA control plane vs CPU proxy (Section 5.2.3).

In the traditional path the GPU notifies a CPU proxy thread, which
fills the work request (WQE) and rings the NIC doorbell — adding a
GPU->CPU synchronization to every message and serializing all messages
through one proxy thread.  IBGDA lets GPU threads write WQEs and the
doorbell MMIO directly: no CPU round trip, and thousands of parallel
GPU threads share the control-plane work.

The model exposes per-message latency and the batch completion time
for many small messages, where the single-threaded proxy becomes the
bottleneck the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: GPU -> CPU notification + wakeup (host polling granularity).
CPU_NOTIFY_LATENCY = 1.5e-6
#: CPU fills WQE + rings doorbell, per message (single proxy thread).
CPU_WQE_FILL_TIME = 0.3e-6
#: GPU thread fills WQE + MMIO doorbell write, per message.
GPU_WQE_FILL_TIME = 0.1e-6
#: Concurrent GPU threads available for control-plane work.
DEFAULT_GPU_PARALLELISM = 128


@dataclass(frozen=True)
class ControlPlaneModel:
    """Latency model of one RDMA send initiation path."""

    name: str
    startup_latency: float
    per_message_time: float
    parallelism: int

    def first_message_latency(self) -> float:
        """Control-plane latency contributed to a single send."""
        return self.startup_latency + self.per_message_time

    def batch_time(self, num_messages: int) -> float:
        """Time to issue ``num_messages`` sends."""
        if num_messages < 0:
            raise ValueError("num_messages must be non-negative")
        waves = -(-num_messages // self.parallelism)
        return self.startup_latency + waves * self.per_message_time


CPU_PROXY = ControlPlaneModel(
    name="CPU proxy",
    startup_latency=CPU_NOTIFY_LATENCY,
    per_message_time=CPU_WQE_FILL_TIME,
    parallelism=1,
)

IBGDA = ControlPlaneModel(
    name="IBGDA",
    startup_latency=0.0,
    per_message_time=GPU_WQE_FILL_TIME,
    parallelism=DEFAULT_GPU_PARALLELISM,
)


def ibgda_speedup(num_messages: int) -> float:
    """Control-plane speedup of IBGDA over the CPU proxy."""
    proxy = CPU_PROXY.batch_time(num_messages)
    gda = IBGDA.batch_time(num_messages)
    if gda == 0:
        return float("inf")
    return proxy / gda


def small_message_send_latency(
    msg_bytes: float,
    network_latency: float,
    bandwidth: float,
    control: ControlPlaneModel = IBGDA,
) -> float:
    """End-to-end latency of one small send including control plane."""
    if msg_bytes < 0 or bandwidth <= 0:
        raise ValueError("invalid message size or bandwidth")
    return control.first_message_latency() + network_latency + msg_bytes / bandwidth
