"""Dual micro-batch computation/communication overlap (Section 2.3.1)
and the SM-contention cost of software-driven communication (Section 4.4).

DeepSeek-V3 decouples MLA and MoE into stages so that while micro-batch
A computes, micro-batch B runs its dispatch/combine all-to-all, and
vice versa.  With perfect overlap a layer costs
``max(compute, communication)`` per micro-batch instead of their sum.

When communication is driven by GPU SMs (NVLink forwarding, reduce,
type-cast — the §4.4.1 task list), those SMs are unavailable to
compute kernels: the paper reports up to 20 of the H800's 132 SMs
consumed during training.  ``sm_compute_penalty`` models the resulting
compute slowdown, and :func:`layer_time` combines both effects, which
is what the RDMA-offload ablation bench exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

#: SMs the paper reports allocated to communication during training.
H800_COMM_SMS_TRAINING = 20


@dataclass(frozen=True)
class StageTimes:
    """Per-micro-batch stage durations of one transformer layer."""

    attention_compute: float
    moe_compute: float
    dispatch_comm: float
    combine_comm: float

    @property
    def compute(self) -> float:
        """Total compute time."""
        return self.attention_compute + self.moe_compute

    @property
    def communication(self) -> float:
        """Total all-to-all time."""
        return self.dispatch_comm + self.combine_comm

    def scaled_compute(self, factor: float) -> "StageTimes":
        """Stage times with compute scaled by ``factor``."""
        return StageTimes(
            attention_compute=self.attention_compute * factor,
            moe_compute=self.moe_compute * factor,
            dispatch_comm=self.dispatch_comm,
            combine_comm=self.combine_comm,
        )


def sm_compute_penalty(comm_sms: int, total_sms: int) -> float:
    """Compute-time inflation when ``comm_sms`` SMs do communication.

    Compute kernels see ``total - comm`` SMs, so their duration scales
    by ``total / (total - comm)``.
    """
    if not 0 <= comm_sms < total_sms:
        raise ValueError(f"need 0 <= comm_sms < total_sms, got {comm_sms}/{total_sms}")
    return total_sms / (total_sms - comm_sms)


def layer_time(
    stages: StageTimes,
    dual_microbatch: bool = True,
    comm_sms: int = 0,
    total_sms: int = 132,
) -> float:
    """Time to push one micro-batch through one layer.

    Args:
        stages: Stage durations at full SM count.
        dual_microbatch: Overlap communication of one micro-batch with
            computation of the other (Section 2.3.1).  Without it,
            compute and communication serialize.
        comm_sms: SMs reserved for communication kernels (0 models
            full NIC-RDMA offload, e.g. IBGDA-driven inference).
        total_sms: SMs on the GPU.

    Returns:
        Steady-state per-micro-batch layer time.
    """
    effective = stages.scaled_compute(sm_compute_penalty(comm_sms, total_sms))
    if dual_microbatch:
        return max(effective.compute, effective.communication)
    return effective.compute + effective.communication


def overlap_efficiency(stages: StageTimes, comm_sms: int = 0, total_sms: int = 132) -> float:
    """Fraction of the serialized time that dual micro-batching saves."""
    serial = layer_time(stages, dual_microbatch=False, comm_sms=comm_sms, total_sms=total_sms)
    overlapped = layer_time(stages, dual_microbatch=True, comm_sms=comm_sms, total_sms=total_sms)
    return 1.0 - overlapped / serial


def gpu_idle_fraction(stages: StageTimes, dual_microbatch: bool = True) -> float:
    """Fraction of the layer time the GPU's compute units sit idle.

    With dual micro-batch overlap and comm <= compute, the GPU is
    busy the whole time (the §2.3.1 goal); when comm dominates, idle
    time reappears.
    """
    total = layer_time(stages, dual_microbatch)
    if total == 0:
        return 0.0
    if dual_microbatch:
        return max(0.0, (total - stages.compute) / total)
    return stages.communication / total
