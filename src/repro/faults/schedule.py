"""Fault schedules: explicit timestamped failures and MTBF sampling.

§5.1.1/§6.1 argue robustness *dynamically* — nodes die mid-run, planes
isolate the blast radius, checkpoints bound the lost work.  The static
closed forms in :mod:`repro.reliability` quantify those claims in
expectation; a :class:`FaultSchedule` lets the discrete-event
simulators experience them: a seeded, deterministic sequence of
timestamped :class:`FaultEvent`\\ s that each simulator interprets in
its own domain (GPU/node losses for serving pools, link/switch/plane
outages for the flow simulator, interruption instants for the
checkpointed trainer).

Schedules are either written out explicitly (tests, benches, JSON
files) or sampled from an MTBF via :func:`repro.core.rng.seeded_generator`
— the same root-seed discipline as every other stochastic stream, so a
``(seed, schedule)`` pair fully determines a faulty run, bit for bit.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..core.rng import seeded_generator
from ..reliability.failures import ComponentReliability, cluster_mtbf

#: Recognized fault kinds and the simulators that consume them.
#: ``gpu``/``node`` target serving pools (a node is ``NODE_GPUS`` GPUs),
#: ``link``/``switch``/``plane`` target network fabrics, ``step``
#: interrupts the checkpointed trainer.  Simulators silently skip kinds
#: outside their domain, so one schedule can drive a joint scenario.
KINDS = ("gpu", "node", "link", "switch", "plane", "step")

#: GPUs lost per failed node (the paper's H800 server).
NODE_GPUS = 8

#: Stream name for MTBF sampling (decorrelated from workload/mtp draws).
FAULT_STREAM = "faults"


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One injected failure.

    Attributes:
        time: Injection instant on the simulated clock (seconds).
        kind: One of :data:`KINDS`.
        target: Domain-specific victim: a serving pool name (``gpu``/
            ``node``), a link ``"a|b"`` or switch name (``link``/
            ``switch``), a plane index as a string (``plane``); unused
            for ``step``.
        count: Units lost (GPUs, nodes); link/switch/plane/step faults
            ignore it.
        mttr: Mean time to repair — the component rejoins ``mttr``
            seconds after the failure.  ``inf`` (the default) means it
            never recovers within the run.
    """

    time: float
    kind: str
    target: str = ""
    count: int = 1
    mttr: float = math.inf

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {KINDS})")
        if self.count < 1:
            raise ValueError("count must be positive")
        if self.mttr <= 0:
            raise ValueError("mttr must be positive (inf = never repaired)")

    @property
    def gpus_lost(self) -> int:
        """GPUs this event removes from a serving pool."""
        return self.count * (NODE_GPUS if self.kind == "node" else 1)

    def to_dict(self) -> dict:
        """JSON-friendly form (``mttr`` omitted when infinite)."""
        out: dict = {"time": self.time, "kind": self.kind}
        if self.target:
            out["target"] = self.target
        if self.count != 1:
            out["count"] = self.count
        if math.isfinite(self.mttr):
            out["mttr"] = self.mttr
        return out


@dataclass(frozen=True)
class FaultSchedule:
    """A time-sorted sequence of fault events.

    The empty schedule is the explicit "faults disabled" value: every
    simulator treats it exactly like no schedule at all, which
    ``tests/test_simcore_golden.py`` pins byte-for-byte.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    def __bool__(self) -> bool:
        return bool(self.events)

    def for_kinds(self, kinds: tuple[str, ...]) -> tuple[FaultEvent, ...]:
        """Events a simulator handling ``kinds`` should consume."""
        return tuple(e for e in self.events if e.kind in kinds)

    def times(self, kinds: tuple[str, ...] | None = None) -> tuple[float, ...]:
        """Failure instants, optionally filtered by kind."""
        events = self.events if kinds is None else self.for_kinds(kinds)
        return tuple(e.time for e in events)

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize as ``{"events": [...]}`` (sorted, deterministic)."""
        return json.dumps(
            {"events": [e.to_dict() for e in self.events]}, indent=2, sort_keys=True
        ) + "\n"

    @classmethod
    def from_json(cls, source: str | Path | dict) -> "FaultSchedule":
        """Load a schedule from a JSON file path, JSON text, or dict."""
        if isinstance(source, dict):
            payload = source
        else:
            text = str(source)
            if text.lstrip().startswith("{"):
                payload = json.loads(text)
            else:
                payload = json.loads(Path(source).read_text())
        events = []
        for entry in payload.get("events", []):
            events.append(
                FaultEvent(
                    time=float(entry["time"]),
                    kind=entry["kind"],
                    target=str(entry.get("target", "")),
                    count=int(entry.get("count", 1)),
                    mttr=float(entry.get("mttr", math.inf)),
                )
            )
        return cls(events=tuple(events))

    # -- MTBF-driven sampling --------------------------------------------

    @classmethod
    def sampled(
        cls,
        mtbf: float,
        horizon: float,
        seed: int,
        *,
        kind: str = "gpu",
        targets: tuple[str, ...] = ("pool",),
        count: int = 1,
        mttr: float = math.inf,
        stream: str = FAULT_STREAM,
    ) -> "FaultSchedule":
        """Sample Poisson failures at the given MTBF over ``horizon``.

        Interarrival gaps are exponential with mean ``mtbf``; each
        event's target is drawn uniformly from ``targets``.  All draws
        come from ``seeded_generator(seed, stream)``, so the schedule —
        and therefore the whole faulty run — is a pure function of the
        seed.
        """
        if mtbf <= 0 or horizon <= 0:
            raise ValueError("mtbf and horizon must be positive")
        if not targets:
            raise ValueError("need at least one target")
        rng = seeded_generator(seed, stream)
        events = []
        t = float(rng.exponential(mtbf))
        while t < horizon:
            target = targets[int(rng.integers(len(targets)))]
            events.append(
                FaultEvent(time=t, kind=kind, target=target, count=count, mttr=mttr)
            )
            t += float(rng.exponential(mtbf))
        return cls(events=tuple(events))

    @classmethod
    def sampled_cluster(
        cls,
        num_nodes: int,
        horizon: float,
        seed: int,
        *,
        reliability: ComponentReliability | None = None,
        gpus_per_node: int = NODE_GPUS,
        targets: tuple[str, ...] = ("pool",),
        mttr: float = math.inf,
    ) -> "FaultSchedule":
        """Sample node failures at the §6.1 cluster rate (1/N MTBF).

        The MTBF comes from :func:`repro.reliability.cluster_mtbf` —
        component rates summed over the fleet — so the schedule's
        failure density reflects the same hardware model the static
        analysis uses.
        """
        mtbf = cluster_mtbf(num_nodes, reliability, gpus_per_node)
        return cls.sampled(
            mtbf, horizon, seed, kind="node", targets=targets, count=1, mttr=mttr
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a serving pool survives injected capacity loss.

    Attributes:
        retry_budget: Failed (fault-evicted) requests are requeued at
            most this many times; the next failure drops them.
        backoff_base: First-retry delay (seconds) before the request
            re-enters the prefill queue.
        backoff_factor: Exponential growth of successive retry delays:
            retry ``k`` waits ``backoff_base * backoff_factor**(k-1)``.
        degraded_queue_limit: While any fault window is open, arrivals
            beyond this total queue depth are shed (dropped at the
            door) instead of piling onto a shrunken pool — FCFS makes
            the newest entrant the lowest-priority one.
    """

    retry_budget: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    degraded_queue_limit: int = 256

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.backoff_base <= 0 or self.backoff_factor < 1:
            raise ValueError("need backoff_base > 0 and backoff_factor >= 1")
        if self.degraded_queue_limit < 1:
            raise ValueError("degraded_queue_limit must be positive")


def parse_faults_arg(
    spec: str,
    *,
    horizon: float,
    seed: int,
    kind: str = "gpu",
    targets: tuple[str, ...] = ("pool",),
    count: int = 1,
) -> FaultSchedule:
    """Parse a CLI ``--faults`` value.

    Two forms are accepted:

    * ``mtbf:MTBF[:MTTR[:HORIZON]]`` — MTBF-sampled schedule (seconds);
      MTTR defaults to ``MTBF / 10``, the horizon to the caller's
      scenario estimate.
    * anything else — a path to a schedule JSON file.
    """
    if spec.startswith("mtbf:"):
        parts = spec.split(":")[1:]
        if not parts or not parts[0]:
            raise ValueError("--faults mtbf: needs a value, e.g. mtbf:200:50")
        mtbf = float(parts[0])
        mttr = float(parts[1]) if len(parts) > 1 else mtbf / 10.0
        if len(parts) > 2:
            horizon = float(parts[2])
        return FaultSchedule.sampled(
            mtbf, horizon, seed, kind=kind, targets=targets, count=count, mttr=mttr
        )
    return FaultSchedule.from_json(Path(spec))
