"""Dynamic fault injection and recovery for the discrete-event simulators.

The paper's robustness story (§5.1.1 plane isolation, §6.1 checkpoint
economics) exists elsewhere in this repo as *static* closed forms; this
package makes failures happen **during** simulated runs:

* :mod:`~repro.faults.schedule` — seeded, deterministic fault schedules
  (explicit events or MTBF sampling) and the serving recovery policy;
* :mod:`~repro.faults.report` — degradation accounting (goodput/SLO
  before/during/after each fault window, retry and lost-work totals);
* :mod:`~repro.faults.network` — fault-timeline flow simulation with
  reroute-or-stall semantics over multiplane clusters.

Consumers: ``repro.serving.ServingSimulator`` (``SimConfig.faults``),
``repro.network.FlowSimulator.simulate(faults=...)`` and
``repro.training.simulate_checkpointed_training``.
"""

# NOTE: .schedule must come first — repro.serving.simulator imports it
# while this package may still be mid-initialization (.report/.network
# below pull in serving/network modules).
from .schedule import (
    FAULT_STREAM,
    KINDS,
    NODE_GPUS,
    FaultEvent,
    FaultSchedule,
    RecoveryPolicy,
    parse_faults_arg,
)
from .report import NEVER, DegradationReport, FaultWindow, build_degradation
from .network import (
    NETWORK_FAULT_KINDS,
    NetworkFaultReport,
    cluster_reroute,
    expand_plane_schedule,
    link_target,
    run_flows_with_faults,
)

__all__ = [
    "FAULT_STREAM",
    "KINDS",
    "NEVER",
    "NETWORK_FAULT_KINDS",
    "NODE_GPUS",
    "DegradationReport",
    "FaultEvent",
    "FaultSchedule",
    "FaultWindow",
    "NetworkFaultReport",
    "RecoveryPolicy",
    "build_degradation",
    "cluster_reroute",
    "expand_plane_schedule",
    "link_target",
    "parse_faults_arg",
    "run_flows_with_faults",
]
