"""Degradation accounting for faulty serving runs.

A faulty run is judged by three numbers per fault window — goodput and
SLO attainment *before*, *during*, and *after* the outage — plus a
strict conservation identity over requests: everything admitted is
either finished, dropped, or still in flight when the clock stops.
:func:`build_degradation` derives all of it from per-request
timestamps, so the report is a pure function of the simulation outcome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .schedule import FaultEvent

if TYPE_CHECKING:  # circular at runtime: serving.simulator imports this module
    from ..serving.report import SLO
    from ..serving.workload import Request

#: Sentinel for "never repaired within the run" in the frozen report
#: (kept JSON-representable, unlike ``inf``).
NEVER = -1.0


@dataclass(frozen=True)
class FaultWindow:
    """One fault's observed impact on the serving pipeline.

    Goodput is finished requests per second whose finish fell in the
    phase; SLO attainment is the fraction of those that met the SLO.
    ``end == NEVER`` marks a permanent failure; its *after* phase is
    empty by construction.
    """

    kind: str
    target: str
    start: float
    end: float
    gpus_lost: int
    goodput_before: float
    goodput_during: float
    goodput_after: float
    slo_before: float
    slo_during: float
    slo_after: float


@dataclass(frozen=True)
class DegradationReport:
    """Fault-window impacts plus run-level recovery totals.

    Attributes:
        windows: One :class:`FaultWindow` per injected serving fault.
        admitted: Requests that arrived during the run (the workload
            size — shed arrivals count here and in ``dropped``).
        finished: Requests that completed all output tokens.
        dropped: Requests dropped for any reason (oversized, shed,
            retry budget exhausted).
        shed: Subset of ``dropped`` rejected at admission while a fault
            window was open (degraded admission control).
        retry_dropped: Subset of ``dropped`` that exhausted the retry
            budget after repeated fault evictions.
        unserved: Requests stranded in queues when the run ended
            (capacity never recovered enough to serve them).
        retries: Total fault-eviction requeues across all requests.
        evicted: In-flight requests knocked out by capacity loss
            (each eviction either retries or drops).
        steps_aborted: Pool steps cancelled mid-flight by a fault.
        lost_tokens: Generated-token work discarded by evictions and
            aborted steps (re-prefilled on retry).
    """

    windows: tuple[FaultWindow, ...]
    admitted: int
    finished: int
    dropped: int
    shed: int
    retry_dropped: int
    unserved: int
    retries: int
    evicted: int
    steps_aborted: int
    lost_tokens: int

    @property
    def accounted(self) -> bool:
        """The conservation identity: admitted = finished + dropped + unserved."""
        return self.admitted == self.finished + self.dropped + self.unserved


def annotate_alerts(
    alerts: list[dict], windows: "tuple[FaultWindow, ...]"
) -> list[dict]:
    """Tag SLO alert dicts with the fault window active at their time.

    The telemetry pipeline evaluates SLO rules blind to the fault
    schedule; this joins the two timelines so an alert reads as a
    diagnosis (``during_fault`` + ``fault_target``) rather than a bare
    transition.  Mutates and returns ``alerts``.
    """
    for alert in alerts:
        t = alert["time"]
        for window in windows:
            end = math.inf if window.end == NEVER else window.end
            if window.start <= t <= end:
                alert["during_fault"] = True
                alert["fault_target"] = window.target or "decode"
                break
        else:
            alert["during_fault"] = False
    return alerts


def _phase_stats(
    requests: "list[Request]", slo: "SLO", start: float, end: float
) -> tuple[float, float]:
    """(goodput req/s, SLO attainment) over finishes in [start, end)."""
    span = end - start
    if span <= 0:
        return 0.0, 0.0
    done = [r for r in requests if start <= r.finish_time < end]
    if not done:
        return 0.0, 0.0
    met = sum(1 for r in done if slo.met_by(r))
    return len(done) / span, met / len(done)


def build_degradation(
    requests: "list[Request]",
    events: tuple[FaultEvent, ...],
    slo: "SLO",
    *,
    horizon: float,
    admitted: int,
    finished: int,
    dropped: int,
    shed: int,
    retry_dropped: int,
    retries: int,
    evicted: int,
    steps_aborted: int,
    lost_tokens: int,
) -> DegradationReport:
    """Assemble the degradation section from per-request outcomes.

    Each fault window's *before* phase spans from the previous window's
    end (or 0) to the fault; *during* spans the outage itself; *after*
    runs to the next fault (or the run horizon).  Permanent faults have
    an empty *after* phase.
    """
    windows = []
    prev_end = 0.0
    for i, event in enumerate(events):
        repaired = math.isfinite(event.mttr)
        end = event.time + event.mttr if repaired else horizon
        next_start = events[i + 1].time if i + 1 < len(events) else horizon
        goodput_before, slo_before = _phase_stats(
            requests, slo, prev_end, event.time
        )
        goodput_during, slo_during = _phase_stats(
            requests, slo, event.time, min(end, next_start)
        )
        goodput_after, slo_after = (
            _phase_stats(requests, slo, end, next_start) if repaired else (0.0, 0.0)
        )
        windows.append(
            FaultWindow(
                kind=event.kind,
                target=event.target,
                start=event.time,
                end=(event.time + event.mttr) if repaired else NEVER,
                gpus_lost=event.gpus_lost,
                goodput_before=goodput_before,
                goodput_during=goodput_during,
                goodput_after=goodput_after,
                slo_before=slo_before,
                slo_during=slo_during,
                slo_after=slo_after,
            )
        )
        prev_end = min(end, next_start) if repaired else next_start
    return DegradationReport(
        windows=tuple(windows),
        admitted=admitted,
        finished=finished,
        dropped=dropped,
        shed=shed,
        retry_dropped=retry_dropped,
        unserved=admitted - finished - dropped,
        retries=retries,
        evicted=evicted,
        steps_aborted=steps_aborted,
        lost_tokens=lost_tokens,
    )
