"""Fault-mode flow simulation: link/switch/plane outages mid-transfer.

§5.1.1's multi-plane argument is that a failure in one plane is
invisible to traffic on the others.  This module turns that claim into
a simulated experiment: a :class:`~repro.faults.schedule.FaultSchedule`
of ``link``/``switch`` events drives a time-segmented max-min fair
simulation — at every failure or repair boundary the surviving
capacities change and the fair allocation is re-solved.  Flows whose
path lost an edge either reroute onto the surviving fabric (via a
caller-supplied policy such as :func:`cluster_reroute`, which finds the
NVLink/PXN detour through another plane) or stall at zero rate until
repair; flows that never regain a path finish at infinity and are
reported as unfinished.

The runner deliberately uses the dict-based reference solver
(:func:`repro.network.flowsim.max_min_rates`), not the incremental
event engine: capacities mutate at arbitrary boundaries, which is
exactly the case the engine's frozen-component optimization excludes.
Fault-free runs never come through here —
:meth:`~repro.network.flowsim.FlowSimulator.simulate` only delegates
when the schedule is non-empty — so the hot path stays untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import networkx as nx

from ..network.flowsim import Flow, FlowResult, FlowSimulator, max_min_rates
from ..network.multiplane import ClusterNetwork
from ..reliability.failover import plane_switches
from .schedule import FaultEvent, FaultSchedule

#: Matches flowsim's fabric trace process.
_FABRIC_PID = 1

#: Fault kinds the flow simulator consumes.
NETWORK_FAULT_KINDS = ("link", "switch")

#: A reroute policy: given a flow whose path lost an edge and the
#: currently alive directed capacities, return a replacement node path
#: (src..dst) or None to stall the flow until repair.
ReroutePolicy = Callable[[Flow, dict], "list[str] | None"]


@dataclass(frozen=True)
class NetworkFaultReport:
    """What the fault timeline did to a flow set.

    Attributes:
        events: Injected link/switch failures.
        rerouted: Flow indices that switched to a surviving path.
        stalled: Flow indices that spent any time at zero rate.
        unfinished: Flow indices that never completed (no path and no
            repair before the run drained).
        stall_time: Total flow-seconds spent stalled.
    """

    events: int
    rerouted: tuple[int, ...]
    stalled: tuple[int, ...]
    unfinished: tuple[int, ...]
    stall_time: float


class _PathFlow:
    """Duck-typed stand-in exposing ``.edges`` to the rate solver."""

    __slots__ = ("edges",)

    def __init__(self, edges: list[tuple[str, str]]) -> None:
        self.edges = edges


def link_target(a: str, b: str) -> str:
    """Encode a link fault target (``"a|b"``, order-insensitive)."""
    return f"{a}|{b}"


def _edges_of(event: FaultEvent, capacities: dict) -> list[tuple[str, str]]:
    """Directed capacity entries an event takes down."""
    if event.kind == "link":
        a, sep, b = event.target.partition("|")
        if not sep:
            raise ValueError(f"link target must be 'a|b', got {event.target!r}")
        return [(a, b), (b, a)]
    return [e for e in capacities if event.target in e]


def expand_plane_schedule(
    cluster: ClusterNetwork, schedule: FaultSchedule
) -> FaultSchedule:
    """Lower ``plane`` events to switch failures of that MPFT plane.

    Non-plane events pass through untouched, so a mixed schedule stays
    one schedule.  The flow runner itself only understands links and
    switches — a plane is a topology-level concept.
    """
    events: list[FaultEvent] = []
    for event in schedule.events:
        if event.kind != "plane":
            events.append(event)
            continue
        for switch in plane_switches(cluster, int(event.target)):
            events.append(
                FaultEvent(
                    time=event.time, kind="switch", target=switch, mttr=event.mttr
                )
            )
    return FaultSchedule(events=tuple(events))


def cluster_reroute(cluster: ClusterNetwork) -> ReroutePolicy:
    """Reroute policy over a multiplane cluster: shortest surviving path.

    Because the cluster graph contains the intra-node NVLink fabric,
    the shortest path around a dead plane is the paper's PXN-style
    detour — hop to a same-node GPU on a healthy plane over NVLink,
    cross that plane, and hop back at the destination node.  Returns
    None when the damaged fabric has no path at all.
    """
    nodes = list(cluster.topology.graph.nodes)

    def reroute(flow: Flow, capacities: dict) -> list[str] | None:
        alive = nx.Graph()
        alive.add_nodes_from(nodes)
        alive.add_edges_from(capacities)
        try:
            return nx.shortest_path(alive, flow.src, flow.dst)
        except nx.NetworkXNoPath:
            return None

    return reroute


def run_flows_with_faults(
    sim: FlowSimulator,
    flows: list[Flow],
    schedule: FaultSchedule,
    reroute: ReroutePolicy | None = None,
    time_epsilon: float = 1e-9,
) -> FlowResult:
    """Run flows through a fault timeline on ``sim``'s topology.

    Advances time from boundary to boundary — the next flow completion
    or the next failure/repair instant, whichever is sooner — solving
    max-min fair rates over the currently-routable flows at the current
    surviving capacities.  Populates ``sim.fault_report`` with a
    :class:`NetworkFaultReport` and returns a normal
    :class:`~repro.network.flowsim.FlowResult` (unfinished flows
    complete at ``inf`` and are excluded from makespan and traces).
    """
    events = schedule.for_kinds(NETWORK_FAULT_KINDS)
    if len(events) != len(schedule.events):
        other = [e.kind for e in schedule.events if e.kind not in NETWORK_FAULT_KINDS]
        if "plane" in other:
            raise ValueError(
                "plane events must be lowered first: see expand_plane_schedule()"
            )
    capacities = dict(sim.capacities)
    metrics, tracer = sim.metrics, sim.tracer

    # (time, order, action, event): repairs sort after failures at the
    # same instant so a flapping component is down for its full window.
    timeline: list[tuple[float, int, str, FaultEvent]] = []
    for event in events:
        timeline.append((event.time, 0, "fail", event))
        if math.isfinite(event.mttr):
            timeline.append((event.time + event.mttr, 1, "repair", event))
    timeline.sort(key=lambda entry: (entry[0], entry[1]))

    # Reference-count downed capacity entries: overlapping failures may
    # claim the same edge, which only heals when the last claim repairs.
    down_count: dict[tuple[str, str], int] = {}

    def apply(action: str, event: FaultEvent, now: float) -> None:
        for edge in _edges_of(event, sim.capacities):
            if action == "fail":
                down_count[edge] = down_count.get(edge, 0) + 1
                capacities.pop(edge, None)
            else:
                down_count[edge] -= 1
                if down_count[edge] == 0:
                    capacities[edge] = sim.capacities[edge]
        metrics.series("network.capacity_down").record(
            now, sum(1 for c in down_count.values() if c) / 2
        )
        if tracer.enabled:
            tracer.instant(
                f"{event.kind}_{'down' if action == 'fail' else 'up'}",
                "fault", _FABRIC_PID, 0, now, args={"target": event.target},
            )

    remaining = {i: f.size for i, f in enumerate(flows) if f.size > 0}
    completion = {i: flows[i].latency for i, f in enumerate(flows) if f.size == 0}
    paths: dict[int, list[tuple[str, str]]] = {
        i: list(flows[i].edges) for i in remaining
    }
    rerouted: set[int] = set()
    ever_stalled: set[int] = set()
    stall_time = 0.0
    now = 0.0
    cursor = 0

    while remaining:
        # Route check: a flow runs iff every edge of its current path is
        # alive; otherwise it reroutes once per outage or stalls.
        runnable: dict[int, _PathFlow] = {}
        stalled: list[int] = []
        for i in remaining:
            edges = paths[i]
            if all(edge in capacities for edge in edges):
                runnable[i] = _PathFlow(edges)
                continue
            path = reroute(flows[i], capacities) if reroute is not None else None
            if path is not None and len(path) >= 2:
                paths[i] = list(zip(path[:-1], path[1:]))
                runnable[i] = _PathFlow(paths[i])
                rerouted.add(i)
                if tracer.enabled:
                    tracer.instant(
                        "reroute", "fault", _FABRIC_PID, i, now,
                        args={"hops": len(path) - 1},
                    )
            else:
                stalled.append(i)
                ever_stalled.add(i)

        rates = max_min_rates(runnable, capacities) if runnable else {}
        if runnable:
            sim._sample_utilization(now, runnable, rates)
        next_boundary = timeline[cursor][0] if cursor < len(timeline) else math.inf
        times: dict[int, float] = {}
        dt_finish = math.inf
        for i in runnable:
            rate = rates[i]
            if rate == math.inf:
                t = 0.0
            elif rate <= 0.0:
                t = math.inf
            else:
                t = remaining[i] / rate
            times[i] = t
            if t < dt_finish:
                dt_finish = t
        # Advance to the sooner of the next completion and the next
        # fault/repair boundary; landing on a boundary sets the clock to
        # it exactly (no float drift, so the apply loop below fires).
        if next_boundary - now <= dt_finish:
            step, target_time = next_boundary - now, next_boundary
        else:
            step, target_time = dt_finish, now + dt_finish
        if step == math.inf:
            # No runnable flows and no boundaries left: the stalled
            # remainder never completes.
            for i in remaining:
                completion[i] = math.inf
            break
        horizon = step * (1 + time_epsilon)
        finished = [i for i, t in times.items() if t <= horizon]
        for i in finished:
            completion[i] = target_time + flows[i].latency
            del remaining[i]
            del paths[i]
            del times[i]
        for i, t in times.items():
            if t < math.inf:
                remaining[i] -= rates[i] * step
        stall_time += len(stalled) * step
        now = target_time
        while cursor < len(timeline) and timeline[cursor][0] <= now:
            _, _, action, event = timeline[cursor]
            apply(action, event, now)
            cursor += 1

    unfinished = tuple(
        sorted(i for i, t in completion.items() if t == math.inf)
    )
    sim.fault_report = NetworkFaultReport(
        events=len(events),
        rerouted=tuple(sorted(rerouted)),
        stalled=tuple(sorted(ever_stalled)),
        unfinished=unfinished,
        stall_time=stall_time,
    )
    makespan = max(
        (t for t in completion.values() if t != math.inf), default=0.0
    )
    sim._record_flows(flows, completion)
    return FlowResult(completion=completion, makespan=makespan, rates={})
