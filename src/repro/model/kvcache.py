"""KV-cache memory model and runtime cache (Section 2.1.2, Table 1).

The analytical half computes per-token cache footprints for each
attention variant; the runtime half is the incremental cache used by
the numpy attention kernels in :mod:`repro.model.attention`.

Per-token cache entries:

* MHA/GQA/MQA store a key and a value per KV head per layer:
  ``2 * num_kv_heads * head_dim`` elements.
* MLA stores only the joint latent plus the decoupled RoPE key:
  ``kv_lora_rank + qk_rope_head_dim`` elements — shared by all heads.

With DeepSeek-V3 (61 layers, rank 512 + 64 rope dims, BF16) this gives
the paper's 70.272 KB/token; Qwen-2.5 72B and LLaMA-3.1 405B reproduce
327.680 KB and 516.096 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.units import bytes_to_kib
from .config import AttentionConfig, AttentionKind, ModelConfig

#: Bytes per element for the precisions Table 1 and §2.1 consider.
DTYPE_BYTES = {"bf16": 2, "fp16": 2, "fp8": 1, "fp32": 4, "int4": 0.5}


def kv_elements_per_token_per_layer(attention: AttentionConfig) -> int:
    """Cached elements per token per layer for one attention block."""
    if attention.kind is AttentionKind.MLA:
        return attention.kv_lora_rank + attention.qk_rope_head_dim
    return 2 * attention.num_kv_heads * attention.qk_head_dim


def kv_cache_bytes_per_token(model: ModelConfig, dtype: str = "bf16") -> float:
    """Total KV-cache bytes per token across all layers (Table 1).

    Args:
        model: Model configuration.
        dtype: Cache element precision (Table 1 uses BF16).

    Returns:
        Bytes of cache one generated/prefilled token occupies.
    """
    if dtype not in DTYPE_BYTES:
        raise ValueError(f"unknown dtype {dtype!r}; choose from {sorted(DTYPE_BYTES)}")
    per_layer = kv_elements_per_token_per_layer(model.attention)
    return per_layer * DTYPE_BYTES[dtype] * model.num_layers


def kv_cache_bytes(
    model: ModelConfig,
    context_tokens: int,
    batch_size: int = 1,
    dtype: str = "bf16",
) -> float:
    """Cache footprint of ``batch_size`` requests at ``context_tokens``."""
    if context_tokens < 0 or batch_size < 0:
        raise ValueError("context_tokens and batch_size must be non-negative")
    return kv_cache_bytes_per_token(model, dtype) * context_tokens * batch_size


def windowed_kv_cache_bytes(
    model: ModelConfig,
    window_tokens: int,
    context_tokens: int,
    dtype: str = "bf16",
) -> float:
    """Cache footprint under a sliding-window policy (§2.1.2).

    Windowed KV retains only the most recent ``window_tokens`` entries,
    trading long-context recall for bounded memory (Longformer-style).
    """
    if window_tokens <= 0:
        raise ValueError("window_tokens must be positive")
    kept = min(window_tokens, context_tokens)
    return kv_cache_bytes_per_token(model, dtype) * kept


def max_context_tokens(
    model: ModelConfig,
    memory_budget_bytes: float,
    dtype: str = "bf16",
) -> int:
    """Largest total token count whose cache fits in a memory budget."""
    per_token = kv_cache_bytes_per_token(model, dtype)
    return int(memory_budget_bytes // per_token)


@dataclass(frozen=True)
class KVCacheReport:
    """One row of the Table 1 comparison."""

    model_name: str
    attention_kind: str
    bytes_per_token: float
    multiplier: float

    @property
    def kb_per_token(self) -> float:
        """Per-token footprint in decimal KB — the unit Table 1 prints
        (the paper writes 70,272 bytes as "70.272 KB")."""
        return self.bytes_per_token / 1000.0

    @property
    def kib_per_token(self) -> float:
        """Per-token footprint in binary KiB."""
        return bytes_to_kib(self.bytes_per_token)


def compare_kv_cache(
    models: list[ModelConfig],
    baseline: ModelConfig | None = None,
    dtype: str = "bf16",
) -> list[KVCacheReport]:
    """Build the Table 1 comparison for a set of models.

    Args:
        models: Models to compare.
        baseline: Model whose footprint defines multiplier 1x (defaults
            to the smallest-footprint model, as in Table 1).
        dtype: Cache precision.

    Returns:
        One report per model, in input order.
    """
    sizes = {m.name: kv_cache_bytes_per_token(m, dtype) for m in models}
    if baseline is not None:
        base = kv_cache_bytes_per_token(baseline, dtype)
    else:
        base = min(sizes.values())
    return [
        KVCacheReport(
            model_name=m.name,
            attention_kind=m.attention.kind.value.upper(),
            bytes_per_token=sizes[m.name],
            multiplier=sizes[m.name] / base,
        )
        for m in models
    ]


class LayerKVCache:
    """Incremental per-layer KV cache used by the numpy kernels.

    For MHA/GQA/MQA the cache stores keys and values of shape
    ``[batch, kv_heads, t, head_dim]``.  For MLA it stores the
    compressed latent ``[batch, t, kv_lora_rank]`` and the shared RoPE
    key ``[batch, t, qk_rope_head_dim]`` — exactly what §2.1.2 says
    needs to be cached.
    """

    def __init__(self, attention: AttentionConfig, batch_size: int) -> None:
        self._attention = attention
        self._batch_size = batch_size
        self._length = 0
        if attention.kind is AttentionKind.MLA:
            self._latent = np.zeros((batch_size, 0, attention.kv_lora_rank), np.float32)
            self._rope_key = np.zeros(
                (batch_size, 0, attention.qk_rope_head_dim), np.float32
            )
            self._keys = None
            self._values = None
        else:
            shape = (batch_size, attention.num_kv_heads, 0, attention.qk_head_dim)
            vshape = (batch_size, attention.num_kv_heads, 0, attention.v_head_dim)
            self._keys = np.zeros(shape, np.float32)
            self._values = np.zeros(vshape, np.float32)
            self._latent = None
            self._rope_key = None

    def __len__(self) -> int:
        return self._length

    @property
    def batch_size(self) -> int:
        """Number of sequences cached."""
        return self._batch_size

    def append_kv(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append per-head keys/values ([batch, kv_heads, t, dim])."""
        if self._keys is None:
            raise TypeError("this cache stores MLA latents; use append_latent")
        if keys.shape[0] != self._batch_size:
            raise ValueError("batch size mismatch")
        self._keys = np.concatenate([self._keys, keys], axis=2)
        self._values = np.concatenate([self._values, values], axis=2)
        self._length += keys.shape[2]

    def append_latent(self, latent: np.ndarray, rope_key: np.ndarray) -> None:
        """Append MLA latent + rope key ([batch, t, dim])."""
        if self._latent is None:
            raise TypeError("this cache stores per-head KV; use append_kv")
        if latent.shape[0] != self._batch_size:
            raise ValueError("batch size mismatch")
        self._latent = np.concatenate([self._latent, latent], axis=1)
        self._rope_key = np.concatenate([self._rope_key, rope_key], axis=1)
        self._length += latent.shape[1]

    @property
    def keys(self) -> np.ndarray:
        """Cached keys [batch, kv_heads, t, head_dim] (non-MLA only)."""
        if self._keys is None:
            raise TypeError("MLA cache has no per-head keys")
        return self._keys

    @property
    def values(self) -> np.ndarray:
        """Cached values [batch, kv_heads, t, v_dim] (non-MLA only)."""
        if self._values is None:
            raise TypeError("MLA cache has no per-head values")
        return self._values

    @property
    def latent(self) -> np.ndarray:
        """Cached joint latent [batch, t, rank] (MLA only)."""
        if self._latent is None:
            raise TypeError("non-MLA cache has no latent")
        return self._latent

    @property
    def rope_key(self) -> np.ndarray:
        """Cached decoupled rope key [batch, t, rope_dim] (MLA only)."""
        if self._rope_key is None:
            raise TypeError("non-MLA cache has no rope key")
        return self._rope_key

    def truncate(self, length: int) -> None:
        """Drop cached entries beyond ``length`` (speculative rollback).

        Speculative decoding appends draft tokens optimistically; when
        verification rejects a draft, its cache entries are discarded.
        """
        if not 0 <= length <= self._length:
            raise ValueError(f"cannot truncate to {length} (have {self._length})")
        if self._latent is not None:
            self._latent = self._latent[:, :length]
            self._rope_key = self._rope_key[:, :length]
        else:
            self._keys = self._keys[:, :, :length]
            self._values = self._values[:, :, :length]
        self._length = length

    def nbytes(self, dtype: str = "bf16") -> float:
        """Footprint of the current cache contents at ``dtype``."""
        per_token = kv_elements_per_token_per_layer(self._attention)
        return per_token * DTYPE_BYTES[dtype] * self._length * self._batch_size
