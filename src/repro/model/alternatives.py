"""Attention-alternative cost models (Section 2.1.3).

Beyond MLA, the paper surveys the approaches the community uses
against the KV-cache / quadratic-attention wall: shared-KV (GQA/MQA),
windowed KV, KV quantization, linear-time alternatives (Mamba-2,
Lightning Attention) and trainable sparse attention (NSA).  This
module provides per-token *decode-step* cost models — cache bytes read
and FLOPs — as functions of context length, so the §2.1.3 trade-offs
can be plotted and tested.

These are analytical complements to the runnable kernels in
:mod:`repro.model.attention`; NSA/linear variants are modeled at the
cost level only (their quality trade-offs are outside this scope).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ModelConfig
from .kvcache import DTYPE_BYTES, kv_elements_per_token_per_layer


@dataclass(frozen=True)
class DecodeAttentionCost:
    """Per-token decode cost of one attention strategy."""

    name: str
    cache_bytes_read: float
    flops: float
    cache_bytes_stored_per_token: float


def _per_head_dims(model: ModelConfig) -> tuple[int, int, int]:
    attn = model.attention
    return attn.num_heads, attn.full_qk_head_dim, attn.v_head_dim


def full_attention_cost(
    model: ModelConfig, context: int, kv_dtype: str = "bf16"
) -> DecodeAttentionCost:
    """Exact attention over the whole cache (MLA/GQA/MQA per config)."""
    heads, qk, v = _per_head_dims(model)
    elements = kv_elements_per_token_per_layer(model.attention)
    bytes_per_pos = elements * DTYPE_BYTES[kv_dtype]
    return DecodeAttentionCost(
        name=f"full ({model.attention.kind.value})",
        cache_bytes_read=model.num_layers * context * bytes_per_pos,
        flops=model.num_layers * 2.0 * heads * (qk + v) * context,
        cache_bytes_stored_per_token=model.num_layers * bytes_per_pos,
    )


def windowed_attention_cost(
    model: ModelConfig, context: int, window: int, kv_dtype: str = "bf16"
) -> DecodeAttentionCost:
    """Sliding-window attention: only the last ``window`` positions."""
    if window <= 0:
        raise ValueError("window must be positive")
    effective = min(window, context)
    base = full_attention_cost(model, effective, kv_dtype)
    return DecodeAttentionCost(
        name=f"windowed (w={window})",
        cache_bytes_read=base.cache_bytes_read,
        flops=base.flops,
        cache_bytes_stored_per_token=base.cache_bytes_stored_per_token,
    )


def quantized_cache_cost(
    model: ModelConfig, context: int, kv_dtype: str = "fp8"
) -> DecodeAttentionCost:
    """Full attention over a low-bit KV cache (KVQuant/KIVI-style)."""
    base = full_attention_cost(model, context, kv_dtype)
    return DecodeAttentionCost(
        name=f"quantized cache ({kv_dtype})",
        cache_bytes_read=base.cache_bytes_read,
        flops=base.flops,
        cache_bytes_stored_per_token=base.cache_bytes_stored_per_token,
    )


def sparse_attention_cost(
    model: ModelConfig,
    context: int,
    selected_tokens: int = 2048,
    window: int = 512,
    compression_block: int = 32,
    kv_dtype: str = "bf16",
) -> DecodeAttentionCost:
    """NSA-style trainable sparse attention (three-branch).

    Branches per the Native Sparse Attention design: a *compressed*
    branch attends to block summaries (context/compression_block
    positions), a *selection* branch attends to the top
    ``selected_tokens`` raw positions, and a *window* branch to the
    last ``window`` positions.  The full cache is still stored.
    """
    if min(selected_tokens, window, compression_block) <= 0:
        raise ValueError("sparse parameters must be positive")
    heads, qk, v = _per_head_dims(model)
    elements = kv_elements_per_token_per_layer(model.attention)
    bytes_per_pos = elements * DTYPE_BYTES[kv_dtype]
    attended = (
        context / compression_block
        + min(selected_tokens, context)
        + min(window, context)
    )
    attended = min(attended, context)
    return DecodeAttentionCost(
        name="sparse (NSA-style)",
        cache_bytes_read=model.num_layers * attended * bytes_per_pos,
        flops=model.num_layers * 2.0 * heads * (qk + v) * attended,
        cache_bytes_stored_per_token=model.num_layers * bytes_per_pos,
    )


def linear_attention_cost(
    model: ModelConfig, context: int, state_dtype: str = "bf16"
) -> DecodeAttentionCost:
    """Linear-time alternative (Mamba-2 / Lightning-style).

    Constant-size recurrent state per layer (modeled as heads x qk x v
    matrices); decode cost is independent of context length — the
    §2.1.3 appeal for extreme contexts.
    """
    del context  # the whole point: no dependence
    heads, qk, v = _per_head_dims(model)
    state_elements = heads * qk * v
    state_bytes = state_elements * DTYPE_BYTES[state_dtype]
    return DecodeAttentionCost(
        name="linear-time (SSM-style)",
        cache_bytes_read=model.num_layers * state_bytes,
        flops=model.num_layers * 2.0 * state_elements,
        cache_bytes_stored_per_token=0.0,
    )


def compare_decode_costs(
    model: ModelConfig, context: int, kv_dtype: str = "bf16"
) -> list[DecodeAttentionCost]:
    """All §2.1.3 strategies at one context length."""
    return [
        full_attention_cost(model, context, kv_dtype),
        windowed_attention_cost(model, context, window=4096, kv_dtype=kv_dtype),
        quantized_cache_cost(model, context, "fp8"),
        sparse_attention_cost(model, context, kv_dtype=kv_dtype),
        linear_attention_cost(model, context),
    ]
