"""FLOPs accounting (Table 2 and the MFU rows of Table 4).

Training cost per token is modeled as

    3 x [ 2 x N_active_linear  +  attention matmul FLOPs ]

where the factor 3 is forward + backward (backward costs ~2x forward),
``N_active_linear`` are the activated matmul parameters per token, and
the attention term covers the QK^T and AV matmuls, which scale with
context length.  The paper measures per-token cost at sequence length
4096 with *causal* attention (Table 2's 250 GFLOPS/token for V3
matches Table 4's causal 385 TFLOPS at the measured step time); the
non-causal variant (Megatron convention) counts the full attention
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.units import flops_to_gflops
from .config import ModelConfig
from .params import count_params

#: Backward pass costs ~2x forward; training = forward + backward.
TRAINING_EXPANSION = 3.0


def attention_matmul_flops_per_token(
    model: ModelConfig, seq_len: int, causal: bool = True
) -> float:
    """Forward QK^T + AV FLOPs per token, summed over layers.

    With causal masking the average context of a token is ``seq_len/2``
    (the FlashAttention convention Table 4's 'causal' rows use); the
    non-causal convention charges the full ``seq_len``.
    """
    if seq_len <= 0:
        raise ValueError(f"seq_len must be positive, got {seq_len}")
    attn = model.attention
    context = seq_len / 2.0 if causal else float(seq_len)
    per_layer = 2.0 * context * attn.num_heads * (attn.full_qk_head_dim + attn.v_head_dim)
    return per_layer * model.num_layers


def forward_flops_per_token(model: ModelConfig, seq_len: int, causal: bool = True) -> float:
    """Forward FLOPs per token: linear matmuls + attention matmuls."""
    linear = 2.0 * count_params(model).active_linear
    return linear + attention_matmul_flops_per_token(model, seq_len, causal)


def training_flops_per_token(model: ModelConfig, seq_len: int, causal: bool = True) -> float:
    """Training (fwd+bwd) FLOPs per token — the quantity in Table 2."""
    return TRAINING_EXPANSION * forward_flops_per_token(model, seq_len, causal)


def decode_flops_per_token(model: ModelConfig, context_len: int) -> float:
    """Single-token decode FLOPs at a given context length.

    During decode every activated linear layer runs as a GEMV
    (2 FLOPs/parameter) and attention reads the whole cache.
    """
    linear = 2.0 * count_params(model).active_linear
    attn = model.attention
    per_layer = 2.0 * context_len * attn.num_heads * (
        attn.full_qk_head_dim + attn.v_head_dim
    )
    return linear + per_layer * model.num_layers


@dataclass(frozen=True)
class TrainingCostReport:
    """One row of the Table 2 comparison."""

    model_name: str
    kind: str
    total_params: int
    active_params: int
    gflops_per_token: float


def compare_training_cost(
    models: list[ModelConfig], seq_len: int = 4096, causal: bool = True
) -> list[TrainingCostReport]:
    """Build the Table 2 comparison (GFLOPs per training token)."""
    reports = []
    for model in models:
        params = count_params(model)
        reports.append(
            TrainingCostReport(
                model_name=model.name,
                kind="MoE" if model.is_moe else "Dense",
                total_params=params.total,
                active_params=params.active,
                gflops_per_token=flops_to_gflops(
                    training_flops_per_token(model, seq_len, causal)
                ),
            )
        )
    return reports
