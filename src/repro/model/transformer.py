"""A runnable numpy transformer assembling MLA/GQA attention and MoE.

This is the inference-path reference model (Figure 1's architecture):
token embedding, RMSNorm pre-norm transformer layers whose FFN is dense
for the first ``num_dense_layers`` layers and DeepSeekMoE elsewhere,
a final norm and an output head, plus optional Multi-Token Prediction
modules for speculative decoding (Section 2.3.3).

The trainable (autograd) counterpart lives in :mod:`repro.training`;
this one is pure-numpy forward and is used by the attention/KV-cache
equivalence tests and the speculative-decoding simulator.
"""

from __future__ import annotations

import numpy as np

from .attention import build_attention
from .config import ModelConfig
from .kvcache import LayerKVCache
from .moe import DeepSeekMoELayer, DenseFfn


class RMSNorm:
    """Root-mean-square layer norm with learned gain."""

    def __init__(self, dim: int) -> None:
        self.weight = np.ones(dim, dtype=np.float32)
        self.eps = 1e-6

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Normalize the last axis."""
        rms = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + self.eps)
        return x / rms * self.weight


class TransformerLayer:
    """Pre-norm attention + FFN block."""

    def __init__(self, model: ModelConfig, use_moe: bool, rng: np.random.Generator) -> None:
        h = model.hidden_size
        self.attn_norm = RMSNorm(h)
        self.attention = build_attention(model.attention, h, rng)
        self.ffn_norm = RMSNorm(h)
        if use_moe:
            if model.moe is None:
                raise ValueError("use_moe requires a MoE config")
            self.ffn: DeepSeekMoELayer | DenseFfn = DeepSeekMoELayer(model.moe, h, rng)
        else:
            self.ffn = DenseFfn(h, model.ffn_intermediate_size, rng)

    @property
    def is_moe(self) -> bool:
        """True when the FFN is a MoE layer."""
        return isinstance(self.ffn, DeepSeekMoELayer)

    def __call__(self, x: np.ndarray, cache: LayerKVCache) -> np.ndarray:
        """Apply the block to ``x`` [batch, t, hidden]."""
        x = x + self.attention(self.attn_norm(x), cache)
        return x + self.ffn(self.ffn_norm(x))


class MTPModule:
    """One Multi-Token Prediction module (Section 2.3.3, Figure 1 top).

    A lightweight single transformer layer that predicts the *next*
    token after the main model's prediction: it fuses the main model's
    final hidden state with the embedding of the newly drafted token
    through a linear projection, runs one layer, and reuses the shared
    output head.
    """

    def __init__(self, model: ModelConfig, rng: np.random.Generator) -> None:
        h = model.hidden_size
        self.hidden_norm = RMSNorm(h)
        self.embed_norm = RMSNorm(h)
        self.proj = rng.normal(0.0, 1.0 / np.sqrt(2 * h), size=(2 * h, h)).astype(np.float32)
        self.layer = TransformerLayer(model, use_moe=model.is_moe, rng=rng)

    def __call__(
        self, hidden: np.ndarray, token_embedding: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        """Fuse hidden [b,t,h] with embeddings [b,t,h] and run the layer."""
        fused = np.concatenate(
            [self.hidden_norm(hidden), self.embed_norm(token_embedding)], axis=-1
        )
        return self.layer(fused @ self.proj, cache)


class Transformer:
    """The assembled reference model with incremental decoding."""

    def __init__(self, model: ModelConfig, seed: int = 0) -> None:
        self.config = model
        rng = np.random.default_rng(seed)
        h = model.hidden_size
        self.embedding = rng.normal(0.0, 0.02, size=(model.vocab_size, h)).astype(np.float32)
        self.layers = [
            TransformerLayer(model, use_moe=model.is_moe and i >= model.num_dense_layers, rng=rng)
            for i in range(model.num_layers)
        ]
        self.final_norm = RMSNorm(h)
        if model.tie_embeddings:
            self.lm_head = self.embedding.T
        else:
            self.lm_head = rng.normal(0.0, 0.02, size=(h, model.vocab_size)).astype(np.float32)
        self.mtp_modules = [MTPModule(model, rng) for _ in range(model.num_mtp_modules)]

    def make_caches(self, batch_size: int) -> list[LayerKVCache]:
        """Fresh caches for the main layers followed by MTP layers."""
        caches = [layer.attention.make_cache(batch_size) for layer in self.layers]
        caches += [m.layer.attention.make_cache(batch_size) for m in self.mtp_modules]
        return caches

    def forward_hidden(
        self, tokens: np.ndarray, caches: list[LayerKVCache]
    ) -> np.ndarray:
        """Run the main trunk on ``tokens`` [batch, t]; return hidden states."""
        x = self.embedding[tokens]
        for layer, cache in zip(self.layers, caches):
            x = layer(x, cache)
        return self.final_norm(x)

    def forward(self, tokens: np.ndarray, caches: list[LayerKVCache]) -> np.ndarray:
        """Logits [batch, t, vocab] for ``tokens`` [batch, t]."""
        return self.forward_hidden(tokens, caches) @ self.lm_head

    def mtp_draft_logits(
        self,
        hidden: np.ndarray,
        draft_tokens: np.ndarray,
        caches: list[LayerKVCache],
        module_index: int = 0,
    ) -> np.ndarray:
        """Logits from MTP module ``module_index`` for the token after
        ``draft_tokens`` [batch, t], given trunk hidden states."""
        module = self.mtp_modules[module_index]
        cache = caches[len(self.layers) + module_index]
        out = module(hidden, self.embedding[draft_tokens], cache)
        return self.final_norm(out) @ self.lm_head

    def greedy_generate(self, prompt: np.ndarray, num_tokens: int) -> np.ndarray:
        """Greedy decode ``num_tokens`` after ``prompt`` [batch, t]."""
        caches = self.make_caches(prompt.shape[0])
        logits = self.forward(prompt, caches)
        out = []
        token = np.argmax(logits[:, -1], axis=-1)
        for _ in range(num_tokens):
            out.append(token)
            logits = self.forward(token[:, None], caches)
            token = np.argmax(logits[:, -1], axis=-1)
        return np.stack(out, axis=1)
