"""Runnable numpy attention kernels: MHA, GQA, MQA and MLA.

These are reference implementations of the attention variants compared
in Section 2.1.2.  They are used three ways:

1. To *prove* the MLA caching claim: the latent-cached ("absorbed")
   execution path is numerically identical to naively decompressing
   per-head keys/values, while caching only
   ``kv_lora_rank + qk_rope_head_dim`` elements per token.
2. As building blocks of the tiny trainable transformer in
   :mod:`repro.training`.
3. To ground the analytical KV-cache and FLOPs models against real
   array shapes.

Everything is float32 numpy; quantization effects are studied
separately in :mod:`repro.precision`.
"""

from __future__ import annotations

import numpy as np

from .config import AttentionConfig, AttentionKind
from .kvcache import LayerKVCache


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def rope_frequencies(dim: int, positions: np.ndarray, base: float = 10000.0) -> tuple[np.ndarray, np.ndarray]:
    """Rotary embedding cos/sin tables for ``positions`` ([t, dim/2])."""
    if dim % 2 != 0:
        raise ValueError(f"rotary dim must be even, got {dim}")
    inv_freq = 1.0 / (base ** (np.arange(0, dim, 2) / dim))
    angles = np.outer(positions, inv_freq)
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, positions: np.ndarray, base: float = 10000.0) -> np.ndarray:
    """Apply rotary position embedding along the last axis.

    Args:
        x: Array [..., t, dim] with even ``dim``.
        positions: Integer positions, shape [t].
        base: RoPE frequency base.

    Returns:
        Rotated array, same shape as ``x``.
    """
    dim = x.shape[-1]
    cos, sin = rope_frequencies(dim, positions, base)
    x1, x2 = x[..., 0::2], x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def causal_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    query_offset: int,
    scale: float,
) -> np.ndarray:
    """Scaled dot-product attention with causal masking.

    Args:
        q: Queries [batch, heads, tq, dqk].
        k: Keys [batch, heads, tk, dqk].
        v: Values [batch, heads, tk, dv].
        query_offset: Absolute position of the first query; query ``i``
            may attend to key positions ``<= query_offset + i``.
        scale: Score scaling (typically ``1/sqrt(dqk)``).

    Returns:
        Attention output [batch, heads, tq, dv].
    """
    scores = np.einsum("bhqd,bhkd->bhqk", q, k) * scale
    tq, tk = q.shape[2], k.shape[2]
    key_pos = np.arange(tk)
    query_pos = query_offset + np.arange(tq)
    mask = key_pos[None, :] > query_pos[:, None]
    scores = np.where(mask[None, None], -np.inf, scores)
    return np.einsum("bhqk,bhkv->bhqv", softmax(scores), v)


class _AttentionBase:
    """Shared plumbing: config, rng-initialized weights, cache creation."""

    def __init__(self, config: AttentionConfig, hidden_size: int, rng: np.random.Generator) -> None:
        self.config = config
        self.hidden_size = hidden_size
        self._rng = rng

    def _init(self, *shape: int) -> np.ndarray:
        scale = 1.0 / np.sqrt(shape[0])
        return self._rng.normal(0.0, scale, size=shape).astype(np.float32)

    def make_cache(self, batch_size: int) -> LayerKVCache:
        """Create an empty incremental cache for this block."""
        return LayerKVCache(self.config, batch_size)


class MultiHeadAttention(_AttentionBase):
    """MHA / GQA / MQA attention with per-head KV caching.

    GQA and MQA differ from MHA only in ``num_kv_heads``; keys/values
    are broadcast across the query heads of each group.
    """

    def __init__(self, config: AttentionConfig, hidden_size: int, rng: np.random.Generator) -> None:
        if config.kind is AttentionKind.MLA:
            raise ValueError("use MultiHeadLatentAttention for MLA")
        super().__init__(config, hidden_size, rng)
        heads, kv_heads = config.num_heads, config.num_kv_heads
        self.w_q = self._init(hidden_size, heads * config.qk_head_dim)
        self.w_k = self._init(hidden_size, kv_heads * config.qk_head_dim)
        self.w_v = self._init(hidden_size, kv_heads * config.v_head_dim)
        self.w_o = self._init(heads * config.v_head_dim, hidden_size)

    def __call__(self, x: np.ndarray, cache: LayerKVCache) -> np.ndarray:
        """Process ``x`` [batch, t, hidden] causally, appending to cache."""
        cfg = self.config
        batch, t, _ = x.shape
        offset = len(cache)
        positions = offset + np.arange(t)

        q = (x @ self.w_q).reshape(batch, t, cfg.num_heads, cfg.qk_head_dim)
        k = (x @ self.w_k).reshape(batch, t, cfg.num_kv_heads, cfg.qk_head_dim)
        v = (x @ self.w_v).reshape(batch, t, cfg.num_kv_heads, cfg.v_head_dim)
        q = apply_rope(q.transpose(0, 2, 1, 3), positions)
        k = apply_rope(k.transpose(0, 2, 1, 3), positions)
        v = v.transpose(0, 2, 1, 3)

        cache.append_kv(k, v)
        group = cfg.num_heads // cfg.num_kv_heads
        k_all = np.repeat(cache.keys, group, axis=1)
        v_all = np.repeat(cache.values, group, axis=1)

        scale = 1.0 / np.sqrt(cfg.qk_head_dim)
        out = causal_attention(q, k_all, v_all, offset, scale)
        out = out.transpose(0, 2, 1, 3).reshape(batch, t, -1)
        return out @ self.w_o


class MultiHeadLatentAttention(_AttentionBase):
    """Multi-head Latent Attention (DeepSeek-V2/V3, Section 2.1.2).

    Keys and values are compressed through a joint latent
    ``c_kv = x @ w_dkv`` of rank ``kv_lora_rank``; a small decoupled
    rotary key carries position information and is shared by all heads.
    Two execution paths are provided:

    * ``absorbed=True`` (default, the deployment path): only the latent
      and rope key are cached; query up-projections are absorbed so
      attention runs directly in latent space.
    * ``absorbed=False`` (the reference path): per-head keys/values are
      reconstructed and ordinary attention is run.

    Both paths produce identical outputs (verified by tests), which is
    exactly why caching the latent is sufficient.
    """

    def __init__(self, config: AttentionConfig, hidden_size: int, rng: np.random.Generator) -> None:
        if config.kind is not AttentionKind.MLA:
            raise ValueError("MultiHeadLatentAttention requires an MLA config")
        super().__init__(config, hidden_size, rng)
        heads = config.num_heads
        nope, rope = config.qk_head_dim, config.qk_rope_head_dim
        q_rank, kv_rank = config.q_lora_rank, config.kv_lora_rank

        if q_rank > 0:
            self.w_dq = self._init(hidden_size, q_rank)
            self.w_uq = self._init(q_rank, heads * (nope + rope))
        else:
            self.w_dq = None
            self.w_uq = self._init(hidden_size, heads * (nope + rope))
        self.w_dkv = self._init(hidden_size, kv_rank)
        self.w_kr = self._init(hidden_size, rope)
        self.w_uk = self._init(kv_rank, heads * nope)
        self.w_uv = self._init(kv_rank, heads * config.v_head_dim)
        self.w_o = self._init(heads * config.v_head_dim, hidden_size)

    def _project_queries(self, x: np.ndarray, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (q_nope, q_rope): [batch, heads, t, nope/rope]."""
        cfg = self.config
        batch, t, _ = x.shape
        hidden_q = x if self.w_dq is None else x @ self.w_dq
        q = (hidden_q @ self.w_uq).reshape(
            batch, t, cfg.num_heads, cfg.qk_head_dim + cfg.qk_rope_head_dim
        ).transpose(0, 2, 1, 3)
        q_nope = q[..., : cfg.qk_head_dim]
        q_rope = apply_rope(q[..., cfg.qk_head_dim :], positions)
        return q_nope, q_rope

    def __call__(self, x: np.ndarray, cache: LayerKVCache, absorbed: bool = True) -> np.ndarray:
        """Process ``x`` [batch, t, hidden] causally, appending to cache."""
        cfg = self.config
        batch, t, _ = x.shape
        offset = len(cache)
        positions = offset + np.arange(t)

        latent = x @ self.w_dkv
        rope_key = apply_rope(x @ self.w_kr, positions)
        cache.append_latent(latent, rope_key)
        q_nope, q_rope = self._project_queries(x, positions)

        if absorbed:
            out = self._attend_absorbed(q_nope, q_rope, cache, offset)
        else:
            out = self._attend_naive(q_nope, q_rope, cache, offset)
        return out.transpose(0, 2, 1, 3).reshape(batch, t, -1) @ self.w_o

    def _scale(self) -> float:
        cfg = self.config
        return 1.0 / np.sqrt(cfg.qk_head_dim + cfg.qk_rope_head_dim)

    def _attend_naive(
        self,
        q_nope: np.ndarray,
        q_rope: np.ndarray,
        cache: LayerKVCache,
        offset: int,
    ) -> np.ndarray:
        """Reference path: reconstruct per-head K/V from the latent."""
        cfg = self.config
        batch = q_nope.shape[0]
        tk = len(cache)
        k_nope = (cache.latent @ self.w_uk).reshape(
            batch, tk, cfg.num_heads, cfg.qk_head_dim
        ).transpose(0, 2, 1, 3)
        v = (cache.latent @ self.w_uv).reshape(
            batch, tk, cfg.num_heads, cfg.v_head_dim
        ).transpose(0, 2, 1, 3)
        # The rope key is a single shared head, broadcast to all heads.
        k_rope = np.broadcast_to(
            cache.rope_key[:, None],
            (batch, cfg.num_heads, tk, cfg.qk_rope_head_dim),
        )
        q = np.concatenate([q_nope, q_rope], axis=-1)
        k = np.concatenate([k_nope, k_rope], axis=-1)
        return causal_attention(q, k, v, offset, self._scale())

    def _attend_absorbed(
        self,
        q_nope: np.ndarray,
        q_rope: np.ndarray,
        cache: LayerKVCache,
        offset: int,
    ) -> np.ndarray:
        """Deployment path: attention directly against the cached latent.

        ``w_uk`` is absorbed into the query and ``w_uv`` into the
        output, so the score and value matmuls touch only the
        ``kv_lora_rank``-dim latent — the memory-bound GEMV reads only
        the small cache (the whole point of MLA).
        """
        cfg = self.config
        heads = cfg.num_heads
        w_uk = self.w_uk.reshape(cfg.kv_lora_rank, heads, cfg.qk_head_dim)
        # q_abs[b,h,t,r] = sum_d q_nope[b,h,t,d] * w_uk[r,h,d]
        q_abs = np.einsum("bhtd,rhd->bhtr", q_nope, w_uk)

        scores = np.einsum("bhtr,bkr->bhtk", q_abs, cache.latent)
        scores = scores + np.einsum("bhtd,bkd->bhtk", q_rope, cache.rope_key)
        scores = scores * self._scale()

        tq, tk = q_nope.shape[2], len(cache)
        key_pos = np.arange(tk)
        query_pos = offset + np.arange(tq)
        mask = key_pos[None, :] > query_pos[:, None]
        scores = np.where(mask[None, None], -np.inf, scores)
        weights = softmax(scores)

        latent_out = np.einsum("bhtk,bkr->bhtr", weights, cache.latent)
        w_uv = self.w_uv.reshape(cfg.kv_lora_rank, heads, cfg.v_head_dim)
        return np.einsum("bhtr,rhv->bhtv", latent_out, w_uv)


def build_attention(
    config: AttentionConfig, hidden_size: int, rng: np.random.Generator
) -> _AttentionBase:
    """Construct the right attention block for ``config.kind``."""
    if config.kind is AttentionKind.MLA:
        return MultiHeadLatentAttention(config, hidden_size, rng)
    return MultiHeadAttention(config, hidden_size, rng)
