"""Textual architecture summaries (the Figure 1 overview as text).

Produces the per-component breakdown Figure 1 annotates: the MLA
stack with its latent ranks, the DeepSeekMoE layer structure, the MTP
module, parameter totals and the precision each block computes in
(FP8 GEMMs with BF16 I/O, per the figure's legend).
"""

from __future__ import annotations

from .config import AttentionKind, ModelConfig
from .flops import training_flops_per_token
from .kvcache import kv_cache_bytes_per_token
from .params import count_params


def _fmt_count(n: float) -> str:
    if n >= 1e9:
        return f"{n / 1e9:.2f}B"
    if n >= 1e6:
        return f"{n / 1e6:.2f}M"
    return f"{n / 1e3:.1f}K"


def architecture_summary(model: ModelConfig, seq_len: int = 4096) -> str:
    """Multi-line architecture summary of ``model``."""
    p = count_params(model)
    attn = model.attention
    lines = [
        f"{model.name}",
        "=" * max(20, len(model.name)),
        f"hidden {model.hidden_size}, {model.num_layers} layers, vocab {model.vocab_size}",
        "",
        f"attention: {attn.kind.value.upper()}, {attn.num_heads} heads",
    ]
    if attn.kind is AttentionKind.MLA:
        lines += [
            f"  q compression rank {attn.q_lora_rank or '-'}, joint KV rank {attn.kv_lora_rank}",
            f"  per-head dims: qk {attn.qk_head_dim} + rope {attn.qk_rope_head_dim}, v {attn.v_head_dim}",
            f"  cached per token per layer: {attn.kv_lora_rank + attn.qk_rope_head_dim} elements (latent + rope key)",
        ]
    else:
        lines += [
            f"  kv heads {attn.num_kv_heads}, per-head dim {attn.qk_head_dim}",
        ]
    lines.append("")
    if model.moe is not None:
        moe = model.moe
        lines += [
            (
                f"ffn: DeepSeekMoE in {model.num_moe_layers}/{model.num_layers} layers "
                f"(first {model.num_dense_layers} dense @ {model.ffn_intermediate_size})"
            ),
            (
                f"  {moe.num_routed_experts} routed experts @ {moe.intermediate_size}, "
                f"top-{moe.experts_per_token} + {moe.num_shared_experts} shared"
            ),
        ]
        if moe.num_expert_groups > 1:
            lines.append(
                f"  node-limited routing: {moe.num_expert_groups} groups, "
                f"<= {moe.max_groups_per_token or moe.num_expert_groups} groups/token"
            )
    else:
        lines.append(f"ffn: dense SwiGLU @ {model.ffn_intermediate_size}")
    if model.num_mtp_modules:
        lines.append(f"mtp: {model.num_mtp_modules} module(s), one extra layer each")
    lines += [
        "",
        f"parameters: total {_fmt_count(p.total)} (main {_fmt_count(p.total_main)}), "
        f"activated {_fmt_count(p.active)}",
        f"kv cache: {kv_cache_bytes_per_token(model) / 1000:.3f} KB/token (BF16)",
        f"training cost: {training_flops_per_token(model, seq_len) / 1e9:.0f} GFLOPS/token "
        f"(seq {seq_len}, causal)",
        "precision: FP8 GEMMs (1x128 act / 128x128 weight scaling), BF16 I/O",
    ]
    return "\n".join(lines)


def parameter_table(model: ModelConfig) -> list[tuple[str, int]]:
    """(component, parameter count) rows for reporting."""
    p = count_params(model)
    rows = [
        ("embedding", p.embedding),
        ("output head", p.output_head),
        ("attention", p.attention),
        ("dense FFN", p.dense_ffn),
        ("MoE experts (total)", p.moe_total),
        ("gates", p.gates),
        ("MTP modules", p.mtp_total),
    ]
    return [(name, count) for name, count in rows if count]
