"""Expert routing: TopK selection and Node-Limited Routing (Section 4.3).

DeepSeek-V3 groups its 256 routed experts into 8 groups (one group per
node) and restricts each token to experts from at most
``max_groups_per_token`` (=4) groups.  Because tokens destined to the
same node are sent over IB once and fanned out over NVLink, the IB
traffic of a token is proportional to the number of *distinct nodes* M
it touches, not the number of experts; node-limited routing caps M.

This module implements:

* plain top-k routing (the baseline the paper's 8t cost refers to),
* group-limited ("node-limited") top-k routing as in DeepSeek-V3:
  group scores are the sum of the top-2 expert affinities within the
  group, the best ``max_groups`` groups are kept, and top-k selection
  runs inside the surviving groups,
* the sigmoid gate with auxiliary-loss-free load balancing bias, and
* routing statistics used by the EP communication model (nodes touched
  per token, expert load balance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import MoEConfig


@dataclass(frozen=True)
class RoutingDecision:
    """Result of routing a batch of tokens.

    Attributes:
        expert_ids: Selected routed experts, [tokens, k] int array.
        weights: Gate weights for the selected experts, [tokens, k];
            normalized to sum to 1 per token.
        scores: Raw affinity scores, [tokens, num_experts].
    """

    expert_ids: np.ndarray
    weights: np.ndarray
    scores: np.ndarray

    @property
    def num_tokens(self) -> int:
        """Tokens routed in this decision."""
        return self.expert_ids.shape[0]


def _topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest entries per row, descending by score."""
    if k > scores.shape[1]:
        raise ValueError(f"k={k} exceeds candidate count {scores.shape[1]}")
    part = np.argpartition(scores, -k, axis=1)[:, -k:]
    row = np.arange(scores.shape[0])[:, None]
    order = np.argsort(scores[row, part], axis=1)[:, ::-1]
    return part[row, order]


def _normalized_weights(scores: np.ndarray, expert_ids: np.ndarray) -> np.ndarray:
    row = np.arange(scores.shape[0])[:, None]
    selected = scores[row, expert_ids]
    total = selected.sum(axis=1, keepdims=True)
    # Guard all-zero rows (possible with sigmoid scores rounded to 0).
    total = np.where(total <= 0, 1.0, total)
    return selected / total


def topk_routing(scores: np.ndarray, k: int) -> RoutingDecision:
    """Unrestricted top-k routing (tokens may touch every node)."""
    expert_ids = _topk_indices(scores, k)
    return RoutingDecision(expert_ids, _normalized_weights(scores, expert_ids), scores)


def node_limited_topk(
    scores: np.ndarray,
    k: int,
    num_groups: int,
    max_groups: int,
    group_score_topk: int = 2,
) -> RoutingDecision:
    """Group-limited top-k routing (DeepSeek-V3's Node-Limited Routing).

    Args:
        scores: Affinities, [tokens, num_experts]; experts are laid out
            group-major (experts ``g*E/G .. (g+1)*E/G - 1`` form group g).
        k: Routed experts per token.
        num_groups: Expert groups (= nodes under the §4.3 deployment).
        max_groups: Maximum groups a token may route to (4 in V3).
        group_score_topk: Affinities summed per group to score the
            group (V3 uses the top-2 experts of each group).

    Returns:
        Routing restricted to at most ``max_groups`` groups per token.
    """
    tokens, num_experts = scores.shape
    if num_experts % num_groups != 0:
        raise ValueError(f"{num_experts} experts do not divide into {num_groups} groups")
    if max_groups > num_groups:
        raise ValueError(f"max_groups={max_groups} exceeds num_groups={num_groups}")
    group_size = num_experts // num_groups
    if max_groups * group_size < k:
        raise ValueError("max_groups leaves fewer than k candidate experts")

    grouped = scores.reshape(tokens, num_groups, group_size)
    top_in_group = np.sort(grouped, axis=2)[:, :, -group_score_topk:]
    group_scores = top_in_group.sum(axis=2)
    keep_groups = _topk_indices(group_scores, max_groups)

    mask = np.zeros((tokens, num_groups), dtype=bool)
    np.put_along_axis(mask, keep_groups, True, axis=1)
    expert_mask = np.repeat(mask, group_size, axis=1)
    masked = np.where(expert_mask, scores, -np.inf)

    expert_ids = _topk_indices(masked, k)
    return RoutingDecision(expert_ids, _normalized_weights(scores, expert_ids), scores)


class MoEGate:
    """Sigmoid gate with auxiliary-loss-free load balancing (V3-style).

    The gate computes per-expert affinities ``sigmoid(x @ w)``.  For
    *selection* a per-expert bias is added (the aux-loss-free balancing
    term of DeepSeek-V3); gate *weights* use the unbiased affinities.
    ``update_bias`` nudges the bias against the observed load, the
    online rule the V3 report describes.
    """

    def __init__(
        self,
        moe: MoEConfig,
        hidden_size: int,
        rng: np.random.Generator,
        bias_update_speed: float = 0.001,
    ) -> None:
        self.moe = moe
        self.hidden_size = hidden_size
        self.weight = rng.normal(
            0.0, 1.0 / np.sqrt(hidden_size), size=(hidden_size, moe.num_routed_experts)
        ).astype(np.float32)
        self.bias = np.zeros(moe.num_routed_experts, dtype=np.float32)
        self.bias_update_speed = bias_update_speed

    def affinities(self, x: np.ndarray) -> np.ndarray:
        """Unbiased expert affinities for tokens ``x`` [tokens, hidden]."""
        return 1.0 / (1.0 + np.exp(-(x @ self.weight)))

    def route(self, x: np.ndarray) -> RoutingDecision:
        """Route tokens, honoring node-limited routing when configured."""
        scores = self.affinities(x)
        selection_scores = scores + self.bias
        if self.moe.num_expert_groups > 1 and self.moe.max_groups_per_token:
            decision = node_limited_topk(
                selection_scores,
                self.moe.experts_per_token,
                self.moe.num_expert_groups,
                self.moe.max_groups_per_token,
            )
        else:
            decision = topk_routing(selection_scores, self.moe.experts_per_token)
        # Gate weights come from the unbiased affinities.
        weights = _normalized_weights(scores, decision.expert_ids)
        return RoutingDecision(decision.expert_ids, weights, scores)

    def update_bias(self, decision: RoutingDecision) -> None:
        """Aux-loss-free balancing: bias against overloaded experts."""
        load = expert_load(decision, self.moe.num_routed_experts)
        violation = load - load.mean()
        self.bias -= self.bias_update_speed * np.sign(violation).astype(np.float32)


def expert_load(decision: RoutingDecision, num_experts: int) -> np.ndarray:
    """Tokens assigned to each expert, [num_experts]."""
    return np.bincount(decision.expert_ids.ravel(), minlength=num_experts).astype(
        np.float64
    )


def load_imbalance(decision: RoutingDecision, num_experts: int) -> float:
    """Max-over-mean expert load (1.0 = perfectly balanced)."""
    load = expert_load(decision, num_experts)
    mean = load.mean()
    if mean == 0:
        return 0.0
    return float(load.max() / mean)


def nodes_touched(decision: RoutingDecision, num_groups: int, num_experts: int) -> np.ndarray:
    """Distinct expert groups (nodes) each token's routed experts span.

    This is the M of Section 4.3: a token's deduplicated IB dispatch
    cost is ``M * t`` instead of ``k * t``.
    """
    if num_experts % num_groups != 0:
        raise ValueError("experts must divide evenly into groups")
    group_size = num_experts // num_groups
    groups = decision.expert_ids // group_size
    counts = np.array([len(np.unique(row)) for row in groups])
    return counts


def mean_nodes_touched(decision: RoutingDecision, num_groups: int, num_experts: int) -> float:
    """Average M across tokens."""
    return float(nodes_touched(decision, num_groups, num_experts).mean())
